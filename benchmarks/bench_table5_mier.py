"""Table 5 — MIER results of FlexER vs. the Naïve / In-parallel / Multi-label baselines.

For every benchmark the harness reports MI-P, MI-R, MI-F (Eq. 8), MI-Acc
(Eq. 9), and the reduction of residual error MI-E_F of FlexER with
respect to the In-parallel baseline (Eq. 7), mirroring Table 5.

Expected shape (not absolute numbers): Naïve has far lower MI-R / MI-F
than every multi-intent method; FlexER matches or beats In-parallel and
Multi-label on MI-F and MI-Acc.
"""

from __future__ import annotations

import pytest

from repro.evaluation import format_table, multi_intent_error_reduction

from _harness import DATASET_NAMES, publish

#: Paper-reported Table 5 values (MI-F / MI-Acc) for reference columns.
PAPER_TABLE5_MI_F = {
    "amazon_mi": {"naive": 0.662, "in_parallel": 0.939, "multi_label": 0.907, "flexer": 0.964},
    "walmart_amazon": {"naive": 0.350, "in_parallel": 0.921, "multi_label": 0.922, "flexer": 0.940},
    "wdc": {"naive": 0.459, "in_parallel": 0.863, "multi_label": 0.857, "flexer": 0.871},
}


@pytest.mark.benchmark(group="table5-mier")
@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table5_mier(benchmark, store, settings, dataset):
    """Regenerate the Table 5 rows for one benchmark dataset."""
    # Baselines (cached across tables).
    evaluations = {}
    for solver_name in ("naive", "in_parallel", "multi_label"):
        _, evaluations[solver_name] = store.baseline(dataset, solver_name)

    # The timed region is the FlexER graph + GNN prediction phase.
    flexer_result = benchmark.pedantic(
        store.flexer_result, args=(dataset,), rounds=1, iterations=1
    )
    from repro.evaluation import evaluate_solution

    evaluations["flexer"] = evaluate_solution(flexer_result.solution)

    rows = []
    for model in ("naive", "in_parallel", "multi_label", "flexer"):
        evaluation = evaluations[model]
        error_reduction = (
            multi_intent_error_reduction(evaluation, evaluations["in_parallel"], "MI-F")
            if model == "flexer"
            else float("nan")
        )
        rows.append([
            model,
            evaluation.mi_precision,
            evaluation.mi_recall,
            evaluation.mi_f1,
            evaluation.mi_accuracy,
            error_reduction,
            PAPER_TABLE5_MI_F[dataset][model],
        ])
    table = format_table(
        ["Model", "MI-P", "MI-R", "MI-F", "MI-Acc", "MI-E_F %", "paper MI-F"],
        rows,
        title=f"Table 5 — MIER results on {dataset}",
    )
    publish(f"table5_{dataset}", table)

    # Result-shape assertions from the paper (one-epoch smoke models are
    # not expected to reproduce the ranking).
    if not settings.smoke:
        assert evaluations["naive"].mi_recall < evaluations["in_parallel"].mi_recall
        assert evaluations["naive"].mi_f1 < evaluations["flexer"].mi_f1
        assert evaluations["flexer"].mi_f1 >= evaluations["in_parallel"].mi_f1 - 0.05
