"""Figure 6 — equivalence F1 as a function of the intent subset in the graph.

The paper fixes the best hyper-parameters per dataset, builds the
multiplex graph with every subset of the intent set that contains the
equivalence intent, and plots the equivalence-intent F1 per subset.  The
main finding is that the full intent set gives the best result — more
intent layers provide more useful inter-layer information.

The subset grid runs through the staged pipeline's :class:`BatchRunner`:
the layer set only affects the graph-build stage, so the per-intent
matchers and representations are computed once and every subset scenario
reuses them from the artifact cache.  Intent identifiers follow the
Table 4 numbering (1 = Eq., 2 = Brand, 3 = Set-Cat., 4 = Main-Cat.,
5 = Main-Cat.&Set-Cat.).
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.evaluation import evaluate_binary, format_table
from repro.pipeline import BatchRunner, intent_subset_grid

from _harness import publish

DATASET = "amazon_mi"
EQUIVALENCE = "equivalence"

#: Table 4 numbering of the AmazonMI intents.
INTENT_IDS = {
    "equivalence": 1,
    "brand": 2,
    "set_category": 3,
    "main_category": 4,
    "main_and_set_category": 5,
}


def _subsets_containing_equivalence(intents: tuple[str, ...]) -> list[tuple[str, ...]]:
    """All subsets of the intent set that contain the equivalence intent."""
    others = [intent for intent in intents if intent != EQUIVALENCE]
    subsets: list[tuple[str, ...]] = []
    for size in range(1, len(others) + 1):
        for combo in combinations(others, size):
            subsets.append((EQUIVALENCE, *combo))
    return subsets


@pytest.mark.benchmark(group="fig6-intent-subsets")
def test_fig6_intent_subsets(benchmark, store, settings):
    """Regenerate the Figure 6 series (AmazonMI): F1 per intent subset."""
    bench = store.benchmark(DATASET)
    intents = bench.intents
    labels = bench.split.test.labels(EQUIVALENCE)
    subsets = _subsets_containing_equivalence(intents)
    runner = BatchRunner(store.runner)

    def sweep(subset_list):
        scenarios = intent_subset_grid(
            settings.flexer_config(), subset_list, target_intents=(EQUIVALENCE,)
        )
        return runner.run(bench.split, intents, scenarios, dataset=DATASET)

    # Time one representative subset run (two layers); it also warms the
    # matcher-fit and representation caches for the grid.
    benchmark.pedantic(sweep, args=([(EQUIVALENCE, "brand")],), rounds=1, iterations=1)

    runs = sweep(subsets)
    # Varying the layer set must not retrain matchers or representations.
    assert all(run.skipped_expensive_stages for run in runs)

    rows = []
    f1_by_size: dict[int, list[float]] = {}
    for subset, run in zip(subsets, runs):
        f1 = evaluate_binary(run.result.solution.prediction(EQUIVALENCE), labels).f1
        identifiers = "".join(str(INTENT_IDS[intent]) for intent in subset)
        rows.append([identifiers, len(subset), f1])
        f1_by_size.setdefault(len(subset), []).append(f1)

    full_set_f1 = next(f1 for ids, size, f1 in rows if size == len(intents))
    table = format_table(
        ["Intent subset", "#layers", "equivalence F1"],
        rows,
        title="Figure 6 — equivalence F1 per intent subset (AmazonMI)",
    )
    summary = format_table(
        ["#layers", "mean F1"],
        [[size, sum(values) / len(values)] for size, values in sorted(f1_by_size.items())],
        title="Mean F1 by number of intent layers",
    )
    publish("fig6_intent_subsets", table + "\n\n" + summary)

    # Shape check: the full intent set is at least as good as the average
    # two-layer subset (the paper reports it is the best configuration).
    # Skipped at smoke scale where one-epoch models are noise-level.
    two_layer_mean = sum(f1_by_size[2]) / len(f1_by_size[2])
    if not settings.smoke:
        assert full_set_f1 >= two_layer_mean - 0.05
