"""Figure 6 — equivalence F1 as a function of the intent subset in the graph.

The paper fixes the best hyper-parameters per dataset, builds the
multiplex graph with every subset of the intent set that contains the
equivalence intent, and plots the equivalence-intent F1 per subset.  The
main finding is that the full intent set gives the best result — more
intent layers provide more useful inter-layer information.

The harness reruns the graph + GNN phase per subset on AmazonMI (the
per-intent matchers are trained once and reused) and prints one row per
subset; intent identifiers follow the Table 4 numbering
(1 = Eq., 2 = Brand, 3 = Set-Cat., 4 = Main-Cat., 5 = Main-Cat.&Set-Cat.).
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.evaluation import evaluate_binary, format_table

from _harness import publish

DATASET = "amazon_mi"
EQUIVALENCE = "equivalence"

#: Table 4 numbering of the AmazonMI intents.
INTENT_IDS = {
    "equivalence": 1,
    "brand": 2,
    "set_category": 3,
    "main_category": 4,
    "main_and_set_category": 5,
}


def _subsets_containing_equivalence(intents: tuple[str, ...]) -> list[tuple[str, ...]]:
    """All subsets of the intent set that contain the equivalence intent."""
    others = [intent for intent in intents if intent != EQUIVALENCE]
    subsets: list[tuple[str, ...]] = []
    for size in range(1, len(others) + 1):
        for combo in combinations(others, size):
            subsets.append((EQUIVALENCE, *combo))
    return subsets


def _equivalence_f1(store, subset: tuple[str, ...]) -> float:
    result = store.flexer_result(DATASET, intent_subset=subset, target_intents=(EQUIVALENCE,))
    labels = store.benchmark(DATASET).split.test.labels(EQUIVALENCE)
    return evaluate_binary(result.solution.prediction(EQUIVALENCE), labels).f1


@pytest.mark.benchmark(group="fig6-intent-subsets")
def test_fig6_intent_subsets(benchmark, store):
    """Regenerate the Figure 6 series (AmazonMI): F1 per intent subset."""
    intents = store.benchmark(DATASET).intents
    subsets = _subsets_containing_equivalence(intents)

    # Time one representative subset run (two layers).
    benchmark.pedantic(
        _equivalence_f1, args=(store, (EQUIVALENCE, "brand")), rounds=1, iterations=1
    )

    rows = []
    f1_by_size: dict[int, list[float]] = {}
    for subset in subsets:
        f1 = _equivalence_f1(store, subset)
        identifiers = "".join(str(INTENT_IDS[intent]) for intent in subset)
        rows.append([identifiers, len(subset), f1])
        f1_by_size.setdefault(len(subset), []).append(f1)

    full_set_f1 = next(f1 for ids, size, f1 in rows if size == len(intents))
    table = format_table(
        ["Intent subset", "#layers", "equivalence F1"],
        rows,
        title="Figure 6 — equivalence F1 per intent subset (AmazonMI)",
    )
    summary = format_table(
        ["#layers", "mean F1"],
        [[size, sum(values) / len(values)] for size, values in sorted(f1_by_size.items())],
        title="Mean F1 by number of intent layers",
    )
    publish("fig6_intent_subsets", table + "\n\n" + summary)

    # Shape check: the full intent set is at least as good as the average
    # two-layer subset (the paper reports it is the best configuration).
    two_layer_mean = sum(f1_by_size[2]) / len(f1_by_size[2])
    assert full_set_f1 >= two_layer_mean - 0.05
