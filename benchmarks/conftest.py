"""Pytest fixtures of the experiment harness (see ``_harness.py`` for details)."""

from __future__ import annotations

import os

import pytest

from _harness import RESULTS_DIR, BenchSettings, ExperimentStore


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run the harness at smoke scale (tiny datasets, 1 epoch) for CI",
    )


@pytest.fixture(scope="session")
def settings(request: pytest.FixtureRequest) -> BenchSettings:
    """Harness scale settings (``--smoke`` / environment overridable)."""
    smoke = request.config.getoption("--smoke") or os.environ.get("REPRO_BENCH_SMOKE")
    return BenchSettings.make_smoke() if smoke else BenchSettings()


@pytest.fixture(scope="session")
def store(settings: BenchSettings) -> ExperimentStore:
    """The shared, lazily computed experiment store."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return ExperimentStore(settings)
