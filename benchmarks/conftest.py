"""Pytest fixtures of the experiment harness (see ``_harness.py`` for details)."""

from __future__ import annotations

import pytest

from _harness import RESULTS_DIR, BenchSettings, ExperimentStore


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    """Harness scale settings (environment-variable overridable)."""
    return BenchSettings()


@pytest.fixture(scope="session")
def store(settings: BenchSettings) -> ExperimentStore:
    """The shared, lazily computed experiment store."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return ExperimentStore(settings)
