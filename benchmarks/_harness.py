"""Shared infrastructure of the experiment harness.

Every ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (Section 5).  Heavy artifacts — synthetic benchmarks, fitted
matchers, FlexER runs — are computed lazily once per session by the
:class:`ExperimentStore` and reused across tables, while each benchmark
function times one representative, self-contained piece of the
computation through ``pytest-benchmark``.

Scale is controlled by environment variables so the harness can be run
quickly (defaults) or closer to paper scale:

* ``REPRO_BENCH_PAIRS`` — candidate pairs per dataset (default 240)
* ``REPRO_BENCH_PRODUCTS`` — products per domain (default 20)
* ``REPRO_BENCH_MATCHER_EPOCHS`` — matcher training epochs (default 20)
* ``REPRO_BENCH_GNN_EPOCHS`` — GraphSAGE training epochs (default 40)

Formatted result tables are printed and also written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.core import FlexER, FlexERResult, MIERSolution
from repro.datasets import MIERBenchmark, load_benchmark
from repro.evaluation import MultiIntentEvaluation, evaluate_solution
from repro.graph import IntentGraphBuilder
from repro.matching import InParallelSolver, MultiLabelSolver, NaiveSolver, PairFeatureConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark datasets in the order used by the paper.
DATASET_NAMES = ("amazon_mi", "walmart_amazon", "wdc")


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@dataclass(frozen=True)
class BenchSettings:
    """Scale knobs of the experiment harness."""

    num_pairs: int = _env_int("REPRO_BENCH_PAIRS", 500)
    products_per_domain: int = _env_int("REPRO_BENCH_PRODUCTS", 30)
    matcher_epochs: int = _env_int("REPRO_BENCH_MATCHER_EPOCHS", 20)
    gnn_epochs: int = _env_int("REPRO_BENCH_GNN_EPOCHS", 120)
    seed: int = _env_int("REPRO_BENCH_SEED", 42)

    def flexer_config(self, k_neighbors: int = 6, gnn_epochs: int | None = None) -> FlexERConfig:
        """The FlexER configuration used throughout the harness."""
        return FlexERConfig(
            matcher=MatcherConfig(
                hidden_dims=(64, 32),
                n_features=256,
                epochs=self.matcher_epochs,
                seed=self.seed,
            ),
            graph=GraphConfig(k_neighbors=k_neighbors),
            gnn=GNNConfig(
                hidden_dim=48,
                epochs=gnn_epochs if gnn_epochs is not None else self.gnn_epochs,
                seed=self.seed,
            ),
        )

    @property
    def feature_config(self) -> PairFeatureConfig:
        """Pair feature encoding used by the baselines."""
        return PairFeatureConfig(n_features=160)


class ExperimentStore:
    """Lazily computed, cached experiment artifacts shared across tables."""

    def __init__(self, settings: BenchSettings) -> None:
        self.settings = settings
        self._benchmarks: dict[str, MIERBenchmark] = {}
        self._baselines: dict[tuple[str, str], tuple[MIERSolution, MultiIntentEvaluation]] = {}
        self._flexer: dict[str, FlexER] = {}
        self._flexer_results: dict[tuple, FlexERResult] = {}

    # --------------------------------------------------------------- datasets

    def benchmark(self, name: str) -> MIERBenchmark:
        """The synthetic benchmark ``name`` at harness scale."""
        if name not in self._benchmarks:
            self._benchmarks[name] = load_benchmark(
                name,
                num_pairs=self.settings.num_pairs,
                products_per_domain=self.settings.products_per_domain,
                seed=self.settings.seed,
            )
        return self._benchmarks[name]

    # --------------------------------------------------------------- baselines

    def baseline(self, dataset: str, solver_name: str) -> tuple[MIERSolution, MultiIntentEvaluation]:
        """Fit + predict a baseline solver on ``dataset`` (cached)."""
        key = (dataset, solver_name)
        if key not in self._baselines:
            benchmark = self.benchmark(dataset)
            split = benchmark.split
            config = self.settings.flexer_config()
            factories = {
                "naive": lambda: NaiveSolver(
                    benchmark.intents,
                    matcher_config=config.matcher,
                    feature_config=self.settings.feature_config,
                ),
                "in_parallel": lambda: InParallelSolver(
                    benchmark.intents,
                    matcher_config=config.matcher,
                    feature_config=self.settings.feature_config,
                ),
                "multi_label": lambda: MultiLabelSolver(
                    benchmark.intents,
                    matcher_config=config.matcher,
                    feature_config=self.settings.feature_config,
                ),
            }
            solver = factories[solver_name]()
            solver.fit(split.train)
            solution = MIERSolution.from_mapping(
                split.test, solver.predict(split.test), solver_name=solver_name
            )
            self._baselines[key] = (solution, evaluate_solution(solution))
        return self._baselines[key]

    # ------------------------------------------------------------------ flexer

    def fitted_flexer(self, dataset: str) -> FlexER:
        """A FlexER instance with trained per-intent matchers (cached)."""
        if dataset not in self._flexer:
            benchmark = self.benchmark(dataset)
            flexer = FlexER(benchmark.intents, self.settings.flexer_config())
            split = benchmark.split
            flexer.fit(split.train, split.valid if len(split.valid) > 0 else None)
            self._flexer[dataset] = flexer
        return self._flexer[dataset]

    def flexer_result(
        self,
        dataset: str,
        intent_subset: tuple[str, ...] | None = None,
        target_intents: tuple[str, ...] | None = None,
        k_neighbors: int | None = None,
    ) -> FlexERResult:
        """A cached FlexER prediction run with optional graph variations."""
        key = (dataset, intent_subset, target_intents, k_neighbors)
        if key not in self._flexer_results:
            benchmark = self.benchmark(dataset)
            flexer = self.fitted_flexer(dataset)
            original_builder = flexer.graph_builder
            if k_neighbors is not None:
                flexer.graph_builder = IntentGraphBuilder(GraphConfig(k_neighbors=k_neighbors))
            try:
                result = flexer.predict(
                    benchmark.split.test,
                    intent_subset=intent_subset,
                    target_intents=target_intents,
                )
            finally:
                flexer.graph_builder = original_builder
            self._flexer_results[key] = result
        return self._flexer_results[key]

    def flexer_evaluation(self, dataset: str) -> MultiIntentEvaluation:
        """Evaluation of the full FlexER run on ``dataset``."""
        return evaluate_solution(self.flexer_result(dataset).solution)


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/results/``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
