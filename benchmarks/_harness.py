"""Shared infrastructure of the experiment harness.

Every ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (Section 5).  Heavy artifacts — synthetic benchmarks, fitted
matchers, FlexER runs — are computed through the staged
:class:`repro.pipeline.PipelineRunner` with one :class:`ArtifactCache`
shared across all tables, so e.g. the Table 8 ``k`` sweep and the
Figure 6 intent-subset grid reuse the matchers and representations
trained for Table 5 instead of recomputing them.  Each benchmark function
times one representative, self-contained piece of the computation through
``pytest-benchmark``.

Scale is controlled by environment variables so the harness can be run
quickly (defaults) or closer to paper scale:

* ``REPRO_BENCH_PAIRS`` — candidate pairs per dataset (default 240)
* ``REPRO_BENCH_PRODUCTS`` — products per domain (default 20)
* ``REPRO_BENCH_MATCHER_EPOCHS`` — matcher training epochs (default 20)
* ``REPRO_BENCH_GNN_EPOCHS`` — GraphSAGE training epochs (default 40)
* ``REPRO_BENCH_SMOKE`` — set to any non-empty value for smoke scale

A ``--smoke`` pytest option (see ``conftest.py``) or ``REPRO_BENCH_SMOKE``
switches to :meth:`BenchSettings.smoke` — tiny dataset sizes and single
training epochs — so CI can exercise the harness end-to-end in seconds.

Formatted result tables are printed and also written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.core import FlexERResult, MIERSolution
from repro.datasets import MIERBenchmark, load_benchmark
from repro.evaluation import MultiIntentEvaluation, evaluate_solution
from repro.matching import InParallelSolver, MultiLabelSolver, NaiveSolver, PairFeatureConfig
from repro.pipeline import ArtifactCache, PipelineResult, PipelineRunner

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark datasets in the order used by the paper.
DATASET_NAMES = ("amazon_mi", "walmart_amazon", "wdc")


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@dataclass(frozen=True)
class BenchSettings:
    """Scale knobs of the experiment harness."""

    num_pairs: int = _env_int("REPRO_BENCH_PAIRS", 500)
    products_per_domain: int = _env_int("REPRO_BENCH_PRODUCTS", 30)
    matcher_epochs: int = _env_int("REPRO_BENCH_MATCHER_EPOCHS", 20)
    gnn_epochs: int = _env_int("REPRO_BENCH_GNN_EPOCHS", 120)
    seed: int = _env_int("REPRO_BENCH_SEED", 42)
    #: Smoke mode: model-quality shape assertions (FlexER vs. baselines)
    #: are skipped because one-epoch models are not expected to rank.
    smoke: bool = False

    @classmethod
    def make_smoke(cls) -> "BenchSettings":
        """Smoke-scale settings: tiny datasets, one training epoch.

        Used by the CI smoke job (``pytest benchmarks/... --smoke``) to
        exercise the full harness path in seconds.
        """
        return cls(
            num_pairs=120,
            products_per_domain=10,
            matcher_epochs=1,
            gnn_epochs=1,
            smoke=True,
        )

    def flexer_config(self, k_neighbors: int = 6, gnn_epochs: int | None = None) -> FlexERConfig:
        """The FlexER configuration used throughout the harness."""
        return FlexERConfig(
            matcher=MatcherConfig(
                hidden_dims=(64, 32),
                n_features=256,
                epochs=self.matcher_epochs,
                seed=self.seed,
            ),
            graph=GraphConfig(k_neighbors=k_neighbors),
            gnn=GNNConfig(
                hidden_dim=48,
                epochs=gnn_epochs if gnn_epochs is not None else self.gnn_epochs,
                seed=self.seed,
            ),
        )

    @property
    def feature_config(self) -> PairFeatureConfig:
        """Pair feature encoding used by the baselines."""
        return PairFeatureConfig(n_features=160)


class ExperimentStore:
    """Lazily computed, cached experiment artifacts shared across tables.

    FlexER runs execute through the staged pipeline with one shared
    artifact cache, so every table reuses the stages (matcher-fit,
    representation, graph, per-intent GNN) computed by earlier tables.
    """

    def __init__(self, settings: BenchSettings) -> None:
        self.settings = settings
        self.cache = ArtifactCache()
        self._runner: PipelineRunner | None = None
        self._benchmarks: dict[str, MIERBenchmark] = {}
        self._baselines: dict[tuple[str, str], tuple[MIERSolution, MultiIntentEvaluation]] = {}
        self._flexer_results: dict[tuple, FlexERResult] = {}

    # --------------------------------------------------------------- datasets

    def benchmark(self, name: str) -> MIERBenchmark:
        """The synthetic benchmark ``name`` at harness scale."""
        if name not in self._benchmarks:
            self._benchmarks[name] = load_benchmark(
                name,
                num_pairs=self.settings.num_pairs,
                products_per_domain=self.settings.products_per_domain,
                seed=self.settings.seed,
            )
        return self._benchmarks[name]

    # --------------------------------------------------------------- baselines

    def baseline(
        self, dataset: str, solver_name: str
    ) -> tuple[MIERSolution, MultiIntentEvaluation]:
        """Fit + predict a baseline solver on ``dataset`` (cached)."""
        key = (dataset, solver_name)
        if key not in self._baselines:
            benchmark = self.benchmark(dataset)
            split = benchmark.split
            config = self.settings.flexer_config()
            factories = {
                "naive": lambda: NaiveSolver(
                    benchmark.intents,
                    matcher_config=config.matcher,
                    feature_config=self.settings.feature_config,
                ),
                "in_parallel": lambda: InParallelSolver(
                    benchmark.intents,
                    matcher_config=config.matcher,
                    feature_config=self.settings.feature_config,
                ),
                "multi_label": lambda: MultiLabelSolver(
                    benchmark.intents,
                    matcher_config=config.matcher,
                    feature_config=self.settings.feature_config,
                ),
            }
            solver = factories[solver_name]()
            solver.fit(split.train)
            solution = MIERSolution.from_mapping(
                split.test, solver.predict(split.test), solver_name=solver_name
            )
            self._baselines[key] = (solution, evaluate_solution(solution))
        return self._baselines[key]

    # ----------------------------------------------------------------- flexer

    @property
    def runner(self) -> PipelineRunner:
        """The one staged runner shared by every table (one cache).

        The solver is no longer a runner property: it is a registry spec
        on each run's config (``FlexERConfig.solver``), so one runner
        serves every representation-source variant.
        """
        if self._runner is None:
            self._runner = PipelineRunner(cache=self.cache)
        return self._runner

    def pipeline_result(
        self,
        dataset: str,
        config: FlexERConfig | None = None,
        intent_subset: tuple[str, ...] | None = None,
        target_intents: tuple[str, ...] | None = None,
        solver: str = "in_parallel",
    ) -> PipelineResult:
        """Run the staged pipeline on ``dataset`` (artifact-cached)."""
        benchmark = self.benchmark(dataset)
        config = config or self.settings.flexer_config()
        if solver != "in_parallel":
            config = replace(config, solver=solver)
        return self.runner.run(
            benchmark.split,
            benchmark.intents,
            config=config,
            intent_subset=intent_subset,
            target_intents=target_intents,
        )

    def flexer_result(
        self,
        dataset: str,
        intent_subset: tuple[str, ...] | None = None,
        target_intents: tuple[str, ...] | None = None,
        k_neighbors: int | None = None,
    ) -> FlexERResult:
        """A FlexER prediction run with optional graph variations.

        Routed through the staged pipeline: repeated variations reuse
        the cached matcher-fit and representation artifacts.
        """
        key = (dataset, intent_subset, target_intents, k_neighbors)
        if key not in self._flexer_results:
            config = self.settings.flexer_config(
                k_neighbors=k_neighbors if k_neighbors is not None else 6
            )
            result = self.pipeline_result(
                dataset,
                config=config,
                intent_subset=intent_subset,
                target_intents=target_intents,
            )
            self._flexer_results[key] = result.flexer
        return self._flexer_results[key]

    def flexer_evaluation(self, dataset: str) -> MultiIntentEvaluation:
        """Evaluation of the full FlexER run on ``dataset``."""
        return evaluate_solution(self.flexer_result(dataset).solution)


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/results/``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
