"""Table 8 — intra-layer edge analysis (k = 0 vs k > 0).

The paper sweeps the number of intra-layer nearest-neighbour edges
``k ∈ {0, 2, 4, 6, 8, 10}`` and reports, per dataset, the equivalence-
intent F1 at k = 0 and the average over the positive k values.  Adding
intra-layer edges consistently helps (Table 8 reports +0.4% to +0.65%).

The sweep runs through the staged pipeline's :class:`BatchRunner`: the
``k`` parameter only affects the graph-build stage, so every scenario
after the first reuses the cached matcher-fit and representation
artifacts and recomputes only the graph and the equivalence GNN.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import evaluate_binary, format_table
from repro.pipeline import BatchRunner, k_sweep

from _harness import publish

#: k values swept by the paper (Section 5.6).
K_VALUES = (0, 2, 4, 6, 8, 10)

#: Paper-reported Table 8 values for reference.
PAPER_TABLE8 = {
    "amazon_mi": {"k0": 0.951, "k_positive": 0.955},
    "walmart_amazon": {"k0": 0.833, "k_positive": 0.838},
    "wdc": {"k0": 0.772, "k_positive": 0.777},
}

DATASET = "amazon_mi"
EQUIVALENCE = "equivalence"


@pytest.mark.benchmark(group="table8-intra-layer")
def test_table8_intra_layer_edges(benchmark, store, settings):
    """Sweep k through the BatchRunner and compare k=0 against k>0 (Table 8)."""
    bench = store.benchmark(DATASET)
    labels = bench.split.test.labels(EQUIVALENCE)
    runner = BatchRunner(store.runner)

    def sweep(k_values):
        scenarios = k_sweep(
            settings.flexer_config(), k_values, target_intents=(EQUIVALENCE,)
        )
        return runner.run(bench.split, bench.intents, scenarios, dataset=DATASET)

    # Time one representative scenario (k=6, the AmazonMI optimum in the
    # paper); it also warms the matcher-fit and representation caches.
    benchmark.pedantic(sweep, args=((6,),), rounds=1, iterations=1)

    runs = sweep(K_VALUES)
    # The swept parameter only touches graph-build: every sweep scenario
    # must reuse the cached matcher and representation artifacts.
    assert all(run.skipped_expensive_stages for run in runs)

    f1_by_k = {
        k: evaluate_binary(run.result.solution.prediction(EQUIVALENCE), labels).f1
        for k, run in zip(K_VALUES, runs)
    }
    k0 = f1_by_k[0]
    k_positive_mean = float(np.mean([f1_by_k[k] for k in K_VALUES if k > 0]))

    rows = [[
        DATASET,
        k0,
        k_positive_mean,
        100.0 * (k_positive_mean - k0) / max(k0, 1e-9),
        PAPER_TABLE8[DATASET]["k0"],
        PAPER_TABLE8[DATASET]["k_positive"],
    ]]
    detail_rows = [
        [f"k={k}", value, "yes" if run.skipped_expensive_stages else "no"]
        for (k, value), run in zip(f1_by_k.items(), runs)
    ]
    table = format_table(
        ["Dataset", "F1 (k=0)", "F1 (k>0 avg)", "delta %", "paper k=0", "paper k>0"],
        rows,
        title="Table 8 — intra-layer edge analysis (equivalence F1)",
    )
    detail = format_table(
        ["k", "F1", "matcher+repr cached"],
        detail_rows,
        title="Per-k equivalence F1 (staged-pipeline sweep)",
    )
    publish("table8_intra_layer_k", table + "\n\n" + detail)

    # Shape check: intra-layer edges do not hurt (paper: they help
    # slightly).  One-epoch smoke models are noise-level, so the quality
    # comparison is skipped there (the cache assertions above still run).
    if not settings.smoke:
        assert k_positive_mean >= k0 - 0.05
