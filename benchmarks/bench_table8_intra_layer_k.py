"""Table 8 — intra-layer edge analysis (k = 0 vs k > 0).

The paper sweeps the number of intra-layer nearest-neighbour edges
``k ∈ {0, 2, 4, 6, 8, 10}`` and reports, per dataset, the equivalence-
intent F1 at k = 0 and the average over the positive k values.  Adding
intra-layer edges consistently helps (Table 8 reports +0.4% to +0.65%).

The harness reruns the graph construction and equivalence-intent GNN for
each k on AmazonMI (matchers are reused), reporting the same two columns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import evaluate_binary, format_table

from _harness import publish

#: k values swept by the paper (Section 5.6).
K_VALUES = (0, 2, 4, 6, 8, 10)

#: Paper-reported Table 8 values for reference.
PAPER_TABLE8 = {
    "amazon_mi": {"k0": 0.951, "k_positive": 0.955},
    "walmart_amazon": {"k0": 0.833, "k_positive": 0.838},
    "wdc": {"k0": 0.772, "k_positive": 0.777},
}

DATASET = "amazon_mi"
EQUIVALENCE = "equivalence"


def _equivalence_f1(store, k: int) -> float:
    result = store.flexer_result(
        DATASET, target_intents=(EQUIVALENCE,), k_neighbors=k
    )
    labels = store.benchmark(DATASET).split.test.labels(EQUIVALENCE)
    return evaluate_binary(result.solution.prediction(EQUIVALENCE), labels).f1


@pytest.mark.benchmark(group="table8-intra-layer")
def test_table8_intra_layer_edges(benchmark, store):
    """Sweep k and compare k=0 against the average over k>0 (Table 8)."""
    # Time one representative graph + GNN run (k=6, the AmazonMI optimum in the paper).
    benchmark.pedantic(_equivalence_f1, args=(store, 6), rounds=1, iterations=1)

    f1_by_k = {k: _equivalence_f1(store, k) for k in K_VALUES}
    k0 = f1_by_k[0]
    k_positive_mean = float(np.mean([f1_by_k[k] for k in K_VALUES if k > 0]))

    rows = [[
        DATASET,
        k0,
        k_positive_mean,
        100.0 * (k_positive_mean - k0) / max(k0, 1e-9),
        PAPER_TABLE8[DATASET]["k0"],
        PAPER_TABLE8[DATASET]["k_positive"],
    ]]
    detail_rows = [[f"k={k}", value] for k, value in f1_by_k.items()]
    table = format_table(
        ["Dataset", "F1 (k=0)", "F1 (k>0 avg)", "delta %", "paper k=0", "paper k>0"],
        rows,
        title="Table 8 — intra-layer edge analysis (equivalence F1)",
    )
    detail = format_table(["k", "F1"], detail_rows, title="Per-k equivalence F1")
    publish("table8_intra_layer_k", table + "\n\n" + detail)

    # Shape check: intra-layer edges do not hurt (paper: they help slightly).
    assert k_positive_mean >= k0 - 0.05
