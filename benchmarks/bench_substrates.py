"""Micro-benchmarks of the substrates (blocking, kNN, encoding, GNN epoch).

These are classic pytest-benchmark measurements (multiple rounds) of the
hot inner loops, complementing the experiment-level tables: q-gram
blocking over the AmazonMI records, exact kNN search (the Faiss
substitute), pair feature encoding (the DITTO-analogue input), one
matcher training epoch, and one GraphSAGE forward pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import ExactNearestNeighbors
from repro.blocking import QGramBlocker
from repro.config import GNNConfig, MatcherConfig
from repro.graph import GraphAggregation, GraphSAGE
from repro.matching import PairFeatureEncoder, PairMatcher
from repro.nn import Tensor

from _harness import publish  # noqa: F401  (imported for parity with other bench modules)


@pytest.mark.benchmark(group="substrate-blocking")
def test_qgram_blocking_speed(benchmark, store):
    """Shared 4-gram blocking over the AmazonMI-like records."""
    dataset = store.benchmark("amazon_mi").dataset
    blocker = QGramBlocker(q=4, max_block_size=100)
    pairs = benchmark(blocker.block, dataset)
    assert len(pairs) > 0


@pytest.mark.benchmark(group="substrate-knn")
def test_exact_knn_speed(benchmark):
    """Exact L2 kNN over 1,000 representation vectors (Faiss substitute)."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(1000, 48))
    index = ExactNearestNeighbors().fit(data)
    result = benchmark(index.search, data, 6, exclude_self=True)
    assert result.indices.shape == (1000, 6)


@pytest.mark.benchmark(group="substrate-encoding")
def test_pair_encoding_speed(benchmark, store):
    """Encoding 100 candidate pairs into matcher features."""
    bench = store.benchmark("amazon_mi")
    encoder = PairFeatureEncoder()
    pairs = bench.candidates.pairs[:100]
    matrix = benchmark(encoder.encode, bench.dataset, pairs)
    assert matrix.shape[0] == len(pairs)


@pytest.mark.benchmark(group="substrate-matcher")
def test_matcher_training_speed(benchmark):
    """Training the pair matcher on 200 synthetic feature vectors."""
    rng = np.random.default_rng(1)
    features = rng.normal(size=(200, 128))
    labels = (features[:, 0] > 0).astype(np.int64)
    config = MatcherConfig(hidden_dims=(32, 16), epochs=5, seed=0)

    def train():
        return PairMatcher(config).fit(features, labels)

    matcher = benchmark(train)
    assert matcher.is_fitted


@pytest.mark.benchmark(group="substrate-gnn")
def test_graphsage_forward_speed(benchmark):
    """One GraphSAGE forward pass over a 1,500-node graph."""
    rng = np.random.default_rng(2)
    num_nodes, dim, degree = 1500, 32, 6
    features = Tensor(rng.normal(size=(num_nodes, dim)))
    targets = np.repeat(np.arange(num_nodes), degree)
    sources = rng.integers(0, num_nodes, size=num_nodes * degree)
    weights = np.full(num_nodes * degree, 1.0 / degree)
    aggregation = GraphAggregation(sources, targets, num_nodes, weights)
    model = GraphSAGE(in_dim=dim, config=GNNConfig(hidden_dim=48, epochs=1))
    logits = benchmark(model, features, aggregation)
    assert logits.shape == (num_nodes, 2)
