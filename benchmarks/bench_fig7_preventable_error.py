"""Figure 7 — preventable error of FlexER vs. the In-parallel baseline.

The preventable error (Eq. 10) of a subsumed intent is the share of its
false positives that a correct negative prediction of a subsuming intent
could have prevented.  The paper reports, on AmazonMI, that FlexER's
preventable error is an order of magnitude lower than In-parallel's for
the equivalence, Set-Cat, and Main-Cat & Set-Cat intents — evidence that
message propagation exploits subsumption relationships.
"""

from __future__ import annotations

import pytest

from repro.core import IntentSet
from repro.evaluation import format_table, preventable_error

from _harness import publish

DATASET = "amazon_mi"

#: Paper-reported preventable-error values (Section 5.5.2) for reference.
PAPER_FIG7 = {
    "equivalence": {"flexer": 7.97e-4, "in_parallel": 1.589e-2},
    "set_category": {"flexer": 2.0e-3, "in_parallel": 6.3e-2},
    "main_and_set_category": {"flexer": 2.0e-3, "in_parallel": 2.1e-2},
}


@pytest.mark.benchmark(group="fig7-preventable-error")
def test_fig7_preventable_error(benchmark, store):
    """Regenerate the Figure 7 comparison on AmazonMI."""
    bench = store.benchmark(DATASET)
    test = bench.split.test
    labels = {intent: test.labels(intent) for intent in bench.intents}

    in_parallel_solution, _ = store.baseline(DATASET, "in_parallel")
    flexer_solution = store.flexer_result(DATASET).solution

    # Derive the subsumption structure from the labels (Definition 4).
    intent_set = IntentSet.from_candidates(bench.candidates)
    relationships = intent_set.relationships(bench.candidates)

    def preventable_for(solution, intent: str) -> float:
        subsuming = tuple(sorted(relationships.subsumed_by(intent)))
        if not subsuming:
            return 0.0
        return preventable_error(solution.predictions, labels, intent, subsuming)

    analysed_intents = [
        intent
        for intent in bench.intents
        if relationships.subsumed_by(intent)
    ]

    def compute_all() -> dict[str, dict[str, float]]:
        return {
            intent: {
                "flexer": preventable_for(flexer_solution, intent),
                "in_parallel": preventable_for(in_parallel_solution, intent),
            }
            for intent in analysed_intents
        }

    values = benchmark.pedantic(compute_all, rounds=1, iterations=1)

    rows = []
    for intent, measurements in values.items():
        paper = PAPER_FIG7.get(intent, {})
        rows.append([
            intent,
            measurements["flexer"],
            measurements["in_parallel"],
            paper.get("flexer", float("nan")),
            paper.get("in_parallel", float("nan")),
        ])
    table = format_table(
        ["Intent", "PE FlexER", "PE In-parallel", "paper PE FlexER", "paper PE In-parallel"],
        rows,
        title="Figure 7 — preventable error on AmazonMI",
        float_digits=5,
    )
    publish("fig7_preventable_error", table)

    # Shape check: FlexER never has a (much) higher preventable error than
    # the baseline on average across the subsumed intents.
    mean_flexer = sum(v["flexer"] for v in values.values()) / max(len(values), 1)
    mean_baseline = sum(v["in_parallel"] for v in values.values()) / max(len(values), 1)
    assert mean_flexer <= mean_baseline + 0.02
