"""Extra ablations for design choices called out in DESIGN.md.

These go beyond the paper's own ablations (Tables 8 and Figure 6):

* **Aggregator** — GraphSAGE mean vs. sum aggregation (the paper uses a
  mean-style aggregation following GraphSAGE defaults).
* **Representation source** — independent per-intent matchers
  (In-parallel, the paper's main configuration, Section 5.2.2) vs. the
  multi-task network's per-intent representations.
* **Inter-layer edges** — removing the inter-layer (peer) edges entirely,
  which disables cross-intent message propagation.

All variants run through the staged pipeline: each ablation only touches
one stage's configuration, so the shared artifact cache supplies every
upstream stage (the aggregator ablation, for instance, reuses matchers,
representations, and the graph, retraining only the equivalence GNN).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import GraphConfig
from repro.evaluation import evaluate_binary, evaluate_solution, format_table

from _harness import publish

DATASET = "amazon_mi"
EQUIVALENCE = "equivalence"


@pytest.mark.benchmark(group="ablation-aggregator")
def test_ablation_aggregator(benchmark, store, settings):
    """Mean vs. sum neighbourhood aggregation in GraphSAGE."""
    bench = store.benchmark(DATASET)
    labels = bench.split.test.labels(EQUIVALENCE)

    def run(aggregator: str) -> float:
        config = settings.flexer_config()
        config = replace(config, gnn=replace(config.gnn, aggregator=aggregator))
        result = store.pipeline_result(
            DATASET, config=config, target_intents=(EQUIVALENCE,)
        )
        return evaluate_binary(result.solution.prediction(EQUIVALENCE), labels).f1

    # Run "sum" first: it warms the matcher/representation/graph caches,
    # so the timed "mean" run measures only the GNN phase the ablation
    # actually varies.
    sum_f1 = run("sum")
    mean_f1 = benchmark.pedantic(run, args=("mean",), rounds=1, iterations=1)
    table = format_table(
        ["Aggregator", "equivalence F1"],
        [["mean", mean_f1], ["sum", sum_f1]],
        title="Ablation — GraphSAGE aggregation function (AmazonMI)",
    )
    publish("ablation_aggregator", table)
    assert mean_f1 >= 0.0 and sum_f1 >= 0.0


@pytest.mark.benchmark(group="ablation-representations")
def test_ablation_representation_source(benchmark, store, settings):
    """Independent (In-parallel) vs. multi-task per-intent representations."""
    independent = evaluate_solution(store.flexer_result(DATASET).solution)

    def run_multi_task():
        return store.pipeline_result(DATASET, solver="multi_label")

    multi_task_result = benchmark.pedantic(run_multi_task, rounds=1, iterations=1)
    multi_task = evaluate_solution(multi_task_result.solution)

    table = format_table(
        ["Representation source", "MI-F", "MI-Acc"],
        [
            ["independent (in-parallel)", independent.mi_f1, independent.mi_accuracy],
            ["multi-task (multi-label)", multi_task.mi_f1, multi_task.mi_accuracy],
        ],
        title="Ablation — intent-based representation source (AmazonMI)",
    )
    publish("ablation_representations", table)
    assert 0.0 <= multi_task.mi_f1 <= 1.0


@pytest.mark.benchmark(group="ablation-inter-layer")
def test_ablation_inter_layer_edges(benchmark, store, settings):
    """Removing inter-layer edges disables cross-intent propagation."""
    bench = store.benchmark(DATASET)
    labels = bench.split.test.labels(EQUIVALENCE)

    with_inter = evaluate_binary(
        store.flexer_result(DATASET, target_intents=(EQUIVALENCE,)).solution.prediction(
            EQUIVALENCE
        ),
        labels,
    ).f1

    def run_without_inter() -> float:
        config = settings.flexer_config()
        graph = GraphConfig(
            k_neighbors=config.graph.k_neighbors, include_inter_layer=False
        )
        result = store.pipeline_result(
            DATASET,
            config=replace(config, graph=graph),
            target_intents=(EQUIVALENCE,),
        )
        return evaluate_binary(result.solution.prediction(EQUIVALENCE), labels).f1

    without_inter = benchmark.pedantic(run_without_inter, rounds=1, iterations=1)
    table = format_table(
        ["Configuration", "equivalence F1"],
        [["with inter-layer edges", with_inter], ["without inter-layer edges", without_inter]],
        title="Ablation — inter-layer (peer) edges (AmazonMI)",
    )
    publish("ablation_inter_layer", table)
    if not settings.smoke:
        assert with_inter >= without_inter - 0.1
