"""Table 7 — per-intent results for every intent except equivalence.

For each non-equivalence intent the harness reports precision, recall,
F1, accuracy, and E_F of FlexER with respect to the per-intent DITTO
analogue (In-parallel), next to the Multi-label baseline — mirroring
Table 7 of the paper.

Expected shape: FlexER's largest gains appear on the intents that are
subsumed by others (Set-Cat and Main-Cat & Set-Cat on AmazonMI), because
message propagation exploits the subsumption structure.
"""

from __future__ import annotations

import pytest

from repro.evaluation import evaluate_solution, format_table, residual_error_reduction

from _harness import DATASET_NAMES, publish

EQUIVALENCE = "equivalence"

#: Paper-reported FlexER F1 per non-equivalence intent (Table 7).
PAPER_TABLE7_FLEXER_F1 = {
    "amazon_mi": {
        "brand": 0.956,
        "set_category": 0.972,
        "main_category": 0.988,
        "main_and_set_category": 0.944,
    },
    "walmart_amazon": {
        "brand": 0.988,
        "main_category": 0.950,
        "general_category": 0.977,
    },
    "wdc": {"category": 0.911, "general_category": 0.921},
}


@pytest.mark.benchmark(group="table7-other-intents")
@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table7_other_intents(benchmark, store, settings, dataset):
    """Regenerate the Table 7 rows for one benchmark dataset."""
    _, in_parallel = store.baseline(dataset, "in_parallel")
    _, multi_label = store.baseline(dataset, "multi_label")
    flexer_result = store.flexer_result(dataset)
    flexer = benchmark.pedantic(
        evaluate_solution, args=(flexer_result.solution,), rounds=1, iterations=1
    )

    other_intents = [
        intent for intent in store.benchmark(dataset).intents if intent != EQUIVALENCE
    ]
    rows = []
    for intent in other_intents:
        baseline_f1 = in_parallel.per_intent[intent].f1
        for model_name, evaluation in (
            ("DITTO (In-parallel)", in_parallel),
            ("Multi-label", multi_label),
            ("FlexER", flexer),
        ):
            metrics = evaluation.per_intent[intent]
            error_reduction = (
                residual_error_reduction(metrics.f1, baseline_f1)
                if model_name == "FlexER"
                else float("nan")
            )
            paper_f1 = (
                PAPER_TABLE7_FLEXER_F1[dataset].get(intent, float("nan"))
                if model_name == "FlexER"
                else float("nan")
            )
            rows.append([
                intent,
                model_name,
                metrics.precision,
                metrics.recall,
                metrics.f1,
                metrics.accuracy,
                error_reduction,
                paper_f1,
            ])
    table = format_table(
        ["Intent", "Model", "P", "R", "F", "Acc", "E_F %", "paper FlexER F"],
        rows,
        title=f"Table 7 — non-equivalence intents on {dataset}",
    )
    publish(f"table7_{dataset}", table)

    # Shape check: averaged over the non-equivalence intents FlexER is
    # competitive.  The tolerance is loose because the category intents of
    # the WDC analogue are where the paper itself reports its smallest
    # gains (E_F of 1%), and the simulator-scale GNN can land slightly
    # below the per-intent matcher there.
    mean_flexer = sum(flexer.per_intent[i].f1 for i in other_intents) / len(other_intents)
    mean_baseline = sum(in_parallel.per_intent[i].f1 for i in other_intents) / len(other_intents)
    if not settings.smoke:
        assert mean_flexer >= mean_baseline - 0.15
