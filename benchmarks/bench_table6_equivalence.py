"""Table 6 — equivalence intent (universal entity resolution) results.

Reports precision, recall, F1, accuracy, and the reduction of residual
error E_F of FlexER with respect to the In-parallel baseline (which is
exactly the DITTO-analogue matcher), for the equivalence intent only.

Expected shape: FlexER improves the equivalence-intent F1 over the
per-intent matcher on every benchmark (the paper reports +6.3% on
AmazonMI, +1.6% on Walmart-Amazon, +2.8% on WDC).
"""

from __future__ import annotations

import pytest

from repro.evaluation import evaluate_solution, format_table, residual_error_reduction

from _harness import DATASET_NAMES, publish

#: Paper-reported equivalence-intent F1 values (Table 6).
PAPER_TABLE6_F1 = {
    "amazon_mi": {"in_parallel": 0.901, "multi_label": 0.912, "flexer": 0.958},
    "walmart_amazon": {"in_parallel": 0.831, "multi_label": 0.810, "flexer": 0.844},
    "wdc": {"in_parallel": 0.761, "multi_label": 0.757, "flexer": 0.782},
}

EQUIVALENCE = "equivalence"


@pytest.mark.benchmark(group="table6-equivalence")
@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table6_equivalence_intent(benchmark, store, dataset):
    """Regenerate the Table 6 rows (universal ER) for one benchmark dataset."""
    per_model = {}
    for solver_name in ("in_parallel", "multi_label"):
        _, evaluation = store.baseline(dataset, solver_name)
        per_model[solver_name] = evaluation.per_intent[EQUIVALENCE]

    flexer_result = store.flexer_result(dataset)
    flexer_evaluation = benchmark.pedantic(
        evaluate_solution, args=(flexer_result.solution,), rounds=1, iterations=1
    )
    per_model["flexer"] = flexer_evaluation.per_intent[EQUIVALENCE]

    rows = []
    for model in ("in_parallel", "multi_label", "flexer"):
        evaluation = per_model[model]
        error_reduction = (
            residual_error_reduction(evaluation.f1, per_model["in_parallel"].f1)
            if model == "flexer"
            else float("nan")
        )
        rows.append([
            model,
            evaluation.precision,
            evaluation.recall,
            evaluation.f1,
            evaluation.accuracy,
            error_reduction,
            PAPER_TABLE6_F1[dataset][model],
        ])
    table = format_table(
        ["Model", "P", "R", "F", "Acc", "E_F %", "paper F"],
        rows,
        title=f"Table 6 — equivalence intent (universal ER) on {dataset}",
    )
    publish(f"table6_{dataset}", table)

    # Shape check: FlexER is at least competitive with the DITTO-analogue baseline.
    assert per_model["flexer"].f1 >= per_model["in_parallel"].f1 - 0.05
