"""Table 9 — run-time analysis of FlexER.

The paper separates (a) the nearest-neighbour computation performed once
per dataset from (b) GNN training + testing (150 epochs) with 2 or 3
GraphSAGE layers, and observes that the GNN phase is negligible compared
with the preparatory DITTO fine-tuning (two orders of magnitude less).

The harness measures, per dataset: the matcher-training time (the DITTO
analogue), the representation + graph construction time (which contains
the kNN search), and the GNN training + testing time for 2- and 3-layer
models, using the timings recorded by the FlexER pipeline plus dedicated
pytest-benchmark measurements of the kNN search itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import ExactNearestNeighbors
from repro.config import GNNConfig
from repro.evaluation import format_table
from repro.graph import IntentNodeClassifier

from _harness import DATASET_NAMES, publish

#: Paper-reported run-times in seconds (Table 9) for reference.
PAPER_TABLE9 = {
    "amazon_mi": {"nn": 398.6, "train2": 11.4, "train3": 16.7},
    "walmart_amazon": {"nn": 139.5, "train2": 8.1, "train3": 11.9},
    "wdc": {"nn": 954.5, "train2": 6.7, "train3": 9.0},
}

EQUIVALENCE = "equivalence"


@pytest.mark.benchmark(group="table9-runtime")
@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table9_runtime(benchmark, store, settings, dataset):
    """Measure the phases of a FlexER run (Table 9).

    The run executes through the staged pipeline; its timings report the
    original compute time of each stage even when the artifact cache
    served it, so the phase breakdown matches a cold run.
    """
    result = store.flexer_result(dataset)
    config = settings.flexer_config()
    graph = result.graph

    # Dedicated measurement of the kNN search over one intent layer
    # (the component the paper reports as "NN computation").
    layer_features = graph.features[: graph.num_pairs]
    index = ExactNearestNeighbors().fit(layer_features)
    benchmark.pedantic(
        index.search,
        args=(layer_features, config.graph.k_neighbors),
        kwargs={"exclude_self": True},
        rounds=1,
        iterations=1,
    )

    # GNN training + testing time with 2 and 3 layers over the same graph.
    split = store.benchmark(dataset).split
    train_index = np.arange(len(split.train))
    labels = split.train.labels(EQUIVALENCE)
    gnn_times = {}
    for num_layers in (2, 3):
        gnn_config = GNNConfig(
            num_layers=num_layers,
            hidden_dim=config.gnn.hidden_dim,
            epochs=config.gnn.epochs,
            seed=config.gnn.seed,
        )
        import time

        start = time.perf_counter()
        IntentNodeClassifier(gnn_config).fit_predict(graph, EQUIVALENCE, train_index, labels)
        gnn_times[num_layers] = time.perf_counter() - start

    timings = result.timings
    rows = [[
        dataset,
        timings.matcher_training_seconds,
        timings.representation_seconds + timings.graph_build_seconds,
        gnn_times[2],
        gnn_times[3],
        PAPER_TABLE9[dataset]["nn"],
        PAPER_TABLE9[dataset]["train2"],
        PAPER_TABLE9[dataset]["train3"],
    ]]
    table = format_table(
        [
            "Dataset",
            "matcher train s",
            "repr + graph (NN) s",
            "GNN 2L s",
            "GNN 3L s",
            "paper NN s",
            "paper 2L s",
            "paper 3L s",
        ],
        rows,
        title=f"Table 9 — run-time analysis on {dataset}",
    )
    publish(f"table9_{dataset}", table)

    # Shape checks from the paper: the GNN phase is cheap relative to
    # matcher training, and three layers cost more than two.
    assert gnn_times[2] < timings.matcher_training_seconds * 5
    assert gnn_times[3] > gnn_times[2] * 0.8
