"""Tables 3 and 4 — benchmark statistics and per-intent positive rates.

Table 3 of the paper reports record/pair/intent counts per benchmark;
Table 4 reports the proportion of positive labels per intent and split.
This harness regenerates both for the synthetic analogues and prints the
paper-reported positive rates next to the measured ones so the label
structure (ordering, subsumption-induced equalities) can be compared.
"""

from __future__ import annotations

import pytest

from repro.datasets import PAPER_TABLE3, PAPER_TABLE4_TEST_POSITIVE_RATES
from repro.evaluation import format_table

from _harness import DATASET_NAMES, publish


@pytest.mark.benchmark(group="table3-table4")
@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_dataset_profile(benchmark, store, dataset):
    """Regenerate the dataset and report Table 3 / Table 4 style statistics."""
    result = benchmark.pedantic(store.benchmark, args=(dataset,), rounds=1, iterations=1)

    stats = result.describe()
    table3_rows = [[
        dataset,
        stats["num_records"],
        stats["num_pairs"],
        stats["num_intents"],
        PAPER_TABLE3[dataset]["records"],
        PAPER_TABLE3[dataset]["pairs"],
        PAPER_TABLE3[dataset]["intents"],
    ]]
    table3 = format_table(
        [
            "Dataset",
            "#Records",
            "#Pairs",
            "#Intents",
            "paper #Records",
            "paper #Pairs",
            "paper #Intents",
        ],
        table3_rows,
        title=f"Table 3 (scaled) — {dataset}",
    )

    paper_rates = PAPER_TABLE4_TEST_POSITIVE_RATES[dataset]
    rows = []
    for intent in result.intents:
        measured = stats["positive_rates"]
        rows.append([
            intent,
            measured["train"][intent],
            measured["valid"][intent],
            measured["test"][intent],
            paper_rates.get(intent, float("nan")),
        ])
    table4 = format_table(
        ["Intent", "%Pos train", "%Pos valid", "%Pos test", "paper %Pos test"],
        rows,
        title=f"Table 4 — positive label proportion ({dataset})",
    )
    publish(f"table3_table4_{dataset}", table3 + "\n\n" + table4)

    # Structural assertions: the measured label profile follows the paper's ordering.
    test_rates = {intent: stats["positive_rates"]["test"][intent] for intent in result.intents}
    assert test_rates["equivalence"] == min(test_rates.values())
