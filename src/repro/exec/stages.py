"""Chunked map/reduce helpers for the embarrassingly parallel stages.

Each helper fans one pipeline stage out over an :class:`Executor` and
merges the shard outputs into a result bit-identical to the serial
computation:

* :func:`encode_pairs_sharded` — pair feature encoding over contiguous
  pair-range shards (row-independent, outputs are vertically stacked);
* :func:`run_classifier_jobs` — per-intent GNN fit/predict, one task per
  intent, with the multiplex graph shipped as plain arrays;
* :func:`query_records_sharded` — online model queries over contiguous
  record shards (each pair's frozen inference depends only on its own
  records, so shard outputs concatenate bit-identically to one batch);
* (blocking joins shard per *key group* inside
  :func:`repro.blocking.base.join_blocks`, which owns the co-occurrence
  reduce step.)

Merge overhead — the wall time spent combining shard outputs back into
one result — is reported to any active
:class:`~repro.perf.instrument.PerfSession` under ``exec:merge:<stage>``
names, so the scaling-curve benchmark can separate parallel compute from
sequential merge cost.

All worker functions here are module-level and take one picklable
payload, as required by the process executor.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..faults import inject
from ..perf.instrument import observe
from .executors import Executor
from .plan import ShardPlan

#: Stage-name prefix of merge-overhead records in perf sessions.
MERGE_STAGE_PREFIX = "exec:merge:"


def _observe_merge(stage: str, seconds: float, items: int | None = None) -> None:
    observe(f"{MERGE_STAGE_PREFIX}{stage}", seconds, items=items)


# -------------------------------------------------------- pair feature encoding


def _encode_shard_worker(payload):
    """Encode one contiguous shard of candidate pairs (executor task)."""
    # Imported lazily: repro.matching imports this package at start-up.
    from ..matching.features import PairFeatureEncoder

    inject("exec.encode")
    feature_config, dataset, pairs = payload
    encoder = PairFeatureEncoder(feature_config, vectorized=True)
    return encoder.encode_batch(dataset, list(pairs))


def encode_pairs_sharded(
    feature_config,
    dataset,
    pairs: Sequence,
    executor: Executor,
) -> np.ndarray:
    """Batch-encode ``pairs`` across ``executor`` workers, preserving order.

    Each shard runs :meth:`PairFeatureEncoder.encode_batch` on a fresh
    encoder (no shared caches between workers); since every feature row
    depends only on its own pair, stacking the shard matrices in plan
    order is bit-identical to one unsharded batch encode.
    """
    plan = ShardPlan.contiguous(len(pairs), executor.workers)
    payloads = [
        (feature_config, dataset, tuple(shard_pairs)) for shard_pairs in plan.take(list(pairs))
    ]
    matrices = executor.map(_encode_shard_worker, payloads)
    start = time.perf_counter()
    merged = np.vstack(matrices) if matrices else None
    _observe_merge("encode", time.perf_counter() - start, items=len(pairs))
    if merged is None:
        raise ValueError("encode_pairs_sharded requires at least one pair")
    return merged


# ------------------------------------------------------------ per-intent GNNs


def _classifier_job_worker(payload):
    """Train one per-intent GNN from shipped arrays (executor task)."""
    # Imported lazily so spawned workers resolve the full package first.
    from ..graph.sage import run_classifier_job

    inject("exec.gnn")
    graph_payload, classifier_spec, gnn_config, job = payload
    return run_classifier_job(graph_payload, classifier_spec, gnn_config, job)


def run_classifier_jobs(
    graph,
    classifier_spec: dict[str, object],
    gnn_config,
    jobs: Sequence,
    executor: Executor,
) -> list[tuple[np.ndarray, float, float]]:
    """Run one GNN fit/predict task per job (intent) through ``executor``.

    The graph ships once per task as its
    :meth:`~repro.graph.multiplex.MultiplexGraph.to_payload` arrays;
    every result tuple is ``(layer_probabilities, best_validation_f1,
    elapsed_seconds, model_state)`` in job order.
    """
    if not jobs:
        return []
    graph_payload = graph.to_payload()
    payloads = [(graph_payload, classifier_spec, gnn_config, job) for job in jobs]
    results = executor.map(_classifier_job_worker, payloads)
    _observe_merge("gnn", 0.0, items=len(jobs))
    return results


# ------------------------------------------------------------- model queries


def _query_shard_worker(payload):
    """Run one contiguous record shard through a rebuilt model (executor task)."""
    # Imported lazily so spawned workers resolve the full package first.
    from ..model import ResolverModel

    inject("exec.query")
    arrays, document, records, kwargs = payload
    model = ResolverModel.from_payload(arrays, {"model": document})
    session = model.session()
    return session.query(list(records), mode="online", **kwargs)


def query_records_sharded(
    model,
    records: Sequence,
    executor: Executor,
    intents: Sequence[str] | None = None,
    k: int = 5,
    session=None,
):
    """Shard an online query micro-batch across ``executor`` workers.

    The model ships as its payload arrays (one copy per shard task) and
    each worker serves its contiguous record range in ``"online"`` mode.
    Because frozen inference is per-pair independent, concatenating the
    shard outputs in plan order is bit-identical to one unsharded
    ``model.query(records, mode="online")`` call — which is exactly what
    a serial (or empty) executor falls back to.

    ``session`` optionally names the :class:`~repro.model.QuerySession`
    to validate with and to serve the serial fallback from, so callers
    that pool sessions (the :mod:`repro.serve` layer) reuse their warm
    per-session state instead of the model's default session.
    """
    from ..model import QueryResult

    records = list(records)
    if not executor.is_parallel or len(records) < 2:
        if session is not None:
            return session.query(records, intents=intents, k=k, mode="online")
        return model.query(records, intents=intents, k=k, mode="online")
    # Validate the whole batch up front — per-shard validation cannot see
    # cross-shard duplicates, and the serial fallback above would reject
    # them, so error behaviour must not depend on the executor.
    (session if session is not None else model.session()).validate(records, intents)
    start = time.perf_counter()
    arrays = model.payload_arrays()
    document = model._document()
    kwargs = {"intents": tuple(intents) if intents is not None else None, "k": k}
    plan = ShardPlan.contiguous(len(records), executor.workers)
    payloads = [
        (arrays, document, tuple(shard_records), kwargs)
        for shard_records in plan.take(records)
    ]
    results = executor.map(_query_shard_worker, payloads)
    merge_start = time.perf_counter()
    merged_intents = results[0].intents
    merged = QueryResult(
        pairs=[pair for result in results for pair in result.pairs],
        record_ids=tuple(
            record_id for result in results for record_id in result.record_ids
        ),
        intents=merged_intents,
        probabilities={
            intent: np.concatenate([result.probabilities[intent] for result in results])
            for intent in merged_intents
        },
        predictions={
            intent: np.concatenate([result.predictions[intent] for result in results])
            for intent in merged_intents
        },
        candidates_per_record={
            record_id: ids
            for result in results
            for record_id, ids in result.candidates_per_record.items()
        },
        mode="online",
        elapsed_seconds=time.perf_counter() - start,
    )
    _observe_merge("query", time.perf_counter() - merge_start, items=len(records))
    return merged
