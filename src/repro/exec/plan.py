"""Shard planning — how a stage's work is partitioned across workers.

A :class:`ShardPlan` assigns the *positions* of a work list (candidate
pairs, blocking keys, intents) to shards.  Two strategies cover the
pipeline's embarrassingly parallel stages:

* :meth:`ShardPlan.contiguous` — order-preserving contiguous ranges, for
  row-independent batch computations whose outputs are concatenated back
  (pair feature encoding);
* :meth:`ShardPlan.balanced` — greedy longest-processing-time assignment
  over per-item weights, for heterogeneous work such as blocking keys
  (cost grows quadratically with block size) or per-intent model
  training.

Plans only describe the partition; executors (:mod:`repro.exec.executors`)
run the per-shard tasks and the calling stage merges the outputs.  Both
strategies are deterministic, so a sharded run partitions identically
across processes, threads, and repeat invocations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Sequence

from ..exceptions import ExecutionError


@dataclass(frozen=True)
class Shard:
    """One unit of sharded work: positions into the stage's work list."""

    index: int
    items: tuple[int, ...]
    weight: float = 0.0

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``num_items`` work items into shards.

    Every item position in ``range(num_items)`` appears in exactly one
    shard, and no shard is empty — a plan over zero items has zero
    shards, and requesting more shards than items yields one shard per
    item.
    """

    num_items: int
    shards: tuple[Shard, ...]

    def __post_init__(self) -> None:
        covered = sorted(position for shard in self.shards for position in shard.items)
        if covered != list(range(self.num_items)):
            raise ExecutionError(
                f"shard plan does not cover items 0..{self.num_items - 1} exactly once"
            )
        if any(not shard.items for shard in self.shards):
            raise ExecutionError("shard plans must not contain empty shards")

    @property
    def num_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    @property
    def is_empty(self) -> bool:
        """Whether the plan carries no work at all."""
        return self.num_items == 0

    # ------------------------------------------------------------- strategies

    @classmethod
    def contiguous(cls, num_items: int, max_shards: int) -> "ShardPlan":
        """Split ``num_items`` positions into contiguous, size-balanced ranges.

        Shard sizes differ by at most one and order is preserved, so
        concatenating per-shard outputs reproduces the unsharded order.
        ``max_shards`` is capped at ``num_items`` — a plan never contains
        an empty shard, and zero items produce zero shards.
        """
        if num_items < 0:
            raise ExecutionError("num_items must be non-negative")
        if max_shards < 1:
            raise ExecutionError("max_shards must be at least 1")
        num_shards = min(max_shards, num_items)
        if num_shards == 0:
            return cls(num_items=0, shards=())
        base, extra = divmod(num_items, num_shards)
        shards: list[Shard] = []
        cursor = 0
        for index in range(num_shards):
            size = base + (1 if index < extra else 0)
            items = tuple(range(cursor, cursor + size))
            shards.append(Shard(index=index, items=items, weight=float(size)))
            cursor += size
        return cls(num_items=num_items, shards=tuple(shards))

    @classmethod
    def balanced(cls, weights: Sequence[float], max_shards: int) -> "ShardPlan":
        """Greedy LPT assignment of weighted items to size-balanced shards.

        Items are assigned heaviest-first to the least-loaded shard (ties
        broken by shard index, so the plan is deterministic).  A single
        oversized item — e.g. one blocking key indexing most of the
        dataset — therefore occupies a shard of its own while the
        remaining items balance across the other shards.  Within each
        shard, item positions stay in ascending order.
        """
        if max_shards < 1:
            raise ExecutionError("max_shards must be at least 1")
        if any(weight < 0 for weight in weights):
            raise ExecutionError("shard weights must be non-negative")
        num_items = len(weights)
        num_shards = min(max_shards, num_items)
        if num_shards == 0:
            return cls(num_items=0, shards=())
        order = sorted(range(num_items), key=lambda position: (-weights[position], position))
        loads: list[tuple[float, int]] = [(0.0, index) for index in range(num_shards)]
        heapq.heapify(loads)
        members: dict[int, list[int]] = {index: [] for index in range(num_shards)}
        for position in order:
            load, index = heapq.heappop(loads)
            members[index].append(position)
            heapq.heappush(loads, (load + float(weights[position]), index))
        shards = tuple(
            Shard(
                index=index,
                items=tuple(sorted(members[index])),
                weight=float(sum(weights[position] for position in members[index])),
            )
            for index in range(num_shards)
        )
        return cls(num_items=num_items, shards=shards)

    # -------------------------------------------------------------- utilities

    def take(self, items: Sequence) -> list[list]:
        """Materialize each shard's slice of ``items`` (one list per shard)."""
        if len(items) != self.num_items:
            raise ExecutionError(
                f"plan covers {self.num_items} items but {len(items)} were given"
            )
        return [[items[position] for position in shard.items] for shard in self.shards]

    def restore(self, shard_outputs: Sequence[Sequence]) -> list:
        """Scatter per-item shard outputs back into original item order.

        ``shard_outputs[s][j]`` must correspond to item
        ``shards[s].items[j]``; the result has one entry per original
        item position.
        """
        if len(shard_outputs) != self.num_shards:
            raise ExecutionError(
                f"plan has {self.num_shards} shards but {len(shard_outputs)} outputs were given"
            )
        merged: list = [None] * self.num_items
        for shard, outputs in zip(self.shards, shard_outputs):
            if len(outputs) != len(shard.items):
                raise ExecutionError(
                    f"shard {shard.index} produced {len(outputs)} outputs "
                    f"for {len(shard.items)} items"
                )
            for position, value in zip(shard.items, outputs):
                merged[position] = value
        return merged
