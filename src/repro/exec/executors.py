"""The executor component family: serial, thread, and process backends.

An :class:`Executor` runs one stage's shard tasks and returns their
results in submission order.  All three built-ins share the same
contract:

* ``map(fn, payloads)`` preserves payload order;
* any task failure — including a worker process dying mid-task — raises
  a typed :class:`~repro.exceptions.ExecutionError` (never a hang, never
  an executor-specific exception type);
* executors never change results: a stage sharded over any executor is
  bit-identical to its serial run, which is why executor specs are
  deliberately excluded from pipeline stage fingerprints (cached
  artifacts stay valid across executor choices).

``ProcessExecutor`` tasks must be module-level functions with picklable
payloads; the pipeline ships stage inputs as plain arrays, frozen config
dataclasses, and ``state_dict`` mappings for exactly this reason.

Executors are registered in :data:`repro.registry.EXECUTORS` under the
keys ``serial`` / ``threads`` / ``processes`` and serialize to specs like
any other component: ``{"type": "processes", "params": {"workers": 4}}``.
"""

from __future__ import annotations

import abc
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from collections.abc import Callable, Mapping, Sequence
from functools import partial

from .._spec import normalize_spec
from ..exceptions import ConfigurationError, ExecutionError
from ..faults import RetryPolicy, inject

#: Worker-count shorthand meaning "one worker per available CPU".
AUTO_WORKERS = 0


def available_cpus() -> int:
    """Number of CPUs this process may run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Base class of the executor family.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``0`` (:data:`AUTO_WORKERS`) resolves to
        :func:`available_cpus` at construction time.
    """

    #: Registry key of the concrete executor (set by subclasses).
    spec_type: str = ""

    def __init__(self, workers: int = 1) -> None:
        workers = int(workers)
        if workers == AUTO_WORKERS:
            workers = available_cpus()
        if workers < 1:
            raise ConfigurationError("executor workers must be positive (or 0 for auto)")
        self.workers = workers
        #: Optional :class:`~repro.faults.RetryPolicy` for failed tasks.
        #: Carried as a mutable attribute — never part of ``to_spec()`` —
        #: so executor specs, their canonical JSON, and the pipeline's
        #: executor memoization keys are unchanged by retry settings.
        self.retry: RetryPolicy | None = None

    @property
    def is_parallel(self) -> bool:
        """Whether sharded stage paths should fan work out through this executor."""
        return True

    def to_spec(self) -> dict[str, object]:
        """Serialize the executor into a registry spec."""
        return {"type": self.spec_type, "params": {"workers": self.workers}}

    @classmethod
    def from_spec(cls, params: Mapping[str, object]) -> "Executor":
        """Construct the executor from the parameters of a spec."""
        return cls(**params)

    @abc.abstractmethod
    def map(self, fn: Callable, payloads: Sequence) -> list:
        """Run ``fn`` over every payload; results keep payload order.

        Raises :class:`~repro.exceptions.ExecutionError` when any task
        fails, chaining the original exception as ``__cause__``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


def _wrap_failure(executor: Executor, position: int, total: int, error: BaseException):
    return ExecutionError(
        f"{executor.spec_type} executor: task {position + 1}/{total} failed with "
        f"{type(error).__name__}: {error}"
    )


def _run_task(fn: Callable, payload):
    """Executor task wrapper: arm the ``exec.task`` injection point.

    Module-level (and combined with ``fn`` via :func:`functools.partial`)
    so it pickles into process-pool workers, where the hook resolves any
    plan inherited through ``REPRO_FAULTS``.
    """
    inject("exec.task")
    return fn(payload)


class SerialExecutor(Executor):
    """Run every task inline in the calling thread (the default executor)."""

    spec_type = "serial"

    @property
    def is_parallel(self) -> bool:
        return False

    def map(self, fn: Callable, payloads: Sequence) -> list:
        policy = self.retry
        results = []
        for position, payload in enumerate(payloads):
            attempt = 0
            while True:
                try:
                    results.append(_run_task(fn, payload))
                    break
                except ExecutionError:
                    # Already wrapped deeper down — a nested executor
                    # owns (and has exhausted) its own retry budget.
                    raise
                except Exception as error:
                    attempt += 1
                    if policy is None or attempt >= policy.attempts:
                        raise _wrap_failure(self, position, len(payloads), error) from error
                    time.sleep(policy.delay(attempt))
        return results


class _PoolExecutor(Executor):
    """Shared pool lifecycle and submit/collect logic of the parallel backends.

    The worker pool is created lazily on the first ``map`` call and
    **reused across calls**, so one executor driving a multi-stage
    pipeline pays worker start-up once rather than once per stage.  A
    failed call discards the pool (a broken process pool cannot be
    reused) and the next ``map`` starts a fresh one.
    """

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool = None

    def _make_pool(self, max_workers: int):
        raise NotImplementedError

    def _acquire_pool(self):
        if self._pool is None:
            self._pool = self._make_pool(self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (a later ``map`` restarts it)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    def map(self, fn: Callable, payloads: Sequence) -> list:
        if not payloads:
            return []
        task = partial(_run_task, fn)
        if self.retry is None or self.retry.retries == 0:
            return self._map_once(task, payloads)
        return self._map_with_retry(task, payloads)

    def _map_once(self, task: Callable, payloads: Sequence) -> list:
        pool = self._acquire_pool()
        futures = [pool.submit(task, payload) for payload in payloads]
        results = []
        for position, future in enumerate(futures):
            try:
                results.append(future.result())
            except ExecutionError:
                self.close()
                raise
            except Exception as error:
                # Includes BrokenProcessPool (a RuntimeError) when a
                # worker dies abruptly: the failure surfaces as a typed
                # error instead of hanging on unfinished futures, and
                # the (possibly broken) pool is discarded so the
                # executor stays usable.  KeyboardInterrupt/SystemExit
                # deliberately propagate unwrapped.
                for pending in futures[position + 1 :]:
                    pending.cancel()
                self.close()
                raise _wrap_failure(self, position, len(payloads), error) from error
        return results

    def _map_with_retry(self, task: Callable, payloads: Sequence) -> list:
        """Per-shard retry: rerun only the failed payloads, in place.

        Every attempt waits for *all* in-flight futures (no early
        cancel — we need to know exactly which shards failed), then
        discards the pool so a broken process pool respawns fresh, and
        resubmits the failed positions after the policy's backoff.
        Because tasks are pure functions of their payloads, a retried
        run's results are bit-identical to a fault-free one.
        """
        policy = self.retry
        results: list = [None] * len(payloads)
        pending = list(range(len(payloads)))
        for attempt in range(policy.attempts):
            pool = self._acquire_pool()
            futures = [(position, pool.submit(task, payloads[position])) for position in pending]
            failed = []
            last_failure = None
            for position, future in futures:
                try:
                    results[position] = future.result()
                except ExecutionError:
                    # Pre-wrapped by a nested executor: its own retry
                    # budget is spent, so rerunning it here cannot help.
                    self.close()
                    raise
                except (KeyboardInterrupt, SystemExit):
                    self.close()
                    raise
                except Exception as error:
                    failed.append(position)
                    last_failure = (position, error)
            if not failed:
                return results
            self.close()
            if attempt + 1 >= policy.attempts:
                position, error = last_failure
                raise _wrap_failure(self, position, len(payloads), error) from error
            time.sleep(policy.delay(attempt + 1))
            pending = failed
        return results


class ThreadExecutor(_PoolExecutor):
    """Fan tasks out over a thread pool.

    Suited to stages whose inner kernels release the GIL (numpy/scipy
    calls) and to cheap fan-outs where process start-up would dominate.
    """

    spec_type = "threads"

    def __init__(self, workers: int = AUTO_WORKERS) -> None:
        super().__init__(workers)

    def _make_pool(self, max_workers: int):
        return ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="repro-exec")


class ProcessExecutor(_PoolExecutor):
    """Fan tasks out over a process pool (one Python process per worker).

    Parameters
    ----------
    workers:
        Pool size (``0`` for one per available CPU).
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` where
        available (cheap on Linux — workers inherit loaded datasets)
        and falls back to ``spawn`` elsewhere.
    """

    spec_type = "processes"

    def __init__(self, workers: int = AUTO_WORKERS, start_method: str | None = None) -> None:
        super().__init__(workers)
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            resolved = "fork" if "fork" in methods else "spawn"
        elif start_method in methods:
            resolved = start_method
        else:
            raise ConfigurationError(
                f"start method {start_method!r} is not available (have: {methods})"
            )
        self.start_method = resolved
        self._context = multiprocessing.get_context(resolved)

    def to_spec(self) -> dict[str, object]:
        return {
            "type": self.spec_type,
            "params": {"workers": self.workers, "start_method": self.start_method},
        }

    def _make_pool(self, max_workers: int):
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=self._context)


#: The built-in executor classes, keyed by spec type (the registry in
#: :mod:`repro.registry.components` is built from this mapping).
BUILTIN_EXECUTORS: dict[str, type[Executor]] = {
    SerialExecutor.spec_type: SerialExecutor,
    ThreadExecutor.spec_type: ThreadExecutor,
    ProcessExecutor.spec_type: ProcessExecutor,
}


def executor_spec(executor: object = None, workers: int | None = None) -> dict[str, object]:
    """Normalize an executor description into a canonical registry spec.

    Accepts ``None`` (serial), a registry key, a spec mapping, or an
    :class:`Executor` instance; ``workers`` (when given) overrides the
    spec's worker count.  This is the helper behind
    ``repro.resolve(..., executor="processes", workers=2)``.
    """
    if isinstance(executor, Executor):
        spec = executor.to_spec()
    else:
        spec = normalize_spec(executor if executor is not None else "serial", context="executor spec")
    if workers is not None:
        params = dict(spec.get("params", {}))
        params["workers"] = int(workers)
        spec = {"type": spec["type"], "params": params}
    return normalize_spec(spec, context="executor spec")


def make_executor(executor: object = None, workers: int | None = None) -> Executor:
    """Build an :class:`Executor` from any accepted executor description."""
    if isinstance(executor, Executor) and workers is None:
        return executor
    spec = executor_spec(executor, workers)
    component = BUILTIN_EXECUTORS.get(str(spec["type"]))
    if component is None:
        # Plugin executors registered at runtime resolve through the
        # registry; imported lazily to keep this module cycle-free.
        from ..registry import EXECUTORS

        return EXECUTORS.create(spec)
    return component.from_spec(dict(spec["params"]))
