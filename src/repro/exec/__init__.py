"""Sharded parallel execution: shard plans, executors, and stage helpers.

This package is the pipeline's horizontal-scaling seam.  A
:class:`ShardPlan` partitions a stage's work (candidate pairs, blocking
key groups, intents), an :class:`Executor` — ``serial``, ``threads``, or
``processes``, all registered in :data:`repro.registry.EXECUTORS` — runs
the per-shard tasks, and the helpers in :mod:`repro.exec.stages` merge
shard outputs into results bit-identical to the serial path.  Because
results never depend on the executor, executor specs stay out of
pipeline stage fingerprints: artifacts cached by a serial run are hits
for a process-parallel run and vice versa.

>>> import repro
>>> result = repro.resolve(  # doctest: +SKIP
...     benchmark.dataset,
...     labeler=labeler,
...     executor="processes",
...     workers=4,
... )
"""

from ..exceptions import ExecutionError
from .executors import (
    AUTO_WORKERS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cpus,
    executor_spec,
    make_executor,
)
from .plan import Shard, ShardPlan
from .stages import (
    MERGE_STAGE_PREFIX,
    encode_pairs_sharded,
    query_records_sharded,
    run_classifier_jobs,
)

__all__ = [
    "AUTO_WORKERS",
    "ExecutionError",
    "Executor",
    "MERGE_STAGE_PREFIX",
    "ProcessExecutor",
    "SerialExecutor",
    "Shard",
    "ShardPlan",
    "ThreadExecutor",
    "available_cpus",
    "encode_pairs_sharded",
    "executor_spec",
    "make_executor",
    "query_records_sharded",
    "run_classifier_jobs",
]
