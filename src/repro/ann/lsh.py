"""Banded signed-random-projection LSH for sub-linear candidate probing.

The second sub-linear alternative to
:class:`~repro.ann.knn.ExactNearestNeighbors`: each indexed vector is
signed against ``num_bands * rows_per_band`` random hyperplanes, the
sign bits of each band are packed into one integer key, and a query
retrieves the union of every band bucket its own key lands in.  Two
vectors with cosine similarity ``s`` agree on one hyperplane with
probability ``1 - arccos(s) / pi``, so a band of ``r`` rows collides
with probability ``p^r`` and ``b`` bands with ``1 - (1 - p^r)^b`` — the
classic banding curve: more rows sharpen the similarity threshold, more
bands raise recall.

Probed candidates are re-ranked by exact squared-L2 distance against
the query, so within the candidate set the ranking matches the exact
index bit-for-bit.  Buckets are kept as per-band key-sorted orderings
(rebuilt with stable sorts), which makes the whole structure
reconstructible from the ``(n, num_bands)`` signature matrix alone —
exactly what persists in the model artifact.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .knn import NeighborResult


class SrpBandIndex:
    """Signed-random-projection banding index over squared-L2 reranking.

    Parameters
    ----------
    num_bands:
        Number of independent hash bands; raises recall (and candidate
        volume) roughly linearly.
    rows_per_band:
        Hyperplane sign bits per band key; sharpens the similarity
        threshold exponentially.  Must stay below 63 so a band key fits
        a signed 64-bit integer.
    seed:
        Seed of the random hyperplane matrix; the projections are
        re-derived from it at load time, so only signatures and vectors
        need persisting.
    """

    def __init__(self, num_bands: int = 32, rows_per_band: int = 12, seed: int = 0) -> None:
        if num_bands <= 0:
            raise ConfigurationError("num_bands must be positive")
        if not 0 < rows_per_band < 63:
            raise ConfigurationError("rows_per_band must lie in [1, 62]")
        self.num_bands = int(num_bands)
        self.rows_per_band = int(rows_per_band)
        self.seed = int(seed)
        self._data: np.ndarray | None = None
        self._sq: np.ndarray | None = None
        self._signatures: np.ndarray | None = None
        self._projections: np.ndarray | None = None
        #: Per band: indexed rows in ascending key order, and their keys.
        self._band_order: np.ndarray | None = None
        self._band_keys: np.ndarray | None = None

    @property
    def num_indexed(self) -> int:
        """Number of indexed rows."""
        return 0 if self._data is None else self._data.shape[0]

    def _ensure_projections(self, dim: int) -> np.ndarray:
        if self._projections is None or self._projections.shape[0] != dim:
            rng = np.random.default_rng(self.seed)
            self._projections = rng.standard_normal(
                (dim, self.num_bands * self.rows_per_band)
            )
        return self._projections

    def signatures_of(self, vectors: np.ndarray) -> np.ndarray:
        """Packed ``(rows, num_bands)`` int64 band keys of ``vectors``."""
        vectors = np.asarray(vectors, dtype=np.float64)
        projections = self._ensure_projections(vectors.shape[1])
        bits = (vectors @ projections) > 0
        weights = 1 << np.arange(self.rows_per_band, dtype=np.int64)
        reshaped = bits.reshape(len(vectors), self.num_bands, self.rows_per_band)
        return reshaped @ weights

    def _rebuild_tables(self) -> None:
        """Derive the per-band sorted bucket tables from the signatures."""
        assert self._signatures is not None
        n = self._signatures.shape[0]
        self._band_order = np.empty((self.num_bands, n), dtype=np.int64)
        self._band_keys = np.empty((self.num_bands, n), dtype=np.int64)
        positions = np.arange(n)
        for band in range(self.num_bands):
            keys = self._signatures[:, band]
            order = np.lexsort((positions, keys))
            self._band_order[band] = order
            self._band_keys[band] = keys[order]

    def fit(self, data: np.ndarray) -> "SrpBandIndex":
        """Sign, band, and bucket every row of ``data``."""
        vectors = np.asarray(data, dtype=np.float64)
        if vectors.ndim != 2:
            raise ConfigurationError("index data must be a 2-D array")
        self._data = vectors
        self._sq = (vectors**2).sum(axis=1)
        self._signatures = self.signatures_of(vectors)
        self._rebuild_tables()
        return self

    def import_arrays(self, vectors: np.ndarray, signatures: np.ndarray) -> None:
        """Restore the index from persisted vectors and band signatures."""
        vectors = np.asarray(vectors, dtype=np.float64)
        signatures = np.asarray(signatures, dtype=np.int64)
        if signatures.shape != (vectors.shape[0], self.num_bands):
            raise ConfigurationError("signatures must be (rows, num_bands)")
        self._data = vectors
        self._sq = (vectors**2).sum(axis=1)
        self._signatures = signatures
        self._ensure_projections(vectors.shape[1])
        self._rebuild_tables()

    def export_arrays(self) -> dict[str, np.ndarray]:
        """Fitted state as plain arrays (vectors and band signatures)."""
        if self._data is None or self._signatures is None:
            raise ConfigurationError("the index must be fitted before exporting state")
        return {"vectors": self._data, "signatures": self._signatures}

    def insert(self, new_vectors: np.ndarray) -> None:
        """Append rows and re-derive the bucket tables."""
        if self._data is None or self._signatures is None:
            raise ConfigurationError("the index must be fitted before inserting")
        new_vectors = np.asarray(new_vectors, dtype=np.float64)
        if new_vectors.ndim != 2 or new_vectors.shape[1] != self._data.shape[1]:
            raise ConfigurationError("inserted rows must match the indexed dimensionality")
        self._data = np.concatenate([np.asarray(self._data), new_vectors], axis=0)
        self._sq = (self._data**2).sum(axis=1)
        self._signatures = np.concatenate(
            [np.asarray(self._signatures), self.signatures_of(new_vectors)], axis=0
        )
        self._rebuild_tables()

    def update_rows(self, rows: np.ndarray, new_vectors: np.ndarray) -> None:
        """Replace indexed rows in place and re-derive the bucket tables."""
        if self._data is None or self._signatures is None:
            raise ConfigurationError("the index must be fitted before updating")
        data = np.array(self._data, dtype=np.float64)
        signatures = np.array(self._signatures, dtype=np.int64)
        data[rows] = np.asarray(new_vectors, dtype=np.float64)
        signatures[rows] = self.signatures_of(data[rows])
        self._data = data
        self._sq = (data**2).sum(axis=1)
        self._signatures = signatures
        self._rebuild_tables()

    def probe(self, query: np.ndarray) -> np.ndarray:
        """Ascending indexed rows sharing at least one band bucket with ``query``."""
        if self._data is None or self._band_keys is None or self._band_order is None:
            raise ConfigurationError("the index must be fitted before probing")
        keys = self.signatures_of(np.asarray(query, dtype=np.float64)[None, :])[0]
        hits: list[np.ndarray] = []
        for band in range(self.num_bands):
            sorted_keys = self._band_keys[band]
            lo = int(np.searchsorted(sorted_keys, keys[band], side="left"))
            hi = int(np.searchsorted(sorted_keys, keys[band], side="right"))
            if hi > lo:
                hits.append(self._band_order[band][lo:hi])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))

    def search(self, queries: np.ndarray, k: int) -> NeighborResult:
        """Exact-reranked bucket candidates of each query row.

        Rows whose buckets supply fewer than ``k`` candidates are padded
        with index ``-1`` and distance ``inf``.  Each query probes and
        reranks independently of the rest of the batch.
        """
        if self._data is None or self._sq is None:
            raise ConfigurationError("the index must be fitted before searching")
        if k <= 0:
            raise ConfigurationError("k must be positive")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._data.shape[1]:
            raise ConfigurationError("queries must match the indexed dimensionality")
        num_queries = queries.shape[0]
        effective_k = min(k, self.num_indexed)
        indices = np.full((num_queries, effective_k), -1, dtype=np.int64)
        distances = np.full((num_queries, effective_k), np.inf)
        for row in range(num_queries):
            candidates = self.probe(queries[row])
            if len(candidates) == 0:
                continue
            query = queries[row]
            dists = (
                self._sq[candidates]
                - 2.0 * (self._data[candidates] @ query)
                + float(query @ query)
            )
            # ``candidates`` is ascending, so the stable sort breaks
            # distance ties by index — same rule as the exact index.
            order = np.argsort(dists, kind="stable")[:effective_k]
            indices[row, : len(order)] = candidates[order]
            distances[row, : len(order)] = dists[order]
        return NeighborResult(indices=indices, distances=distances)


__all__ = ["SrpBandIndex"]
