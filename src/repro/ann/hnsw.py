"""HNSW-style layered neighbour graph for sub-linear nearest-neighbour search.

:class:`~repro.ann.knn.ExactNearestNeighbors` answers a query in time
linear in the corpus size, which caps the serve layer's sustainable QPS
once the corpus reaches six or seven figures of records.  This module
provides :class:`HnswGraphIndex`, an approximate index in the style of
Malkov & Yashunin's Hierarchical Navigable Small World graphs: records
are assigned geometric levels, every level holds a nearest-neighbour
graph over its members, and a query greedily descends from the sparse
top layer to the full bottom layer with a beam of width ``ef``.

Differences from the textbook algorithm, chosen for this repo's
constraints (single CPU, numpy only, deterministic artifacts):

* **Bulk construction** — instead of inserting records one at a time,
  each layer's graph is built with a vectorized pipeline: signed random
  projection (SRP) buckets provide initial neighbour candidates, a few
  rounds of NN-descent refine them, and the result is symmetrized so
  every forward edge gains its reverse.  Layers at or below
  ``exact_threshold`` members are built with an exact distance matrix.
* **Determinism** — levels come from :func:`seeded_levels` (a keyed
  blake2b hash of each record's identifier), so the hierarchy does not
  depend on insertion order; all graph construction uses a seeded
  generator and stable sorts with index tie-breaking, so fitting the
  same vectors twice yields byte-identical adjacency.
* **Squared-L2 only** — callers wanting cosine ranking normalize their
  vectors first (squared L2 on unit vectors is a monotone transform of
  cosine distance, so rankings agree).

The fitted state (vectors, levels, stacked adjacency) round-trips
through :meth:`HnswGraphIndex.export_arrays` /
:meth:`HnswGraphIndex.import_arrays` as plain numpy arrays.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from collections.abc import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .knn import NeighborResult

#: Hard ceiling on assigned levels; with ``level_p = 0.5`` the chance of
#: any record exceeding it is ~6e-8 per record.
MAX_LEVEL = 24


def seeded_levels(
    keys: Sequence[str],
    seed: int = 0,
    level_p: float = 0.5,
    max_level: int = MAX_LEVEL,
) -> np.ndarray:
    """Deterministic geometric level of each key, independent of order.

    Each key is hashed with blake2b keyed by ``seed``; the digest is
    mapped to a uniform in ``(0, 1)`` and converted into a geometric
    level ``floor(log(u) / log(level_p))``.  Because the level depends
    only on the key and seed, a record receives the same level whether
    it was present at fit time or inserted later by a delta — the graph
    hierarchy never depends on arrival order.
    """
    if not 0.0 < level_p < 1.0:
        raise ConfigurationError("level_p must lie strictly between 0 and 1")
    prefix = f"{seed}\x1f".encode()
    denominator = math.log(level_p)
    levels = np.empty(len(keys), dtype=np.int64)
    for row, key in enumerate(keys):
        digest = hashlib.blake2b(prefix + str(key).encode(), digest_size=8).digest()
        uniform = (int.from_bytes(digest, "big") + 0.5) / 2.0**64
        levels[row] = min(int(math.log(uniform) / denominator), max_level)
    return levels


def _merge_neighbors(
    nbr: np.ndarray,
    nbrd: np.ndarray,
    rows_idx: np.ndarray,
    cand_idx: np.ndarray,
    cand_d: np.ndarray,
) -> None:
    """Merge candidate columns into the running top-``M`` neighbour lists.

    ``nbr``/``nbrd`` hold the current best ``M`` neighbour ids and
    distances per row (``-1``/``inf`` padding).  Candidates are
    deduplicated against the current lists and the union re-ranked by
    ``(distance, id)`` with stable sorts, keeping the best ``M``.
    """
    top_m = nbr.shape[1]
    merged_idx = np.concatenate([nbr[rows_idx], cand_idx], axis=1)
    merged_d = np.concatenate([nbrd[rows_idx], cand_d], axis=1)
    by_id = np.argsort(merged_idx, axis=1, kind="stable")
    sorted_ids = np.take_along_axis(merged_idx, by_id, axis=1)
    dup_sorted = np.zeros_like(sorted_ids, dtype=bool)
    dup_sorted[:, 1:] = sorted_ids[:, 1:] == sorted_ids[:, :-1]
    duplicate = np.empty_like(dup_sorted)
    np.put_along_axis(duplicate, by_id, dup_sorted, axis=1)
    merged_d = merged_d.copy()
    merged_d[duplicate | (merged_idx < 0)] = np.inf
    order = np.argsort(merged_d, axis=1, kind="stable")[:, :top_m]
    nbr[rows_idx] = np.take_along_axis(merged_idx, order, axis=1)
    nbrd[rows_idx] = np.take_along_axis(merged_d, order, axis=1)


def _symmetrize(nbr: np.ndarray, nbrd: np.ndarray, cap: int) -> np.ndarray:
    """Undirected adjacency from a directed kNN list, ``cap`` nearest per node.

    Every forward edge contributes its reverse, duplicates are removed,
    and each node keeps its ``cap`` nearest partners (ties broken by
    id), yielding a fixed-width ``(n, cap)`` array padded with ``-1``.
    """
    n, top_m = nbr.shape
    src = np.repeat(np.arange(n, dtype=np.int64), top_m)
    dst = nbr.reshape(-1)
    dist = nbrd.reshape(-1)
    valid = dst >= 0
    src, dst, dist = src[valid], dst[valid], dist[valid]
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    all_dist = np.concatenate([dist, dist])
    order = np.lexsort((all_dist, all_dst, all_src))
    s_sorted, d_sorted = all_src[order], all_dst[order]
    keep = np.ones(len(s_sorted), dtype=bool)
    keep[1:] = (s_sorted[1:] != s_sorted[:-1]) | (d_sorted[1:] != d_sorted[:-1])
    all_src = s_sorted[keep]
    all_dst = d_sorted[keep]
    all_dist = all_dist[order][keep]
    rank_order = np.lexsort((all_dst, all_dist, all_src))
    all_src, all_dst = all_src[rank_order], all_dst[rank_order]
    counts = np.bincount(all_src, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    rank = np.arange(len(all_src)) - offsets[all_src]
    within_cap = rank < cap
    all_src = all_src[within_cap]
    all_dst = all_dst[within_cap]
    rank = rank[within_cap]
    adjacency = np.full((n, cap), -1, dtype=np.int64)
    adjacency[all_src, rank] = all_dst
    return adjacency


class HnswGraphIndex:
    """Layered approximate nearest-neighbour graph over squared-L2 distance.

    Parameters
    ----------
    m_neighbors:
        Directed out-degree of the per-layer kNN lists; the stored
        (symmetrized) adjacency keeps up to ``2 * m_neighbors`` edges
        per node.
    ef_search:
        Default beam width at the bottom layer; larger values trade
        latency for recall.  Overridable per query.
    ef_descent:
        Beam width while descending the upper layers.
    level_p:
        Geometric decay of the layer hierarchy (fraction of each
        layer's members promoted to the next).
    seed:
        Seed of the construction randomness (SRP projections and, when
        no explicit levels are supplied, level assignment).
    bands, rows:
        SRP bucketing shape used to seed the NN-descent candidate lists
        during bulk construction.
    rounds:
        NN-descent refinement rounds per layer.
    candidate_pool:
        Neighbours-of-neighbours pool width (``S``) examined by each
        NN-descent round.
    exact_threshold:
        Layers at or below this member count are built with an exact
        distance matrix instead of the approximate pipeline.
    """

    def __init__(
        self,
        m_neighbors: int = 8,
        ef_search: int = 96,
        ef_descent: int = 16,
        level_p: float = 0.5,
        seed: int = 0,
        bands: int = 6,
        rows: int = 10,
        rounds: int = 2,
        candidate_pool: int = 16,
        exact_threshold: int = 2048,
    ) -> None:
        if m_neighbors <= 0:
            raise ConfigurationError("m_neighbors must be positive")
        if ef_search <= 0 or ef_descent <= 0:
            raise ConfigurationError("ef_search and ef_descent must be positive")
        if not 0.0 < level_p < 1.0:
            raise ConfigurationError("level_p must lie strictly between 0 and 1")
        self.m_neighbors = int(m_neighbors)
        self.ef_search = int(ef_search)
        self.ef_descent = int(ef_descent)
        self.level_p = float(level_p)
        self.seed = int(seed)
        self.bands = int(bands)
        self.rows = int(rows)
        self.rounds = int(rounds)
        self.candidate_pool = int(candidate_pool)
        self.exact_threshold = int(exact_threshold)
        self.edge_cap = 2 * self.m_neighbors
        self._data: np.ndarray | None = None
        self._sq: np.ndarray | None = None
        self._levels: np.ndarray | None = None
        #: Per level ``l``: (ascending member ids, ``(len, cap)`` adjacency).
        self._layers: list[tuple[np.ndarray, np.ndarray]] = []

    @property
    def num_indexed(self) -> int:
        """Number of indexed rows."""
        return 0 if self._data is None else self._data.shape[0]

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------

    def _srp_init(self, vectors: np.ndarray, sq: np.ndarray, seed: int) -> tuple:
        """Initial directed kNN lists from SRP bucket blocks."""
        n, dim = vectors.shape
        top_m = self.m_neighbors
        rng = np.random.default_rng(seed)
        projections = rng.standard_normal((dim, self.bands * self.rows))
        bits = (vectors @ projections) > 0
        weights = 1 << np.arange(self.rows, dtype=np.int64)
        nbr = np.full((n, top_m), -1, dtype=np.int64)
        nbrd = np.full((n, top_m), np.inf)
        block = 64
        for band in range(self.bands):
            keys = bits[:, band * self.rows : (band + 1) * self.rows] @ weights
            order = np.lexsort((np.arange(n), keys))
            for start in range(0, n, block):
                idx = order[start : start + block]
                if len(idx) < 2:
                    continue
                tile = vectors[idx]
                dists = sq[idx][:, None] - 2.0 * (tile @ tile.T) + sq[idx][None, :]
                np.fill_diagonal(dists, np.inf)
                keep = min(top_m, len(idx) - 1)
                best = np.argsort(dists, axis=1, kind="stable")[:, :keep]
                _merge_neighbors(
                    nbr, nbrd, idx, idx[best], np.take_along_axis(dists, best, axis=1)
                )
        return nbr, nbrd

    def _nn_descent_round(
        self, vectors: np.ndarray, sq: np.ndarray, nbr: np.ndarray, nbrd: np.ndarray
    ) -> None:
        """One NN-descent round: try neighbours-of-neighbours (both directions)."""
        n = nbr.shape[0]
        pool = self.candidate_pool
        dim = vectors.shape[1]
        sym = _symmetrize(nbr, nbrd, pool)
        # The gather of candidate vectors is the peak temporary:
        # block * pool^2 * dim float64.  Hold it near 512 MB.
        block = int(np.clip((512 << 20) // max(pool * pool * dim * 8, 1), 256, 4096))
        for start in range(0, n, block):
            stop = min(start + block, n)
            direct = sym[start:stop]
            expanded = sym[direct.clip(0)].reshape(stop - start, -1)
            expanded = np.where(np.repeat(direct >= 0, pool, axis=1), expanded, -1)
            gathered = vectors[expanded.clip(0)]
            queries = vectors[start:stop]
            dists = (
                sq[expanded.clip(0)]
                - 2.0 * np.einsum("rd,rcd->rc", queries, gathered)
                + sq[start:stop][:, None]
            )
            dists[expanded < 0] = np.inf
            dists[expanded == np.arange(start, stop)[:, None]] = np.inf
            _merge_neighbors(nbr, nbrd, np.arange(start, stop), expanded, dists)

    def _build_layer(self, member_vectors: np.ndarray, seed: int) -> np.ndarray:
        """Symmetrized adjacency (local member indices) of one layer."""
        n = len(member_vectors)
        if n == 1:
            return np.full((1, self.edge_cap), -1, dtype=np.int64)
        sq = (member_vectors**2).sum(axis=1)
        if n <= self.exact_threshold:
            dists = sq[:, None] - 2.0 * (member_vectors @ member_vectors.T) + sq[None, :]
            np.fill_diagonal(dists, np.inf)
            keep = min(self.m_neighbors, n - 1)
            nbr = np.argsort(dists, axis=1, kind="stable")[:, :keep]
            nbrd = np.take_along_axis(dists, nbr, axis=1)
            return _symmetrize(nbr, nbrd, self.edge_cap)
        nbr, nbrd = self._srp_init(member_vectors, sq, seed)
        for _ in range(self.rounds):
            self._nn_descent_round(member_vectors, sq, nbr, nbrd)
        return _symmetrize(nbr, nbrd, self.edge_cap)

    def fit(self, data: np.ndarray, levels: np.ndarray | None = None) -> "HnswGraphIndex":
        """Build the layer hierarchy over the rows of ``data``.

        ``levels`` supplies each row's maximum layer (e.g. from
        :func:`seeded_levels` over stable record identifiers); when
        omitted, levels are drawn from the index seed, which is
        deterministic for a fixed row count but *not* stable under
        insertion, so persistent callers should pass explicit levels.
        """
        vectors = np.asarray(data, dtype=np.float64)
        if vectors.ndim != 2:
            raise ConfigurationError("index data must be a 2-D array")
        n = vectors.shape[0]
        if levels is None:
            rng = np.random.default_rng(self.seed)
            uniforms = rng.random(n) if n else np.empty(0)
            with np.errstate(divide="ignore"):
                levels = np.minimum(
                    np.floor(np.log(uniforms) / math.log(self.level_p)).astype(np.int64),
                    MAX_LEVEL,
                )
        levels = np.asarray(levels, dtype=np.int64)
        if levels.shape != (n,):
            raise ConfigurationError("levels must be a 1-D array matching the data rows")
        self._data = vectors
        self._sq = (vectors**2).sum(axis=1)
        self._levels = levels
        self._layers = []
        if n == 0:
            return self
        for level in range(int(levels.max()) + 1):
            members = np.nonzero(levels >= level)[0]
            adjacency_local = self._build_layer(vectors[members], self.seed + level)
            adjacency = np.where(adjacency_local >= 0, members[adjacency_local.clip(0)], -1)
            self._layers.append((members, adjacency))
        return self

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _beam_layer(
        self,
        query: np.ndarray,
        query_sq: float,
        members: np.ndarray,
        adjacency: np.ndarray,
        entries: list[int],
        ef: int,
    ) -> list[tuple[float, int]]:
        """Best-first beam search within one layer.

        Returns up to ``ef`` ``(distance, id)`` pairs sorted ascending;
        ties break on id, and the heap orders candidates by the same
        tuple, so the expansion order — and therefore the result — is
        fully deterministic.
        """
        assert self._data is not None and self._sq is not None
        data, sq = self._data, self._sq
        entries = list(dict.fromkeys(entries))
        entry_dists = sq[entries] - 2.0 * (data[entries] @ query) + query_sq
        visited = set(entries)
        candidates = sorted(
            (float(d), int(i)) for d, i in zip(entry_dists, entries, strict=True)
        )
        results = [(-d, i) for d, i in candidates]
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)
        candidates = candidates[:ef]
        heapq.heapify(candidates)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            slot = int(np.searchsorted(members, node))
            if slot >= len(members) or members[slot] != node:
                continue  # Entry point not (yet) a member of this layer.
            row = adjacency[slot]
            row = row[row >= 0]
            fresh = [int(j) for j in row if j not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            fresh_dists = sq[fresh] - 2.0 * (data[fresh] @ query) + query_sq
            for neighbor, neighbor_dist in zip(fresh, fresh_dists, strict=True):
                neighbor_dist = float(neighbor_dist)
                if len(results) < ef or neighbor_dist < -results[0][0]:
                    heapq.heappush(candidates, (neighbor_dist, neighbor))
                    heapq.heappush(results, (-neighbor_dist, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-d, i) for d, i in results)

    def _search_one(self, query: np.ndarray, k: int, ef: int) -> list[tuple[float, int]]:
        """Ranked ``(distance, id)`` results of a single query vector."""
        top_members = self._layers[-1][0]
        entries = [int(top_members[0])]
        query_sq = float(query @ query)
        for members, adjacency in reversed(self._layers[1:]):
            found = self._beam_layer(
                query, query_sq, members, adjacency, entries, self.ef_descent
            )
            entries = [i for _, i in found]
        members, adjacency = self._layers[0]
        found = self._beam_layer(
            query, query_sq, members, adjacency, entries, max(ef, k)
        )
        return found[:k]

    def search(self, queries: np.ndarray, k: int, ef_search: int | None = None) -> NeighborResult:
        """Approximate ``k`` nearest indexed rows of each query row.

        Rows with fewer than ``k`` reachable results are padded with
        index ``-1`` and distance ``inf``.  Each query is searched
        independently, so results never depend on batch composition.
        """
        if self._data is None:
            raise ConfigurationError("the index must be fitted before searching")
        if k <= 0:
            raise ConfigurationError("k must be positive")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._data.shape[1]:
            raise ConfigurationError("queries must match the indexed dimensionality")
        ef = self.ef_search if ef_search is None else int(ef_search)
        num_queries = queries.shape[0]
        effective_k = min(k, self.num_indexed)
        indices = np.full((num_queries, effective_k), -1, dtype=np.int64)
        distances = np.full((num_queries, effective_k), np.inf)
        if effective_k == 0 or num_queries == 0 or not self._layers:
            return NeighborResult(indices=indices, distances=distances)
        for row in range(num_queries):
            found = self._search_one(queries[row], effective_k, ef)
            for col, (dist, idx) in enumerate(found):
                indices[row, col] = idx
                distances[row, col] = dist
        return NeighborResult(indices=indices, distances=distances)

    # ------------------------------------------------------------------
    # Incremental insertion
    # ------------------------------------------------------------------

    def _ranked_edges(self, node: int, pool: np.ndarray) -> np.ndarray:
        """``pool`` partners of ``node`` ranked by ``(distance, id)``, capped."""
        assert self._data is not None and self._sq is not None
        pool = np.unique(pool)
        pool = pool[pool != node]
        dists = self._sq[pool] - 2.0 * (self._data[pool] @ self._data[node]) + self._sq[node]
        order = np.lexsort((pool, dists))[: self.edge_cap]
        row = np.full(self.edge_cap, -1, dtype=np.int64)
        row[: len(order)] = pool[order]
        return row

    def _link_node(self, node: int, level: int) -> None:
        """Beam-descend and (re)link ``node`` into every layer up to ``level``.

        ``node`` must already be a member (with any adjacency row) of
        each layer at or below its level.  Its row is replaced by the
        union of the old edges and the freshly found ``m_neighbors``
        nearest members, ranked by ``(distance, id)`` and capped; each
        forward partner gains a capped reverse edge the same way.
        """
        assert self._data is not None
        query = self._data[node]
        query_sq = float(query @ query)
        construction_ef = max(self.ef_search, self.edge_cap)
        entries: list[int] = []
        for layer_level in range(len(self._layers) - 1, -1, -1):
            members, adjacency = self._layers[layer_level]
            slot = int(np.searchsorted(members, node))
            is_member = slot < len(members) and members[slot] == node
            has_peers = len(members) - int(is_member) >= 1
            found: list[tuple[float, int]] = []
            if has_peers:
                if not entries:
                    # Highest layer with a peer: start from its
                    # smallest-id member other than the node itself.
                    first_peer = members[0] if members[0] != node else members[1]
                    entries = [int(first_peer)]
                found = self._beam_layer(
                    query,
                    query_sq,
                    members,
                    adjacency,
                    entries,
                    construction_ef if layer_level <= level else self.ef_descent,
                )
                found = [(d, i) for d, i in found if i != node]
                if found:
                    entries = [i for _, i in found]
            if layer_level > level or not has_peers or not found:
                continue
            forward = np.array([i for _, i in found[: self.m_neighbors]], dtype=np.int64)
            existing = adjacency[slot]
            adjacency[slot] = self._ranked_edges(
                node, np.concatenate([existing[existing >= 0], forward])
            )
            for partner in forward.tolist():
                partner_slot = int(np.searchsorted(members, partner))
                row = adjacency[partner_slot]
                adjacency[partner_slot] = self._ranked_edges(
                    partner, np.concatenate([row[row >= 0], [node]])
                )

    def insert(self, new_vectors: np.ndarray, new_levels: np.ndarray) -> None:
        """Append rows and link them into every layer up to their level.

        Each new node beam-descends the existing hierarchy, links to its
        ``m_neighbors`` nearest members per layer, and registers capped
        reverse edges (the farthest partner is dropped when a node's
        edge list is full) — the standard incremental HNSW insertion.
        Nodes are linked in row order, so the same delta always produces
        the same graph.
        """
        if self._data is None or self._levels is None:
            raise ConfigurationError("the index must be fitted before inserting")
        new_vectors = np.asarray(new_vectors, dtype=np.float64)
        if new_vectors.ndim != 2 or new_vectors.shape[1] != self._data.shape[1]:
            raise ConfigurationError("inserted rows must match the indexed dimensionality")
        new_levels = np.asarray(new_levels, dtype=np.int64)
        if new_levels.shape != (new_vectors.shape[0],):
            raise ConfigurationError("new_levels must match the inserted row count")
        base = self.num_indexed
        self._data = np.concatenate([np.asarray(self._data), new_vectors], axis=0)
        self._sq = (self._data**2).sum(axis=1)
        self._levels = np.concatenate([self._levels, new_levels])
        empty_row = np.full((1, self.edge_cap), -1, dtype=np.int64)
        for offset in range(new_vectors.shape[0]):
            node = base + offset
            level = int(new_levels[offset])
            while len(self._layers) <= level:
                # The node opens a brand-new top layer containing only itself.
                self._layers.append((np.array([node], dtype=np.int64), empty_row.copy()))
            for layer_level in range(min(level, len(self._layers) - 1) + 1):
                members, adjacency = self._layers[layer_level]
                if len(members) and members[-1] == node:
                    continue  # Fresh singleton layer opened above.
                self._layers[layer_level] = (
                    np.concatenate([members, [node]]),
                    np.concatenate([adjacency, empty_row], axis=0),
                )
            self._link_node(node, level)

    def relink(self, nodes: Sequence[int]) -> None:
        """Refresh the edges of already-indexed nodes whose vectors changed.

        Stale edges are navigation hints only (distances are recomputed
        from the live vectors at query time), so relinking — rather than
        rebuilding the whole graph — keeps an updated node reachable
        from its new neighbourhood at delta cost.  Callers must update
        the vector rows (and ``refresh_norms``) first.
        """
        if self._data is None or self._levels is None:
            raise ConfigurationError("the index must be fitted before relinking")
        for node in nodes:
            self._link_node(int(node), int(self._levels[node]))

    def refresh_norms(self) -> None:
        """Recompute cached squared norms after in-place vector edits."""
        if self._data is None:
            raise ConfigurationError("the index must be fitted before refreshing")
        self._sq = (self._data**2).sum(axis=1)

    def replace_vectors(self, rows: np.ndarray, new_vectors: np.ndarray) -> None:
        """Overwrite vector rows in place (copy-on-write) and refresh norms."""
        if self._data is None:
            raise ConfigurationError("the index must be fitted before replacing rows")
        data = np.array(self._data, dtype=np.float64)
        data[rows] = np.asarray(new_vectors, dtype=np.float64)
        self._data = data
        self.refresh_norms()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def export_arrays(self) -> dict[str, np.ndarray]:
        """Fitted state as plain arrays (vectors, levels, stacked adjacency).

        The per-layer adjacency matrices are stacked bottom-up into one
        ``(sum(layer sizes), edge_cap)`` int32 array; layer boundaries
        are recomputed from ``levels`` at import time.
        """
        if self._data is None or self._levels is None:
            raise ConfigurationError("the index must be fitted before exporting state")
        if self._layers:
            adjacency = np.concatenate([adj for _, adj in self._layers], axis=0)
        else:
            adjacency = np.empty((0, self.edge_cap), dtype=np.int64)
        return {
            "vectors": self._data,
            "levels": self._levels.astype(np.int64),
            "adjacency": adjacency.astype(np.int32),
        }

    def import_arrays(
        self, vectors: np.ndarray, levels: np.ndarray, adjacency: np.ndarray
    ) -> None:
        """Restore the exact fitted state saved by :meth:`export_arrays`."""
        vectors = np.asarray(vectors, dtype=np.float64)
        levels = np.asarray(levels, dtype=np.int64)
        n = vectors.shape[0]
        if levels.shape != (n,):
            raise ConfigurationError("levels must match the vector rows")
        self._data = vectors
        self._sq = (vectors**2).sum(axis=1)
        self._levels = levels
        self._layers = []
        if n == 0:
            return
        adjacency = np.asarray(adjacency, dtype=np.int64)
        offset = 0
        for level in range(int(levels.max()) + 1):
            members = np.nonzero(levels >= level)[0]
            block = adjacency[offset : offset + len(members)]
            if block.shape[0] != len(members):
                raise ConfigurationError("adjacency rows do not match the level layout")
            self._layers.append((members, block))
            offset += len(members)
        if offset != adjacency.shape[0]:
            raise ConfigurationError("adjacency rows do not match the level layout")


__all__ = ["MAX_LEVEL", "HnswGraphIndex", "seeded_levels"]
