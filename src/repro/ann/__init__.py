"""Nearest-neighbour search: exact (Faiss substitute) and sub-linear indexes."""

from .hnsw import HnswGraphIndex, seeded_levels
from .knn import ExactNearestNeighbors, NeighborResult
from .lsh import SrpBandIndex

__all__ = [
    "ExactNearestNeighbors",
    "HnswGraphIndex",
    "NeighborResult",
    "SrpBandIndex",
    "seeded_levels",
]
