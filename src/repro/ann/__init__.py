"""Exact nearest-neighbour search (Faiss substitute)."""

from .knn import ExactNearestNeighbors, NeighborResult

__all__ = ["ExactNearestNeighbors", "NeighborResult"]
