"""Exact nearest-neighbour search (the Faiss substitute).

The paper connects every intent-layer node to its ``k`` nearest
neighbours computed with Faiss over L2 distance, using only the
exhaustive (exact) index.  This module provides the same computation in
numpy, for L2 and cosine distances, with optional self-exclusion and
chunked evaluation to bound memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class NeighborResult:
    """Indices and distances of the nearest neighbours of each query row."""

    indices: np.ndarray
    distances: np.ndarray

    def neighbors_of(self, row: int) -> list[int]:
        """Neighbour indices of query ``row`` in increasing distance order."""
        return self.indices[row].tolist()

    def neighbor_lists(self) -> list[list[int]]:
        """All neighbour index lists at once (one ``tolist`` conversion)."""
        return self.indices.tolist()


class ExactNearestNeighbors:
    """Brute-force exact kNN index.

    Parameters
    ----------
    metric:
        ``"l2"`` (squared Euclidean, as in the paper) or ``"cosine"``
        (one minus cosine similarity).
    chunk_size:
        Number of query rows scored per block, bounding peak memory.
    """

    def __init__(self, metric: str = "l2", chunk_size: int = 1024) -> None:
        if metric not in ("l2", "cosine"):
            raise ConfigurationError(f"unsupported metric: {metric!r}")
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        self.metric = metric
        self.chunk_size = chunk_size
        self._data: np.ndarray | None = None
        self._normalized: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "ExactNearestNeighbors":
        """Index the rows of ``data`` (shape ``(n, d)``)."""
        array = np.asarray(data, dtype=np.float64)
        if array.ndim != 2:
            raise ConfigurationError("index data must be a 2-D array")
        self._data = array
        if self.metric == "cosine":
            norms = np.linalg.norm(array, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            self._normalized = array / norms
        return self

    @property
    def num_indexed(self) -> int:
        """Number of indexed rows."""
        return 0 if self._data is None else self._data.shape[0]

    def _distances(self, queries: np.ndarray) -> np.ndarray:
        assert self._data is not None
        if self.metric == "l2":
            # ||q - x||^2 = ||q||^2 - 2 q.x + ||x||^2
            query_norms = (queries**2).sum(axis=1, keepdims=True)
            data_norms = (self._data**2).sum(axis=1)[np.newaxis, :]
            distances = query_norms - 2.0 * queries @ self._data.T + data_norms
            return np.maximum(distances, 0.0)
        assert self._normalized is not None
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        normalized_queries = queries / norms
        return 1.0 - normalized_queries @ self._normalized.T

    def search(
        self,
        queries: np.ndarray,
        k: int,
        exclude_self: bool = False,
        query_offset: int = 0,
    ) -> NeighborResult:
        """Find the ``k`` nearest indexed rows of each query row.

        Parameters
        ----------
        queries:
            Query matrix of shape ``(m, d)``.
        k:
            Number of neighbours to return per query.
        exclude_self:
            When true, the indexed row whose position equals
            ``query_offset + row`` is excluded — used when querying the
            index with its own rows.
        query_offset:
            Offset applied to query rows for self-exclusion.
        """
        if self._data is None:
            raise ConfigurationError("the index must be fitted before searching")
        if k <= 0:
            raise ConfigurationError("k must be positive")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._data.shape[1]:
            raise ConfigurationError("queries must match the indexed dimensionality")

        n_indexed = self.num_indexed
        num_queries = queries.shape[0]
        effective_k = min(k, n_indexed - (1 if exclude_self else 0))
        effective_k = max(effective_k, 0)
        if effective_k == 0 or num_queries == 0:
            return NeighborResult(
                indices=np.zeros((num_queries, effective_k), dtype=np.int64),
                distances=np.zeros((num_queries, effective_k), dtype=np.float64),
            )

        index_blocks: list[np.ndarray] = []
        distance_blocks: list[np.ndarray] = []
        for start in range(0, num_queries, self.chunk_size):
            stop = min(start + self.chunk_size, num_queries)
            distances = self._distances(queries[start:stop])
            if exclude_self:
                rows = np.arange(start, stop, dtype=np.int64)
                self_indices = query_offset + rows
                in_range = (self_indices >= 0) & (self_indices < n_indexed)
                distances[rows[in_range] - start, self_indices[in_range]] = np.inf
            order = np.argsort(distances, axis=1, kind="stable")[:, :effective_k]
            index_blocks.append(order)
            distance_blocks.append(np.take_along_axis(distances, order, axis=1))

        # A single chunk (the common case when chunk_size >= the query
        # count) is returned as-is instead of being copied into a freshly
        # allocated full result matrix.
        if len(index_blocks) == 1:
            return NeighborResult(indices=index_blocks[0], distances=distance_blocks[0])
        return NeighborResult(
            indices=np.concatenate(index_blocks, axis=0),
            distances=np.concatenate(distance_blocks, axis=0),
        )

    def kneighbors_graph(self, k: int) -> list[list[int]]:
        """Adjacency list of the kNN graph of the indexed data (self excluded)."""
        if self._data is None:
            raise ConfigurationError("the index must be fitted before searching")
        result = self.search(self._data, k, exclude_self=True)
        return result.neighbor_lists()
