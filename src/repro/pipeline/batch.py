"""Batch execution of (dataset × config) scenario grids with shared caching.

A :class:`Scenario` names one pipeline configuration (hyper-parameters,
graph layer subset, target intents); :class:`BatchRunner` executes a list
of scenarios — optionally crossed with several datasets — through a
single :class:`~repro.pipeline.runner.PipelineRunner`, so every scenario
that shares upstream stages with a previous one (same matchers, same
representations) reuses their cached artifacts instead of recomputing
them.  This is the paper's evaluation workload: the Table 8 ``k`` sweep
and the Figure 6 intent-subset grid both retrain nothing but the stages
downstream of the swept parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Mapping, Sequence

from ..config import FlexERConfig
from ..data.splits import DatasetSplit
from ..registry import SOLVERS
from .runner import (
    STAGE_GRAPH_BUILD,
    STAGE_MATCHER_FIT,
    STAGE_REPRESENTATION,
    PipelineResult,
    PipelineRunner,
)


@dataclass(frozen=True)
class Scenario:
    """One named pipeline configuration of a batch grid."""

    name: str
    config: FlexERConfig
    intent_subset: tuple[str, ...] | None = None
    target_intents: tuple[str, ...] | None = None


@dataclass
class ScenarioRun:
    """The outcome of one (dataset, scenario) cell of the grid."""

    dataset: str
    scenario: Scenario
    result: PipelineResult

    @property
    def skipped_expensive_stages(self) -> bool:
        """Whether matcher-fit and representation were both cache hits."""
        status = self.result.stage_status()
        return (
            status.get(STAGE_MATCHER_FIT) == "hit"
            and status.get(STAGE_REPRESENTATION) == "hit"
        )


def k_sweep(
    base_config: FlexERConfig,
    k_values: Sequence[int],
    target_intents: Sequence[str] | None = None,
) -> list[Scenario]:
    """Scenarios sweeping the intra-layer ``k`` (the Table 8 analysis)."""
    return [
        Scenario(
            name=f"k={k}",
            config=replace(base_config, graph=replace(base_config.graph, k_neighbors=k)),
            target_intents=tuple(target_intents) if target_intents is not None else None,
        )
        for k in k_values
    ]


def solver_grid(
    base_config: FlexERConfig,
    solver_specs: Sequence[object],
    target_intents: Sequence[str] | None = None,
) -> list[Scenario]:
    """Scenarios varying the solver registry spec (representation ablation).

    Each spec is validated against :data:`repro.registry.SOLVERS` up
    front, so a typo fails before any scenario runs.
    """
    scenarios = []
    for spec in solver_specs:
        normalized = SOLVERS.normalize(spec)
        scenarios.append(
            Scenario(
                name=f"solver={normalized['type']}",
                config=replace(base_config, solver=normalized),
                target_intents=tuple(target_intents) if target_intents is not None else None,
            )
        )
    return scenarios


def intent_subset_grid(
    base_config: FlexERConfig,
    subsets: Sequence[Sequence[str]],
    target_intents: Sequence[str] | None = None,
) -> list[Scenario]:
    """Scenarios varying the graph's layer set (the Figure 6 analysis)."""
    return [
        Scenario(
            name="+".join(subset),
            config=base_config,
            intent_subset=tuple(subset),
            target_intents=tuple(target_intents) if target_intents is not None else None,
        )
        for subset in subsets
    ]


class BatchRunner:
    """Execute scenario grids through one shared pipeline runner.

    Parameters
    ----------
    runner:
        Shared pipeline runner; ``None`` creates a private one.
    executor:
        Sharded-execution backend for a private runner (an
        :class:`~repro.exec.Executor`, registry key, or spec); ignored
        when ``runner`` is given.  Because executors never change
        results or stage fingerprints, a grid run under any executor
        shares its cached artifacts with every other executor choice.
    """

    def __init__(self, runner: PipelineRunner | None = None, executor: object = None) -> None:
        self.runner = runner or PipelineRunner(executor=executor)

    def run(
        self,
        split: DatasetSplit,
        intents: Sequence[str],
        scenarios: Sequence[Scenario],
        dataset: str = "dataset",
    ) -> list[ScenarioRun]:
        """Run every scenario over one dataset split, sharing the cache."""
        runs: list[ScenarioRun] = []
        for scenario in scenarios:
            result = self.runner.run(
                split,
                intents,
                config=scenario.config,
                intent_subset=scenario.intent_subset,
                target_intents=scenario.target_intents,
            )
            runs.append(ScenarioRun(dataset=dataset, scenario=scenario, result=result))
        return runs

    def run_grid(
        self,
        datasets: Mapping[str, tuple[DatasetSplit, Sequence[str]]],
        scenarios: Sequence[Scenario],
    ) -> list[ScenarioRun]:
        """Run the full (dataset × scenario) cross product."""
        runs: list[ScenarioRun] = []
        for dataset, (split, intents) in datasets.items():
            runs.extend(self.run(split, intents, scenarios, dataset=dataset))
        return runs

    @staticmethod
    def summary_rows(runs: Sequence[ScenarioRun]) -> list[list[object]]:
        """Per-run stage summary rows: dataset, scenario, cached, computed."""
        rows: list[list[object]] = []
        for run in runs:
            status = run.result.stage_status()
            cached = sum(1 for value in status.values() if value == "hit")
            rows.append(
                [
                    run.dataset,
                    run.scenario.name,
                    f"{cached}/{len(status)}",
                    "yes" if status.get(STAGE_GRAPH_BUILD) == "hit" else "no",
                ]
            )
        return rows
