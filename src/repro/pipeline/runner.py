"""The staged FlexER runner with content-addressed artifact caching.

:class:`PipelineRunner` decomposes ``FlexER.run_split()`` into four
addressable stages:

1. ``matcher-fit`` — train the per-intent matchers on the training pairs;
2. ``representation`` — encode every candidate pair (train + valid +
   test) into per-intent latent representations;
3. ``graph-build`` — construct the multiplex intent graph;
4. ``gnn:<intent>`` — train one GraphSAGE model per target intent and
   score its layer.

Each stage's output is fingerprinted by its configuration plus the
fingerprints of its inputs and stored in an :class:`ArtifactCache`, so a
re-run whose upstream stages are unchanged — e.g. sweeping the
intra-layer ``k`` (Table 8) or adding a target intent (Figure 6) — skips
matcher training and representation entirely and only recomputes the
stages downstream of the change.

All stage computations are seeded and deterministic, therefore a cached
run is byte-identical to the cold run that populated the cache.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from ..config import FlexERConfig
from ..core.flexer import (
    FlexERResult,
    FlexERTimings,
    combine_candidate_sets,
    compute_representations,
)
from ..core.mier import MIERSolution
from ..data.pairs import CandidateSet
from ..data.splits import DatasetSplit
from ..exceptions import IntentError, MatchingError
from ..exec import Executor, executor_spec, make_executor, run_classifier_jobs
from ..graph.multiplex import MultiplexGraph
from ..graph.sage import ClassifierJob
from ..matching.features import PairFeatureConfig
from ..registry import GRAPH_BUILDERS, INTENT_CLASSIFIERS, SOLVERS
from .cache import Artifact, ArtifactCache, stage_artifact
from .fingerprint import canonical_json, digest, fingerprint_candidates

#: Stage names used for cache addressing and progress events.
STAGE_MATCHER_FIT = "matcher-fit"
STAGE_REPRESENTATION = "representation"
STAGE_GRAPH_BUILD = "graph-build"
STAGE_GNN = "gnn"
STAGE_MODEL = "model-build"

#: Array-key prefix of trained GNN parameters inside gnn stage artifacts.
_GNN_STATE_PREFIX = "state::"

#: Event statuses.
STATUS_HIT = "hit"
STATUS_COMPUTED = "computed"


@dataclass(frozen=True)
class StageEvent:
    """What happened to one stage during a pipeline run.

    ``elapsed_seconds`` is the stage's *original* compute time: on a
    cache hit it is read back from the artifact metadata, so run-time
    analyses (Table 9) see the cost of producing the artifact rather
    than the near-zero cost of loading it.
    """

    stage: str
    key: str
    status: str
    elapsed_seconds: float

    @property
    def cached(self) -> bool:
        """Whether the stage was served from the cache."""
        return self.status == STATUS_HIT


@dataclass
class PipelineResult:
    """Outcome of a staged run: the FlexER result plus stage provenance."""

    flexer: FlexERResult
    events: list[StageEvent] = field(default_factory=list)

    @property
    def solution(self) -> MIERSolution:
        """The MIER solution over the test pairs."""
        return self.flexer.solution

    @property
    def graph(self) -> MultiplexGraph:
        """The multiplex intent graph the run predicted over."""
        return self.flexer.graph

    @property
    def timings(self) -> FlexERTimings:
        """Stage timings (original compute times, cache-hit aware)."""
        return self.flexer.timings

    def event(self, stage: str) -> StageEvent:
        """The event of ``stage`` (raises ``KeyError`` for unknown stages)."""
        for event in self.events:
            if event.stage == stage:
                return event
        raise KeyError(f"no event recorded for stage {stage!r}")

    def stage_status(self) -> dict[str, str]:
        """Mapping from stage name to ``hit`` / ``computed``."""
        return {event.stage: event.status for event in self.events}

    @property
    def cached_stages(self) -> tuple[str, ...]:
        """Stages that were served from the cache."""
        return tuple(event.stage for event in self.events if event.cached)

    @property
    def computed_stages(self) -> tuple[str, ...]:
        """Stages that had to be recomputed."""
        return tuple(event.stage for event in self.events if not event.cached)


@dataclass
class ModelFitResult:
    """Outcome of :meth:`PipelineRunner.fit_model`.

    Attributes
    ----------
    model:
        The assembled, persistable :class:`~repro.model.ResolverModel`.
    pipeline:
        The staged run that produced it (corpus solution over the test
        split, stage events including the ``model-build`` stage).
    """

    model: object
    pipeline: PipelineResult

    @property
    def solution(self) -> MIERSolution:
        """The corpus MIER solution (over the split's test pairs)."""
        return self.pipeline.solution


class PipelineRunner:
    """Execute FlexER as cached, addressable stages.

    All components are constructed through :mod:`repro.registry` from
    the specs carried by the run's :class:`~repro.config.FlexERConfig`
    (``config.solver``, ``config.graph_builder``, ``config.classifier``),
    and the normalized specs participate in every stage fingerprint — so
    two runs of the same registry-spec'd configuration address the same
    artifacts and warm re-runs are byte-identical cache hits.

    Parameters
    ----------
    cache:
        Shared artifact cache; ``None`` creates a private in-memory one.
    representation_source:
        Deprecated alias for ``FlexERConfig(solver=...)``; when given it
        overrides the solver spec of every run's config.
    augment_with_scores:
        Concatenate matcher likelihoods onto the latent representations
        (Section 4.1.1; on by default, as in :class:`~repro.core.FlexER`).
    feature_config:
        Optional pair-feature encoding override shared by all matchers.
    executor:
        Sharded-execution backend override: an
        :class:`~repro.exec.Executor`, a registry spec, or ``None`` to
        follow each run's ``config.executor``.  Executors fan out the
        embarrassingly parallel stages (pair encoding, per-intent
        matcher and GNN training) without changing results, so they
        deliberately do not participate in stage fingerprints — cached
        artifacts stay valid across executor choices.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        representation_source: str | None = None,
        augment_with_scores: bool = True,
        feature_config: PairFeatureConfig | None = None,
        executor: object = None,
    ) -> None:
        self.solver_override: dict[str, object] | None = None
        if representation_source is not None:
            if representation_source not in SOLVERS:
                raise MatchingError(
                    f"unknown representation source: {representation_source!r}"
                )
            warnings.warn(
                "PipelineRunner(representation_source=...) is deprecated; pass "
                "FlexERConfig(solver=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            self.solver_override = SOLVERS.normalize(representation_source)
        self.cache = cache or ArtifactCache()
        self.augment_with_scores = augment_with_scores
        self.feature_config = feature_config
        self.executor_override = executor
        # Executor instances memoized by canonical spec, so a batch grid
        # over one runner reuses one worker pool across scenarios
        # instead of paying pool start-up per run.
        self._executors: dict[str, Executor] = {}

    # -------------------------------------------------------------- factories

    def _solver_spec(self, config: FlexERConfig) -> dict[str, object]:
        """The normalized solver spec of a run (override-aware)."""
        if self.solver_override is not None:
            return self.solver_override
        return SOLVERS.normalize(config.solver)

    def _make_solver(
        self, solver_spec: dict[str, object], intents: tuple[str, ...], config: FlexERConfig
    ):
        return SOLVERS.create(
            solver_spec,
            intents=intents,
            matcher_config=config.matcher,
            feature_config=self.feature_config,
        )

    def _feature_fingerprint(self) -> object:
        return asdict(self.feature_config or PairFeatureConfig())

    def executor_for(self, config: FlexERConfig) -> Executor:
        """The executor of a run: the runner override or the config spec.

        Instances are memoized by canonical spec so repeated runs (batch
        grids, warm re-runs) — and the resolver's blocking step — share
        one worker pool.
        """
        source = self.executor_override if self.executor_override is not None else config.executor
        if isinstance(source, Executor):
            if config.retry is not None:
                source.retry = config.retry
            return source
        key = canonical_json(executor_spec(source))
        executor = self._executors.get(key)
        if executor is None:
            executor = make_executor(source)
            self._executors[key] = executor
        # Retry is carried outside the spec (it never changes results,
        # so it must not perturb memoization keys or fingerprints); a
        # memoized executor picks up the current config's policy.
        executor.retry = config.retry
        return executor

    # ------------------------------------------------------------------- run

    def run(
        self,
        split: DatasetSplit,
        intents: Sequence[str],
        config: FlexERConfig | None = None,
        intent_subset: Sequence[str] | None = None,
        target_intents: Sequence[str] | None = None,
    ) -> PipelineResult:
        """Run the staged pipeline over a dataset split.

        Parameters mirror ``FlexER.run_split`` /
        ``FlexER.predict``: ``intent_subset`` restricts the graph layers
        (Figure 6) and ``target_intents`` restricts which intents get a
        GNN (defaults to the graph's layers).
        """
        result, _ = self._execute(split, intents, config, intent_subset, target_intents)
        return result

    def _execute(
        self,
        split: DatasetSplit,
        intents: Sequence[str],
        config: FlexERConfig | None = None,
        intent_subset: Sequence[str] | None = None,
        target_intents: Sequence[str] | None = None,
    ) -> tuple[PipelineResult, dict[str, object]]:
        """Run the stages and return the result plus fitted internals.

        The internals dict (fitted solver, combined representations, the
        graph, per-intent trained GNN states) is what
        :meth:`fit_model` assembles into a persistable
        :class:`~repro.model.ResolverModel`; :meth:`run` discards it.
        """
        intents = tuple(intents)
        if not intents:
            raise IntentError("the pipeline requires at least one intent")
        config = config or FlexERConfig()
        layer_intents = self._resolve_layers(intents, intent_subset)
        targets = tuple(target_intents) if target_intents is not None else layer_intents
        outside = set(targets) - set(layer_intents)
        if outside:
            raise IntentError(
                f"target intents {sorted(outside)} are not part of the graph layers"
            )

        train = split.train
        valid = split.valid if len(split.valid) > 0 else None
        test = split.test
        events: list[StageEvent] = []
        solver_spec = self._solver_spec(config)
        executor = self.executor_for(config)

        fingerprint_train = fingerprint_candidates(train)
        fingerprint_valid = fingerprint_candidates(valid)
        fingerprint_test = fingerprint_candidates(test)

        # Stage 1 — matcher-fit.
        solver, matcher_event = self._run_matcher_fit(
            train, intents, config, fingerprint_train, solver_spec, executor
        )
        events.append(matcher_event)

        # Canonical candidate order shared by every downstream stage.
        parts: list[CandidateSet] = [train]
        if valid is not None:
            parts.append(valid)
        parts.append(test)
        combined, ranges = combine_candidate_sets(parts)
        train_index = ranges[0]
        valid_index = ranges[1] if valid is not None else None
        test_index = ranges[-1]

        # Stage 2 — representation.
        representations, representation_event = self._run_representation(
            solver,
            combined,
            intents,
            matcher_event.key,
            [fingerprint_train, fingerprint_valid, fingerprint_test],
        )
        events.append(representation_event)

        # Stage 3 — graph-build.
        graph, graph_event = self._run_graph_build(
            representations, layer_intents, config, representation_event.key
        )
        events.append(graph_event)

        # Stage 4 — one GNN per target intent.  Timings go through
        # ``record_stage`` so an active perf session sees the stage
        # breakdown (original compute times, cache-hit aware).
        timings = FlexERTimings()
        timings.record_stage("matcher-fit", matcher_event.elapsed_seconds)
        timings.record_stage("representation", representation_event.elapsed_seconds)
        timings.record_stage("graph-build", graph_event.elapsed_seconds)
        predictions: dict[str, np.ndarray] = {}
        probabilities: dict[str, np.ndarray] = {}
        validation_f1: dict[str, float] = {}
        gnn_states: dict[str, dict[str, np.ndarray]] = {}
        gnn_outcomes = self._run_gnn_stage(
            graph,
            targets,
            config,
            graph_event.key,
            train,
            valid,
            train_index,
            valid_index,
            executor,
        )
        for intent in targets:
            layer_probabilities, best_f1, gnn_event, state = gnn_outcomes[intent]
            events.append(gnn_event)
            timings.record_stage("gnn", gnn_event.elapsed_seconds, intent=intent)
            test_probabilities = layer_probabilities[test_index]
            probabilities[intent] = test_probabilities
            predictions[intent] = (test_probabilities >= 0.5).astype(np.int64)
            validation_f1[intent] = best_f1
            gnn_states[intent] = state

        solution = MIERSolution(
            candidates=test,
            predictions=predictions,
            probabilities=probabilities,
            solver_name=f"FlexER[{solver_spec['type']}]",
        )
        flexer = FlexERResult(
            solution=solution,
            graph=graph,
            timings=timings,
            validation_f1=validation_f1,
        )
        internals: dict[str, object] = {
            "solver": solver,
            "representations": representations,
            "graph": graph,
            "gnn_states": gnn_states,
            "layer_intents": layer_intents,
            "targets": targets,
        }
        return PipelineResult(flexer=flexer, events=events), internals

    # ------------------------------------------------------------------- fit

    def fit_model(
        self,
        split: DatasetSplit,
        intents: Sequence[str],
        config: FlexERConfig | None = None,
        retriever: object = "ann_knn",
    ) -> ModelFitResult:
        """Run the staged pipeline and assemble a :class:`ResolverModel`.

        Executes all four stages over ``split`` (sharing the runner's
        artifact cache), then bundles the fitted solver state, corpus
        representations, multiplex-graph payload, per-intent trained GNN
        parameters (plus their per-convolution corpus hidden states for
        frozen online inference), and a fitted candidate retriever into
        one persistable model.  The assembled model is itself a
        cacheable stage output (``model-build``): re-fitting the same
        configuration over the same data restores the model from the
        cache.
        """
        # Imported lazily: repro.model imports this module at start-up.
        from ..model import MODEL_SCHEMA_VERSION, ResolverModel, fingerprint_corpus
        from ..registry import CANDIDATE_RETRIEVERS, INTENT_CLASSIFIERS as _CLASSIFIERS

        intents = tuple(intents)
        config = config or FlexERConfig()
        retriever_spec = CANDIDATE_RETRIEVERS.normalize(retriever)
        result, internals = self._execute(split, intents, config)
        corpus = split.train.dataset
        key = digest(
            STAGE_MODEL,
            [(event.stage, event.key) for event in result.events],
            retriever_spec,
            fingerprint_corpus(corpus),
            MODEL_SCHEMA_VERSION,
        )
        artifact = self.cache.get(STAGE_MODEL, key)
        if artifact is not None:
            model = ResolverModel.from_payload(artifact.arrays, artifact.metadata)
            result.events.append(
                StageEvent(STAGE_MODEL, key, STATUS_HIT, artifact.elapsed_seconds)
            )
            return ModelFitResult(model=model, pipeline=result)

        start = time.perf_counter()
        gnn_states: dict[str, dict[str, np.ndarray]] = dict(internals["gnn_states"])
        stale = [intent for intent in intents if not gnn_states.get(intent)]
        if stale:
            # Cached gnn artifacts from before state persistence carry no
            # parameters; retrain those intents once (seeded, so the
            # retrained weights reproduce the cached probabilities).
            graph = internals["graph"]
            train, valid = split.train, split.valid
            train_index = np.arange(len(train), dtype=np.int64)
            has_valid = len(valid) > 0
            valid_index = (
                np.arange(len(train), len(train) + len(valid), dtype=np.int64)
                if has_valid
                else None
            )
            classifier_spec = _CLASSIFIERS.normalize(config.classifier)
            for intent in stale:
                classifier = _CLASSIFIERS.create(classifier_spec, config=config.gnn)
                classifier.fit_predict(
                    graph,
                    target_intent=intent,
                    train_index=train_index,
                    train_labels=train.labels(intent),
                    valid_index=valid_index,
                    valid_labels=valid.labels(intent) if has_valid else None,
                )
                gnn_states[intent] = classifier.model_state()

        model = ResolverModel.from_fit(
            config=config,
            intents=intents,
            split=split,
            solver=internals["solver"],
            representations=internals["representations"],
            graph=internals["graph"],
            gnn_states=gnn_states,
            retriever_spec=retriever_spec,
            augment_with_scores=self.augment_with_scores,
            feature_config=self.feature_config,
        )
        elapsed = time.perf_counter() - start
        arrays, metadata = model.to_payload()
        self.cache.put(STAGE_MODEL, key, stage_artifact(arrays, elapsed, **metadata))
        result.events.append(StageEvent(STAGE_MODEL, key, STATUS_COMPUTED, elapsed))
        return ModelFitResult(model=model, pipeline=result)

    # ----------------------------------------------------------------- stages

    @staticmethod
    def _resolve_layers(
        intents: tuple[str, ...], intent_subset: Sequence[str] | None
    ) -> tuple[str, ...]:
        if intent_subset is None:
            return intents
        unknown = set(intent_subset) - set(intents)
        if unknown:
            raise IntentError(
                f"intent subset contains unknown intents: {sorted(unknown)}"
            )
        return tuple(intent_subset)

    def matcher_fit_key(
        self,
        train: CandidateSet,
        intents: Sequence[str],
        config: FlexERConfig,
    ) -> str:
        """The matcher-fit stage key of a run over ``train``.

        Exposed so a fitted :class:`~repro.model.ResolverModel` can seed
        a query-time cache with its solver state: the online exact path
        then *hits* this stage instead of re-fitting matchers.
        """
        # The executor is deliberately absent from the stage key:
        # sharded training and encoding are bit-identical to serial, so
        # artifacts cached under any executor serve every other one.
        return digest(
            STAGE_MATCHER_FIT,
            self._solver_spec(config),
            list(tuple(intents)),
            config.matcher,
            self._feature_fingerprint(),
            fingerprint_candidates(train),
        )

    def seed_matcher_artifact(
        self,
        train: CandidateSet,
        intents: Sequence[str],
        config: FlexERConfig,
        state: Mapping[str, np.ndarray],
        elapsed_seconds: float = 0.0,
    ) -> str:
        """Pre-populate the matcher-fit stage with already-fitted state.

        Returns the seeded stage key.  Subsequent runs over a split whose
        training part fingerprints identically restore the solver from
        this artifact (a cache *hit*) rather than re-fitting it.
        """
        key = self.matcher_fit_key(train, intents, config)
        self.cache.put(
            STAGE_MATCHER_FIT,
            key,
            stage_artifact(
                dict(state),
                elapsed_seconds,
                solver=str(self._solver_spec(config)["type"]),
                num_train_pairs=len(train),
            ),
        )
        return key

    def _run_matcher_fit(
        self,
        train: CandidateSet,
        intents: tuple[str, ...],
        config: FlexERConfig,
        fingerprint_train: str,
        solver_spec: dict[str, object],
        executor: Executor | None = None,
    ):
        key = digest(
            STAGE_MATCHER_FIT,
            solver_spec,
            list(intents),
            config.matcher,
            self._feature_fingerprint(),
            fingerprint_train,
        )
        solver = self._make_solver(solver_spec, intents, config)
        if executor is not None:
            # Runtime fan-out wiring for per-intent training and batch
            # encoding (both no-ops under the serial executor).
            solver.executor = executor
            solver.encoder.executor = executor
        artifact = self.cache.get(STAGE_MATCHER_FIT, key)
        if artifact is not None:
            solver.load_state_dict(artifact.arrays)
            event = StageEvent(
                STAGE_MATCHER_FIT, key, STATUS_HIT, artifact.elapsed_seconds
            )
            return solver, event
        start = time.perf_counter()
        solver.fit(train)
        elapsed = time.perf_counter() - start
        self.cache.put(
            STAGE_MATCHER_FIT,
            key,
            stage_artifact(
                solver.state_dict(),
                elapsed,
                solver=str(solver_spec["type"]),
                num_train_pairs=len(train),
            ),
        )
        return solver, StageEvent(STAGE_MATCHER_FIT, key, STATUS_COMPUTED, elapsed)

    def _run_representation(
        self,
        solver,
        combined: CandidateSet,
        intents: tuple[str, ...],
        matcher_key: str,
        data_fingerprints: list[str],
    ):
        key = digest(
            STAGE_REPRESENTATION,
            matcher_key,
            self.augment_with_scores,
            data_fingerprints,
        )
        artifact = self.cache.get(STAGE_REPRESENTATION, key)
        if artifact is not None:
            representations = {intent: artifact.arrays[intent] for intent in intents}
            event = StageEvent(
                STAGE_REPRESENTATION, key, STATUS_HIT, artifact.elapsed_seconds
            )
            return representations, event
        start = time.perf_counter()
        representations = compute_representations(
            solver, combined, self.augment_with_scores
        )
        elapsed = time.perf_counter() - start
        self.cache.put(
            STAGE_REPRESENTATION,
            key,
            stage_artifact(
                representations,
                elapsed,
                augment_with_scores=self.augment_with_scores,
                num_pairs=len(combined),
            ),
        )
        return representations, StageEvent(
            STAGE_REPRESENTATION, key, STATUS_COMPUTED, elapsed
        )

    def _run_graph_build(
        self,
        representations: dict[str, np.ndarray],
        layer_intents: tuple[str, ...],
        config: FlexERConfig,
        representation_key: str,
    ):
        builder_spec = GRAPH_BUILDERS.normalize(config.graph_builder)
        key = digest(
            STAGE_GRAPH_BUILD,
            builder_spec,
            representation_key,
            config.graph,
            list(layer_intents),
        )
        artifact = self.cache.get(STAGE_GRAPH_BUILD, key)
        if artifact is not None:
            graph = _graph_from_artifact(artifact)
            event = StageEvent(
                STAGE_GRAPH_BUILD, key, STATUS_HIT, artifact.elapsed_seconds
            )
            return graph, event
        start = time.perf_counter()
        builder = GRAPH_BUILDERS.create(builder_spec, config=config.graph)
        graph = builder.build(representations, intents=layer_intents)
        elapsed = time.perf_counter() - start
        self.cache.put(STAGE_GRAPH_BUILD, key, _graph_to_artifact(graph, elapsed))
        return graph, StageEvent(STAGE_GRAPH_BUILD, key, STATUS_COMPUTED, elapsed)

    def _gnn_key(
        self,
        classifier_spec: dict[str, object],
        graph_key: str,
        config: FlexERConfig,
        intent: str,
        train_index: np.ndarray,
        valid_index: np.ndarray | None,
    ) -> str:
        # The graph key already pins the representations, layer set, and
        # (through the data fingerprints) every label matrix; adding the
        # classifier spec, GNN config, and split sizes pins the model and
        # its supervision.  The executor stays out of the key: sharded
        # GNN training is bit-identical to serial.
        return digest(
            STAGE_GNN,
            classifier_spec,
            graph_key,
            config.gnn,
            intent,
            int(train_index.shape[0]),
            int(valid_index.shape[0]) if valid_index is not None else 0,
        )

    def _store_gnn_artifact(
        self,
        stage: str,
        key: str,
        probabilities: np.ndarray,
        best_f1: float,
        elapsed: float,
        intent: str,
        state: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        arrays: dict[str, np.ndarray] = {
            "probabilities": probabilities,
            "best_validation_f1": np.array([best_f1]),
        }
        # Trained parameters ride along under a reserved prefix so a
        # model fit over a warm cache restores the intent's GNN weights
        # without retraining.
        for name, array in (state or {}).items():
            arrays[f"{_GNN_STATE_PREFIX}{name}"] = array
        self.cache.put(stage, key, stage_artifact(arrays, elapsed, intent=intent))

    @staticmethod
    def _gnn_state_from_artifact(artifact: Artifact) -> dict[str, np.ndarray]:
        """Extract the trained-parameter arrays of a cached gnn artifact."""
        return {
            key[len(_GNN_STATE_PREFIX) :]: array
            for key, array in artifact.arrays.items()
            if key.startswith(_GNN_STATE_PREFIX)
        }

    def _run_gnn_stage(
        self,
        graph: MultiplexGraph,
        targets: tuple[str, ...],
        config: FlexERConfig,
        graph_key: str,
        train: CandidateSet,
        valid: CandidateSet | None,
        train_index: np.ndarray,
        valid_index: np.ndarray | None,
        executor: Executor | None,
    ) -> dict[str, tuple[np.ndarray, float, StageEvent, dict[str, np.ndarray]]]:
        """Run (or restore) one GNN per target intent; parallel across intents.

        Cache lookups and stores stay in the calling process; only the
        cache-missing trainings fan out — with a parallel executor, one
        task per intent, each shipping the graph payload plus that
        intent's supervision arrays and returning layer probabilities
        that are bit-identical to the serial training.  Each outcome also
        carries the trained parameter arrays (empty when a pre-state
        cached artifact was hit) for model assembly.
        """
        classifier_spec = INTENT_CLASSIFIERS.normalize(config.classifier)
        valid_labels_of = (
            (lambda intent: valid.labels(intent))
            if valid is not None and valid_index is not None
            else (lambda intent: None)
        )
        outcomes: dict[str, tuple[np.ndarray, float, StageEvent, dict[str, np.ndarray]]] = {}
        pending: list[tuple[str, str, str]] = []
        for intent in targets:
            stage = f"{STAGE_GNN}:{intent}"
            key = self._gnn_key(
                classifier_spec, graph_key, config, intent, train_index, valid_index
            )
            artifact = self.cache.get(stage, key)
            if artifact is not None:
                layer_probabilities = artifact.arrays["probabilities"]
                best_f1 = float(artifact.arrays["best_validation_f1"][0])
                event = StageEvent(stage, key, STATUS_HIT, artifact.elapsed_seconds)
                outcomes[intent] = (
                    layer_probabilities,
                    best_f1,
                    event,
                    self._gnn_state_from_artifact(artifact),
                )
            else:
                pending.append((intent, stage, key))
        if not pending:
            return outcomes

        if executor is not None and executor.is_parallel and len(pending) > 1:
            jobs = [
                ClassifierJob(
                    intent=intent,
                    train_index=train_index,
                    train_labels=train.labels(intent),
                    valid_index=valid_index,
                    valid_labels=valid_labels_of(intent),
                )
                for intent, _, _ in pending
            ]
            results = run_classifier_jobs(graph, classifier_spec, config.gnn, jobs, executor)
            for (intent, stage, key), (layer_probabilities, best_f1, elapsed, state) in zip(
                pending, results
            ):
                self._store_gnn_artifact(
                    stage, key, layer_probabilities, best_f1, elapsed, intent, state
                )
                outcomes[intent] = (
                    layer_probabilities,
                    best_f1,
                    StageEvent(stage, key, STATUS_COMPUTED, elapsed),
                    state,
                )
            return outcomes

        for intent, stage, key in pending:
            start = time.perf_counter()
            classifier = INTENT_CLASSIFIERS.create(classifier_spec, config=config.gnn)
            result = classifier.fit_predict(
                graph,
                target_intent=intent,
                train_index=train_index,
                train_labels=train.labels(intent),
                valid_index=valid_index,
                valid_labels=valid_labels_of(intent),
            )
            elapsed = time.perf_counter() - start
            state = classifier.model_state() if hasattr(classifier, "model_state") else {}
            self._store_gnn_artifact(
                stage, key, result.probabilities, result.best_validation_f1, elapsed, intent, state
            )
            outcomes[intent] = (
                result.probabilities,
                result.best_validation_f1,
                StageEvent(stage, key, STATUS_COMPUTED, elapsed),
                state,
            )
        return outcomes


# ------------------------------------------------------------ graph artifacts


def _graph_to_artifact(graph: MultiplexGraph, elapsed_seconds: float) -> Artifact:
    """Serialize a multiplex graph into a cacheable artifact.

    Uses the graph's :meth:`~repro.graph.multiplex.MultiplexGraph.to_payload`
    round-trip — the same arrays the process executor ships to GNN
    workers — so cached graphs and shipped graphs rebuild identically.
    """
    payload = graph.to_payload()
    return stage_artifact(
        {
            "features": payload["features"],
            "sources": payload["sources"],
            "targets": payload["targets"],
        },
        elapsed_seconds,
        intents=payload["intents"],
        num_pairs=payload["num_pairs"],
        intra_edge_count=payload["intra_edge_count"],
        inter_edge_count=payload["inter_edge_count"],
    )


def _graph_from_artifact(artifact: Artifact) -> MultiplexGraph:
    """Rebuild a multiplex graph from a cached artifact.

    ``to_payload`` exports edges grouped by target with per-target
    insertion order preserved, so the reconstruction is edge-for-edge
    identical to the original graph and GNN training over it is
    byte-identical.
    """
    metadata = artifact.metadata
    return MultiplexGraph.from_payload(
        {
            "intents": metadata["intents"],
            "num_pairs": metadata["num_pairs"],
            "features": artifact.arrays["features"],
            "sources": artifact.arrays["sources"],
            "targets": artifact.arrays["targets"],
            "intra_edge_count": metadata["intra_edge_count"],
            "inter_edge_count": metadata["inter_edge_count"],
        }
    )
