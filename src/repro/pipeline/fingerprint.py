"""Content fingerprints for pipeline stages.

Every stage artifact is addressed by a SHA-256 digest of (a) the
configuration that produced it and (b) the fingerprints of its inputs.
Configurations are canonicalized through JSON with sorted keys; candidate
data is fingerprinted through its DITTO serialization (the shared
contract of :mod:`repro.data.serialization`) plus the label matrix, so
two candidate sets with identical serialized pairs and labels hash the
same regardless of how they were constructed.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import asdict, is_dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..data.pairs import CandidateSet
from ..data.serialization import serialize_candidates

#: Length of the hexadecimal digests produced by this module.
DIGEST_LENGTH = 64


def fingerprint_array(array: np.ndarray) -> str:
    """SHA-256 digest of an array's dtype, shape, and raw bytes."""
    array = np.ascontiguousarray(array)
    sha = hashlib.sha256()
    sha.update(str(array.dtype).encode("utf-8"))
    sha.update(str(array.shape).encode("utf-8"))
    sha.update(array.tobytes())
    return sha.hexdigest()


def _jsonable(value: object) -> object:
    """Coerce a value into something :func:`json.dumps` can canonicalize."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, "fields": _jsonable(asdict(value))}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": fingerprint_array(value)}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def canonical_json(value: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


def digest(*parts: object) -> str:
    """SHA-256 digest of the canonical JSON encoding of ``parts``."""
    sha = hashlib.sha256()
    sha.update(canonical_json(list(parts)).encode("utf-8"))
    return sha.hexdigest()


#: Memoized fingerprints, weakly keyed by candidate-set identity.  The
#: stored pair length guards against mutation: ``CandidateSet.add`` is
#: the only mutator and strictly grows the set, so an unchanged length
#: means unchanged content.
_candidate_fingerprints: "weakref.WeakKeyDictionary[CandidateSet, tuple[int, str]]" = (
    weakref.WeakKeyDictionary()
)


def fingerprint_candidates(candidates: CandidateSet | None) -> str:
    """Content fingerprint of a labeled candidate set.

    The digest covers the DITTO-serialized text of every pair (in
    candidate order), the intent names, and the full label matrix — the
    exact inputs the matching and supervision stages consume.  ``None``
    and empty candidate sets fingerprint to a distinct constant digest.
    Fingerprints are memoized per candidate-set instance so batch grids
    over one split do not re-serialize the data per scenario.
    """
    if candidates is None or len(candidates) == 0:
        return digest("empty-candidate-set")
    cached = _candidate_fingerprints.get(candidates)
    if cached is not None and cached[0] == len(candidates):
        return cached[1]
    texts = serialize_candidates(candidates.dataset, candidates.pairs)
    labels = candidates.label_matrix()
    result = digest(
        "candidate-set",
        candidates.dataset.name,
        list(candidates.intents),
        texts,
        fingerprint_array(labels),
    )
    _candidate_fingerprints[candidates] = (len(candidates), result)
    return result


def fingerprint_split(parts: Sequence[CandidateSet | None]) -> str:
    """Fingerprint of an ordered sequence of candidate subsets."""
    return digest("candidate-split", [fingerprint_candidates(part) for part in parts])
