"""Content-addressed artifact cache for pipeline stages.

Artifacts are keyed by ``(stage, digest)`` where the digest fingerprints
the stage's configuration and inputs (see
:mod:`repro.pipeline.fingerprint`).  Each artifact is a set of named
numpy arrays plus JSON metadata; persistence goes through the artifact
format of :mod:`repro.data.serialization`, so an on-disk cache can be
shared across processes and runs.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping

import numpy as np

from ..config import CacheConfig
from ..data.serialization import ARTIFACT_SUFFIX, read_artifact, write_artifact
from ..exceptions import DataError


@dataclass
class Artifact:
    """One cached stage output: named arrays plus JSON metadata."""

    arrays: dict[str, np.ndarray]
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds the stage originally took to compute."""
        return float(self.metadata.get("elapsed_seconds", 0.0))


@dataclass
class CacheStats:
    """Lookup counters of an :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Two-tier (memory + optional disk) content-addressed artifact store.

    Parameters
    ----------
    config:
        Cache behaviour; ``None`` uses the default in-memory-only
        configuration.  A :class:`str`/:class:`~pathlib.Path` is accepted
        as shorthand for an on-disk cache rooted at that directory.
    """

    def __init__(self, config: CacheConfig | str | Path | None = None) -> None:
        if isinstance(config, (str, Path)):
            config = CacheConfig(directory=str(config))
        self.config = config or CacheConfig()
        self._memory: dict[tuple[str, str], Artifact] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------ paths

    @property
    def directory(self) -> Path | None:
        """Root of the on-disk store (``None`` for in-memory caches)."""
        return Path(self.config.directory) if self.config.directory else None

    def artifact_path(self, stage: str, digest: str) -> Path | None:
        """On-disk location of an artifact (``None`` without a directory)."""
        root = self.directory
        if root is None:
            return None
        return root / stage / f"{digest}{ARTIFACT_SUFFIX}"

    # ----------------------------------------------------------------- lookup

    def get(self, stage: str, digest: str) -> Artifact | None:
        """Return the cached artifact for ``(stage, digest)`` or ``None``."""
        if not self.config.enabled:
            self.stats.misses += 1
            return None
        key = (stage, digest)
        artifact = self._memory.get(key)
        if artifact is None:
            path = self.artifact_path(stage, digest)
            if path is not None and path.exists():
                try:
                    arrays, metadata = read_artifact(path)
                except DataError:
                    artifact = None
                else:
                    artifact = Artifact(arrays=arrays, metadata=metadata)
                    if self.config.keep_in_memory:
                        self._memory[key] = artifact
        if artifact is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return artifact

    def put(self, stage: str, digest: str, artifact: Artifact) -> None:
        """Store an artifact under ``(stage, digest)``.

        Disk publication is race-free under concurrent cold starts: the
        artifact lands via :func:`write_artifact`'s atomic tmp+rename
        (a concurrent reader sees the old complete file or the new one,
        never a partial write), and an already-published final file is
        treated as a hit and left untouched — content addressing makes
        both writers' bytes interchangeable, so the first publisher
        wins and the second skips the redundant write.
        """
        if not self.config.enabled:
            return
        self.stats.puts += 1
        if self.config.keep_in_memory:
            self._memory[(stage, digest)] = artifact
        path = self.artifact_path(stage, digest)
        if path is not None and not path.exists():
            write_artifact(path, artifact.arrays, artifact.metadata)

    def contains(self, stage: str, digest: str) -> bool:
        """Whether an artifact exists, without counting a lookup."""
        if not self.config.enabled:
            return False
        if (stage, digest) in self._memory:
            return True
        path = self.artifact_path(stage, digest)
        return path is not None and path.exists()

    # ------------------------------------------------------------- management

    @property
    def memory_artifacts(self) -> int:
        """Number of artifacts currently held in the in-memory tier."""
        return len(self._memory)

    def prune_memory(self, keep_stages: tuple[str, ...] = ()) -> int:
        """Drop in-memory artifacts except those of ``keep_stages``.

        Long-lived cache owners (e.g. a query session serving many
        distinct micro-batches) call this to bound memory growth while
        keeping seeded artifacts alive; the on-disk tier is untouched.
        Returns the number of artifacts dropped.
        """
        keep = set(keep_stages)
        doomed = [key for key in self._memory if key[0] not in keep]
        for key in doomed:
            del self._memory[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop every artifact from memory and disk."""
        self._memory.clear()
        root = self.directory
        if root is not None and root.exists():
            shutil.rmtree(root)

    def describe(self) -> dict[str, object]:
        """Summary of cache contents and counters."""
        disk_artifacts = 0
        root = self.directory
        if root is not None and root.exists():
            disk_artifacts = sum(1 for _ in root.glob(f"*/*{ARTIFACT_SUFFIX}"))
        return {
            "directory": str(root) if root is not None else None,
            "enabled": self.config.enabled,
            "memory_artifacts": len(self._memory),
            "disk_artifacts": disk_artifacts,
            "stats": self.stats.as_dict(),
        }


def stage_artifact(
    arrays: Mapping[str, np.ndarray],
    elapsed_seconds: float,
    **metadata: object,
) -> Artifact:
    """Build a stage artifact stamped with its original compute time."""
    payload = dict(metadata)
    payload["elapsed_seconds"] = float(elapsed_seconds)
    return Artifact(arrays=dict(arrays), metadata=payload)
