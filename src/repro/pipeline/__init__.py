"""Staged FlexER pipeline orchestration with content-addressed caching.

The subsystem decomposes ``FlexER.run_split()`` into addressable stages
(matcher-fit → representation → graph-build → per-intent GNN), caches
each stage's artifact under a fingerprint of its config + input data,
and executes (dataset × config) scenario grids with shared caching:

>>> from repro import load_benchmark
>>> from repro.pipeline import PipelineRunner
>>> from repro.config import FlexERConfig
>>> benchmark = load_benchmark("amazon_mi", num_pairs=150, products_per_domain=15)
>>> runner = PipelineRunner()
>>> cold = runner.run(benchmark.split, benchmark.intents, FlexERConfig.fast())
>>> warm = runner.run(benchmark.split, benchmark.intents, FlexERConfig.fast())
>>> warm.computed_stages
()

See :mod:`repro.pipeline.cli` for the command-line entry point.
"""

from .cache import Artifact, ArtifactCache, CacheStats, stage_artifact
from .fingerprint import (
    canonical_json,
    digest,
    fingerprint_array,
    fingerprint_candidates,
    fingerprint_split,
)
from .runner import (
    STAGE_GNN,
    STAGE_GRAPH_BUILD,
    STAGE_MATCHER_FIT,
    STAGE_MODEL,
    STAGE_REPRESENTATION,
    STATUS_COMPUTED,
    STATUS_HIT,
    ModelFitResult,
    PipelineResult,
    PipelineRunner,
    StageEvent,
)
from .batch import BatchRunner, Scenario, ScenarioRun, intent_subset_grid, k_sweep, solver_grid

__all__ = [
    "Artifact",
    "ArtifactCache",
    "CacheStats",
    "stage_artifact",
    "canonical_json",
    "digest",
    "fingerprint_array",
    "fingerprint_candidates",
    "fingerprint_split",
    "STAGE_GNN",
    "STAGE_GRAPH_BUILD",
    "STAGE_MATCHER_FIT",
    "STAGE_MODEL",
    "STAGE_REPRESENTATION",
    "STATUS_COMPUTED",
    "STATUS_HIT",
    "ModelFitResult",
    "PipelineResult",
    "PipelineRunner",
    "StageEvent",
    "BatchRunner",
    "Scenario",
    "ScenarioRun",
    "intent_subset_grid",
    "k_sweep",
    "solver_grid",
]
