"""Command-line entry point of the staged FlexER pipeline.

Usage (module form)::

    PYTHONPATH=src python -m repro.pipeline run --dataset amazon_mi
    PYTHONPATH=src python -m repro.pipeline resolve --dataset amazon_mi --blocker token
    PYTHONPATH=src python -m repro.pipeline fit --save-model model.npz --query-holdout 6
    PYTHONPATH=src python -m repro.pipeline query --model model.npz --query-holdout 6
    PYTHONPATH=src python -m repro.pipeline update --model model.npz --upsert 3
    PYTHONPATH=src python -m repro.pipeline retrieval-eval --model model.npz --min-recall 0.9
    PYTHONPATH=src python -m repro.pipeline sweep-k --k-values 0,2,4,6
    PYTHONPATH=src python -m repro.pipeline scenario --name streaming-smoke --seed 0
    PYTHONPATH=src python -m repro.pipeline cache --cache-dir .repro-cache

``run`` executes the four pipeline stages once over a synthetic
benchmark's pre-built split; ``resolve`` starts one step earlier, from
the benchmark's *raw records* (blocking → labeling → staged FlexER,
through :func:`repro.resolve`); ``fit`` trains on the benchmark's raw
records (optionally holding out the last N records) and persists a
:class:`~repro.model.ResolverModel`; ``query`` loads a persisted model
in a fresh process and resolves the held-out records against the fitted
corpus online; ``update`` absorbs held-out records (and optional
deletes) into a persisted model without a refit, appending update
segments next to the unchanged base artifact;
``retrieval-eval`` scores a persisted model's bundled candidate
retriever against a freshly fitted exact ``ann_knn`` oracle (recall@k +
Jaccard overlap, optional recall floor and deterministic candidate
dump); ``sweep-k`` executes a Table-8-style grid through the
:class:`~repro.pipeline.batch.BatchRunner`; ``cache`` inspects (or
clears) an on-disk artifact cache.  All components are named by registry
keys (``--solver``, ``--blocker``, ``--retriever``) and constructed
through :mod:`repro.registry`.  With ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) artifacts persist across
invocations, so repeating a command — or sweeping around a previous run —
skips matcher training and representation.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

import numpy as np

from .. import registry
from ..config import CacheConfig, FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from ..data.serialization import write_artifact
from ..datasets import BENCHMARK_LABELERS, benchmark_names, load_benchmark
from ..evaluation import evaluate_binary, format_table
from ..exec import executor_spec, make_executor
from ..resolver import Resolver, ResolverResult
from .batch import BatchRunner, k_sweep
from .cache import ArtifactCache
from .runner import PipelineResult, PipelineRunner

#: Environment variable providing the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="amazon_mi",
        choices=benchmark_names(),
        help="synthetic benchmark to run on",
    )
    parser.add_argument("--num-pairs", type=int, default=240, help="candidate pairs")
    parser.add_argument("--products", type=int, default=20, help="products per domain")
    parser.add_argument("--seed", type=int, default=42, help="generator + model seed")
    parser.add_argument("--matcher-epochs", type=int, default=10, help="matcher epochs")
    parser.add_argument("--gnn-epochs", type=int, default=40, help="GraphSAGE epochs")
    parser.add_argument(
        "--solver",
        "--representation-source",
        dest="solver",
        default="in_parallel",
        choices=registry.available("solver"),
        help="solver registry key (--representation-source is a deprecated alias)",
    )
    parser.add_argument(
        "--executor",
        default="serial",
        choices=registry.available("executor"),
        help="sharded-execution backend (results are identical across executors)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers for --executor threads/processes (default: all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get(CACHE_DIR_ENV),
        help=f"artifact cache directory (default: ${CACHE_DIR_ENV} or in-memory)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable artifact caching entirely"
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the pipeline CLI."""
    parser = argparse.ArgumentParser(
        prog="repro.pipeline",
        description="Staged FlexER pipeline with content-addressed artifact caching",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run the staged pipeline once")
    _add_common_options(run)
    run.add_argument("--k", type=int, default=6, help="intra-layer kNN neighbours")
    run.add_argument(
        "--intent-subset",
        default=None,
        help="comma-separated graph layers (default: all intents)",
    )
    run.add_argument(
        "--target-intents",
        default=None,
        help="comma-separated intents to predict (default: the graph layers)",
    )

    resolve = commands.add_parser(
        "resolve",
        help="end-to-end raw-records resolution: blocking → labeling → staged FlexER",
    )
    _add_common_options(resolve)
    resolve.add_argument("--k", type=int, default=6, help="intra-layer kNN neighbours")
    resolve.add_argument(
        "--blocker",
        default="qgram",
        choices=registry.available("blocker"),
        help="blocker registry key used for candidate generation",
    )
    resolve.add_argument(
        "--min-shared",
        type=int,
        default=None,
        help="q-grams/tokens two records must share (qgram/token blockers)",
    )
    resolve.add_argument(
        "--target-intents",
        default=None,
        help="comma-separated intents to predict (default: all intents)",
    )
    resolve.add_argument(
        "--dump-result",
        default=None,
        metavar="PATH",
        help=(
            "write the resolution (per-intent probabilities + predictions) as a "
            ".npz artifact; byte-identical across executors, which the exec-smoke "
            "CI job asserts with a plain cmp"
        ),
    )

    fit = commands.add_parser(
        "fit",
        help="fit on raw benchmark records and persist a ResolverModel artifact",
    )
    _add_common_options(fit)
    fit.add_argument("--k", type=int, default=6, help="intra-layer kNN neighbours")
    fit.add_argument(
        "--blocker",
        default="qgram",
        choices=registry.available("blocker"),
        help="blocker registry key used for candidate generation",
    )
    fit.add_argument(
        "--retriever",
        default="ann_knn",
        choices=registry.available("candidate_retriever"),
        help="online candidate retriever bundled with the model",
    )
    fit.add_argument(
        "--retriever-arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "extra retriever spec parameter, repeatable — e.g. "
            "--retriever-arg num_bands=64 --retriever-arg rows_per_band=6 "
            "tunes the lsh banding for a small corpus"
        ),
    )
    fit.add_argument(
        "--save-model",
        required=True,
        metavar="PATH",
        help="write the fitted ResolverModel as a .npz artifact",
    )
    _add_query_options(fit)
    fit.add_argument(
        "--dump-query",
        default=None,
        metavar="PATH",
        help=(
            "after fitting, query the held-out records with the in-memory model "
            "and dump the result artifact (cmp'd against the reloaded model by "
            "the query-smoke CI job)"
        ),
    )

    query = commands.add_parser(
        "query",
        help="load a persisted ResolverModel and resolve held-out records online",
    )
    _add_common_options(query)
    query.add_argument(
        "--model",
        required=True,
        metavar="PATH",
        help="path of a ResolverModel artifact written by fit --save-model",
    )
    _add_query_options(query)
    query.add_argument(
        "--mmap",
        action="store_true",
        help=(
            "memory-map the model's payload arrays instead of materializing "
            "them (results are byte-identical to an eager load)"
        ),
    )
    query.add_argument(
        "--dump-result",
        default=None,
        metavar="PATH",
        help="write the query result as a deterministic .npz artifact",
    )

    update = commands.add_parser(
        "update",
        help="absorb corpus upserts/deletes into a persisted ResolverModel without refit",
    )
    _add_common_options(update)
    update.add_argument(
        "--model",
        required=True,
        metavar="PATH",
        help="path of a ResolverModel artifact written by fit --save-model",
    )
    _add_query_options(update)
    update.add_argument(
        "--upsert",
        type=int,
        default=3,
        metavar="M",
        help="absorb the first M held-out benchmark records into the corpus",
    )
    update.add_argument(
        "--delete-unreferenced",
        type=int,
        default=0,
        metavar="D",
        help="tombstone D corpus records no split pair references",
    )
    update.add_argument(
        "--chunks",
        type=int,
        default=1,
        help="replay the upserts as this many timestamped stream chunks "
        "(one update per chunk)",
    )
    update.add_argument(
        "--compact",
        default="auto",
        choices=("auto", "never", "force"),
        help="compaction: 'auto' follows the drift policy, 'never' pins "
        "segment-only persistence, 'force' refits immediately",
    )
    update.add_argument(
        "--dump-result",
        default=None,
        metavar="PATH",
        help="query the remaining held-out records after the updates and "
        "write the result as a deterministic .npz artifact",
    )
    update.add_argument(
        "--parity-dump",
        default=None,
        metavar="PATH",
        help=(
            "also fit a fresh model on the union corpus (same split) and dump "
            "its query over the same records; in --query-mode exact the two "
            "dumps must be cmp-identical (the update-smoke CI contract)"
        ),
    )
    update.add_argument(
        "--no-save",
        action="store_true",
        help="do not persist the update segments back next to --model",
    )

    retrieval_eval = commands.add_parser(
        "retrieval-eval",
        help="score a persisted model's candidate retriever against the exact oracle",
    )
    _add_common_options(retrieval_eval)
    retrieval_eval.add_argument(
        "--model",
        required=True,
        metavar="PATH",
        help="path of a ResolverModel artifact written by fit --save-model",
    )
    retrieval_eval.add_argument(
        "--query-holdout",
        type=int,
        default=6,
        help="hold the last N benchmark records out as query records (must match fit)",
    )
    retrieval_eval.add_argument(
        "--ks",
        default="1,10",
        help="comma-separated candidate-list sizes to score (default: %(default)s)",
    )
    retrieval_eval.add_argument(
        "--min-recall",
        type=float,
        default=None,
        metavar="R",
        help="exit 4 if recall at the largest k falls below R",
    )
    retrieval_eval.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the model's payload arrays instead of materializing them",
    )
    retrieval_eval.add_argument(
        "--dump-candidates",
        default=None,
        metavar="PATH",
        help=(
            "write the retriever's ranked candidate lists as a deterministic "
            ".npz artifact (cmp'd across processes by the retrieval-smoke CI job)"
        ),
    )

    sweep = commands.add_parser(
        "sweep-k", help="sweep intra-layer k through the BatchRunner (Table 8)"
    )
    _add_common_options(sweep)
    sweep.add_argument(
        "--k-values",
        default="0,2,4,6,8,10",
        help="comma-separated k values to sweep",
    )

    scenario = commands.add_parser(
        "scenario",
        help="run a named workload scenario (streaming replay / robustness grid)",
    )
    scenario.add_argument(
        "--name",
        default=None,
        help="named scenario preset (see --list)",
    )
    scenario.add_argument(
        "--list", action="store_true", help="list the named scenario presets"
    )
    scenario.add_argument("--seed", type=int, default=0, help="scenario seed")
    scenario.add_argument(
        "--executor",
        default="serial",
        choices=registry.available("executor"),
        help="sharded-execution backend (never changes report content)",
    )
    scenario.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers for --executor threads/processes",
    )
    scenario.add_argument(
        "--report",
        default=None,
        help="write the timings-free report JSON here (byte-reproducible)",
    )
    scenario.add_argument(
        "--timings",
        default=None,
        help="write the full report JSON (with wall-clock timings) here",
    )

    cache = commands.add_parser("cache", help="inspect or clear an artifact cache")
    cache.add_argument(
        "--cache-dir",
        default=os.environ.get(CACHE_DIR_ENV),
        help=f"artifact cache directory (default: ${CACHE_DIR_ENV})",
    )
    cache.add_argument("--clear", action="store_true", help="delete every artifact")
    return parser


def _add_query_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--query-holdout",
        type=int,
        default=6,
        help="hold the last N benchmark records out of the corpus as query records",
    )
    parser.add_argument(
        "--query-k",
        type=int,
        default=4,
        help="candidate corpus records retrieved per query record",
    )
    parser.add_argument(
        "--query-mode",
        default="online",
        choices=("online", "exact"),
        help="online (frozen incremental inference) or exact (transductive replay)",
    )


def _make_cache(args: argparse.Namespace) -> ArtifactCache:
    if getattr(args, "no_cache", False):
        return ArtifactCache(CacheConfig(enabled=False))
    return ArtifactCache(CacheConfig(directory=args.cache_dir))


def _make_config(
    args: argparse.Namespace,
    k_neighbors: int,
    blocker: object | None = None,
) -> FlexERConfig:
    kwargs = {"blocker": blocker} if blocker is not None else {}
    return FlexERConfig(
        matcher=MatcherConfig(
            hidden_dims=(64, 32),
            n_features=256,
            epochs=args.matcher_epochs,
            seed=args.seed,
        ),
        graph=GraphConfig(k_neighbors=k_neighbors),
        gnn=GNNConfig(hidden_dim=48, epochs=args.gnn_epochs, seed=args.seed),
        solver=args.solver,
        executor=executor_spec(args.executor, args.workers),
        **kwargs,
    )


def _split_names(value: str | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    return names or None


def _dump_result(result: ResolverResult, path: str) -> None:
    """Persist the resolution as a deterministic ``.npz`` artifact.

    Only result content goes in — per-intent probabilities and
    predictions over the test split, plus the canonical test pair ids —
    never timings or the executor spec, so two runs that resolve
    identically dump byte-identical files regardless of how they were
    executed.
    """
    arrays: dict[str, object] = {
        "test_pairs": np.array(
            [list(pair.as_tuple()) for pair in result.split.test.pairs], dtype=np.str_
        ),
    }
    for intent in result.solution.intents:
        arrays[f"probabilities::{intent}"] = result.solution.probabilities[intent]
        arrays[f"predictions::{intent}"] = result.solution.predictions[intent]
    write_artifact(
        path,
        arrays,
        metadata={
            "intents": list(result.solution.intents),
            "num_test_pairs": len(result.split.test),
        },
    )


def _print_stage_table(result: PipelineResult) -> None:
    rows = [
        [event.stage, event.status, event.elapsed_seconds]
        for event in result.events
    ]
    print(format_table(["Stage", "Status", "Compute s"], rows, title="Pipeline stages"))


def _command_run(args: argparse.Namespace) -> int:
    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    runner = PipelineRunner(cache=_make_cache(args))
    result = runner.run(
        benchmark.split,
        benchmark.intents,
        config=_make_config(args, k_neighbors=args.k),
        intent_subset=_split_names(args.intent_subset),
        target_intents=_split_names(args.target_intents),
    )
    rows = []
    for intent in result.solution.intents:
        labels = benchmark.split.test.labels(intent)
        evaluation = evaluate_binary(result.solution.prediction(intent), labels)
        rows.append([intent, evaluation.precision, evaluation.recall, evaluation.f1])
    print(
        format_table(
            ["Intent", "P", "R", "F1"],
            rows,
            title=f"FlexER pipeline on {args.dataset} (test split)",
        )
    )
    _print_stage_table(result)
    print(f"cache: {runner.cache.stats.as_dict()}")
    return 0


def _command_sweep_k(args: argparse.Namespace) -> int:
    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    k_values = [int(value) for value in args.k_values.split(",") if value.strip()]
    target = benchmark.intents[0]
    runner = PipelineRunner(cache=_make_cache(args))
    scenarios = k_sweep(
        _make_config(args, k_neighbors=6), k_values, target_intents=(target,)
    )
    runs = BatchRunner(runner).run(
        benchmark.split, benchmark.intents, scenarios, dataset=args.dataset
    )
    labels = benchmark.split.test.labels(target)
    rows = []
    for run in runs:
        evaluation = evaluate_binary(run.result.solution.prediction(target), labels)
        rows.append(
            [
                run.scenario.name,
                evaluation.f1,
                "yes" if run.skipped_expensive_stages else "no",
            ]
        )
    print(
        format_table(
            ["Scenario", f"{target} F1", "matcher+repr cached"],
            rows,
            title=f"Intra-layer k sweep on {args.dataset} (Table 8 style)",
        )
    )
    print(f"cache: {runner.cache.stats.as_dict()}")
    return 0


def _command_resolve(args: argparse.Namespace) -> int:
    """Raw records → blocking → labeling → staged FlexER, via repro.resolve."""
    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    labeler = BENCHMARK_LABELERS[args.dataset]
    products = benchmark.record_products

    def record_labeler(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    blocker_spec: dict[str, object] = {"type": args.blocker}
    if args.min_shared is not None and args.blocker in ("qgram", "token"):
        blocker_spec["min_shared"] = args.min_shared
    if benchmark.dataset.sources:
        blocker_spec["cross_source_only"] = True

    resolver = Resolver(
        config=_make_config(args, k_neighbors=args.k, blocker=blocker_spec),
        cache=_make_cache(args),
    )
    result = resolver.resolve(
        benchmark.dataset,
        intents=labeler.intent_names,
        labeler=record_labeler,
        split_seed=args.seed,
        target_intents=_split_names(args.target_intents),
    )

    quality = result.blocking
    if quality is not None:
        rows = [
            [
                intent,
                quality.pair_completeness[intent] if quality.pair_completeness else "-",
                quality.pair_quality[intent] if quality.pair_quality else "-",
            ]
            for intent in result.intents
        ]
        print(
            format_table(
                ["Intent", "Pair completeness", "Pair quality"],
                rows,
                title=(
                    f"Blocking [{args.blocker}] on {args.dataset}: "
                    f"{quality.num_candidate_pairs}/{quality.num_admissible_pairs} pairs, "
                    f"reduction ratio {quality.reduction_ratio:.3f}"
                ),
            )
        )
    evaluations = result.intent_evaluations()
    rows = []
    for intent in result.solution.intents:
        evaluation = evaluations[intent]
        rows.append([intent, evaluation.precision, evaluation.recall, evaluation.f1])
    print(
        format_table(
            ["Intent", "P", "R", "F1"],
            rows,
            title=f"repro.resolve on raw {args.dataset} records (test split)",
        )
    )
    _print_stage_table(result.pipeline)
    print(f"cache: {resolver.runner.cache.stats.as_dict()}")
    if args.dump_result:
        _dump_result(result, args.dump_result)
        print(f"result artifact written to {args.dump_result}")
    return 0


def _coerce_spec_value(raw: str) -> object:
    """Parse a ``--retriever-arg`` value into int, float, bool, or str."""
    text = raw.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _benchmark_labeler(args: argparse.Namespace, benchmark):
    """The record-level labeling callable of a synthetic benchmark."""
    labeler = BENCHMARK_LABELERS[args.dataset]
    products = benchmark.record_products

    def record_labeler(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    return labeler, record_labeler


def _holdout_corpus(args: argparse.Namespace, benchmark):
    """Split benchmark records into (corpus dataset, held-out query records).

    The last ``--query-holdout`` records are withheld from the corpus so
    the fitted model can be queried with genuinely new records; the
    split is deterministic, so a fresh ``query`` process selects exactly
    the records the ``fit`` process withheld.
    """
    from ..data.records import Dataset

    records = list(benchmark.dataset.records)
    holdout = max(int(args.query_holdout), 0)
    if holdout >= len(records):
        raise SystemExit(
            f"--query-holdout {holdout} would leave no corpus records "
            f"({len(records)} total)"
        )
    if holdout == 0:
        return benchmark.dataset, []
    corpus = Dataset(
        records=records[:-holdout],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    return corpus, records[-holdout:]


def _dump_query_result(result, path: str) -> None:
    """Persist a query result as a deterministic ``.npz`` artifact."""
    arrays, metadata = result.as_arrays()
    write_artifact(path, arrays, metadata)


def _print_query_result(result) -> None:
    rows = []
    for index, pair in enumerate(result.pairs):
        rows.append(
            [pair.left_id, pair.right_id]
            + [round(float(result.probabilities[intent][index]), 4) for intent in result.intents]
        )
    print(
        format_table(
            ["Left", "Right"] + [f"P({intent})" for intent in result.intents],
            rows,
            title=(
                f"query[{result.mode}]: {len(result.record_ids)} records, "
                f"{len(result.pairs)} candidate pairs"
            ),
        )
    )


def _command_fit(args: argparse.Namespace) -> int:
    """Fit on raw records (minus holdout), persist the model, optionally query."""
    from ..resolver import Resolver as _Resolver

    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    labeler, record_labeler = _benchmark_labeler(args, benchmark)
    corpus, holdout_records = _holdout_corpus(args, benchmark)

    blocker_spec: dict[str, object] = {"type": args.blocker}
    if benchmark.dataset.sources:
        blocker_spec["cross_source_only"] = True
    # The retriever mirrors the fit-time blocking semantics: the blocker
    # retriever probes the same blocker configuration's index, and the
    # ANN retriever honours clean-clean source admissibility.
    retriever_spec: dict[str, object] = {"type": args.retriever}
    if args.retriever == "blocker":
        retriever_spec["blocker"] = blocker_spec
    elif benchmark.dataset.sources:
        retriever_spec["cross_source_only"] = True
    for item in args.retriever_arg:
        key, separator, raw = item.partition("=")
        if not separator or not key:
            raise SystemExit(f"--retriever-arg must look like KEY=VALUE, got {item!r}")
        retriever_spec[key] = _coerce_spec_value(raw)
    resolver = _Resolver(
        config=_make_config(args, k_neighbors=args.k, blocker=blocker_spec),
        cache=_make_cache(args),
    )
    model = resolver.fit(
        corpus,
        intents=labeler.intent_names,
        labeler=record_labeler,
        split_seed=args.seed,
        retriever=retriever_spec,
    )
    path = model.save(args.save_model)
    description = model.describe()
    print(
        f"model saved to {path} "
        f"(corpus: {description['corpus_records']} records, "
        f"retriever: {description['retriever']}, "
        f"fingerprint {description['fingerprint'][:12]}…)"
    )
    _print_stage_table(model.fit_result.pipeline)
    if args.dump_query:
        if not holdout_records:
            raise SystemExit("--dump-query requires --query-holdout > 0")
        result = model.query(holdout_records, k=args.query_k, mode=args.query_mode)
        _print_query_result(result)
        _dump_query_result(result, args.dump_query)
        print(f"in-process query artifact written to {args.dump_query}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    """Load a persisted model in this (fresh) process and query it."""
    from ..model import ResolverModel

    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    _, holdout_records = _holdout_corpus(args, benchmark)
    if not holdout_records:
        raise SystemExit("query requires --query-holdout > 0")
    model = ResolverModel.load(args.model, mmap=args.mmap)
    executor = None
    if args.executor != "serial" and args.query_mode == "online":
        # Online micro-batches shard bit-identically across records.
        executor = make_executor(executor_spec(args.executor, args.workers))
    result = model.query(
        holdout_records, k=args.query_k, mode=args.query_mode, executor=executor
    )
    _print_query_result(result)
    if args.dump_result:
        _dump_query_result(result, args.dump_result)
        print(f"query artifact written to {args.dump_result}")
    return 0


def _command_retrieval_eval(args: argparse.Namespace) -> int:
    """Score a persisted model's retriever against the exact ``ann_knn`` oracle."""
    from ..evaluation.retrieval import evaluate_candidates
    from ..model import ResolverModel
    from ..registry.components import CANDIDATE_RETRIEVERS

    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    _, holdout_records = _holdout_corpus(args, benchmark)
    if not holdout_records:
        raise SystemExit("retrieval-eval requires --query-holdout > 0")
    ks = tuple(int(value) for value in args.ks.split(",") if value.strip())
    if not ks:
        raise SystemExit("--ks must name at least one candidate-list size")

    model = ResolverModel.load(args.model, mmap=args.mmap)
    spec = model.retriever_spec
    # The oracle re-vectorizes the model's corpus with the retriever's own
    # hashing parameters, so both rank candidates in the same vector space;
    # only the index structure (exact scan vs graph/buckets) differs.
    oracle_spec: dict[str, object] = {"type": "ann_knn"}
    for key in ("metric", "n_features", "attributes", "cross_source_only"):
        if key in spec:
            oracle_spec[key] = spec[key]
    oracle = CANDIDATE_RETRIEVERS.create(oracle_spec)
    oracle.fit(model.corpus)
    if model.tombstones:
        oracle.set_tombstones(model.tombstones)

    quality = evaluate_candidates(model.retriever, oracle, holdout_records, ks=ks)
    summary = quality.summary()
    rows = [[k, quality.recall[k], quality.overlap[k]] for k in quality.ks]
    print(
        format_table(
            ["k", "Recall@k", "Overlap@k"],
            rows,
            title=(
                f"retriever '{spec['type']}' vs exact oracle on {args.dataset}: "
                f"{quality.num_queries} queries, "
                f"{quality.empty_candidate_queries} empty candidate lists"
            ),
        )
    )

    if args.dump_candidates:
        top_k = max(quality.ks)
        candidates = model.retriever.retrieve(holdout_records, top_k)
        width = max((len(ids) for ids in candidates), default=0)
        padded = np.array(
            [list(ids) + [""] * (width - len(ids)) for ids in candidates],
            dtype=np.str_,
        ).reshape(len(candidates), width)
        write_artifact(
            args.dump_candidates,
            {
                "query_ids": np.array(
                    [record.record_id for record in holdout_records], dtype=np.str_
                ),
                "candidates": padded,
            },
            metadata={"k": top_k, "retriever": str(spec["type"])},
        )
        print(f"candidate artifact written to {args.dump_candidates}")

    if args.min_recall is not None:
        headline = float(summary[f"recall@{max(quality.ks)}"])
        if headline < args.min_recall:
            print(
                f"FAIL: recall@{max(quality.ks)} {headline:.3f} "
                f"< floor {args.min_recall:.3f}"
            )
            return 4
        print(
            f"recall@{max(quality.ks)} {headline:.3f} "
            f">= floor {args.min_recall:.3f}"
        )
    return 0


def _command_update(args: argparse.Namespace) -> int:
    """Absorb held-out records (and deletes) into a persisted model."""
    from ..data.pairs import CandidateSet
    from ..data.records import Dataset
    from ..data.splits import DatasetSplit
    from ..datasets import stream_chunks
    from ..model import ResolverModel

    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    _, holdout_records = _holdout_corpus(args, benchmark)
    upsert_count = int(args.upsert)
    if upsert_count < 0 or upsert_count > len(holdout_records):
        raise SystemExit(
            f"--upsert must be in [0, {len(holdout_records)}] "
            f"(the --query-holdout size)"
        )
    upserts = holdout_records[:upsert_count]

    # Updates mutate model state, so load eagerly; existing update
    # segments next to the artifact replay automatically.
    model = ResolverModel.load(args.model, mmap=False)

    # A prior update run may already have absorbed leading holdout
    # records; only still-unseen records remain valid query probes.
    probes = [
        record
        for record in holdout_records[upsert_count:]
        if record.record_id not in model.corpus
    ]

    deletes: list[str] = []
    if args.delete_unreferenced:
        referenced = {
            record_id
            for part in (model.split.train, model.split.valid, model.split.test)
            for pair in part.pairs
            for record_id in (pair.left_id, pair.right_id)
        }
        removable = [
            record.record_id
            for record in model.corpus
            if record.record_id not in referenced
            and record.record_id not in model.tombstones
        ]
        if len(removable) < args.delete_unreferenced:
            raise SystemExit(
                f"only {len(removable)} unreferenced corpus records are "
                f"deletable, asked for {args.delete_unreferenced}"
            )
        deletes = removable[: args.delete_unreferenced]

    if not upserts and not deletes:
        raise SystemExit("update requires --upsert > 0 or --delete-unreferenced > 0")

    chunk_size = -(-len(upserts) // max(int(args.chunks), 1)) if upserts else 0
    batches = (
        [list(chunk.records) for chunk in stream_chunks(upserts, chunk_size)]
        if upserts
        else [[]]
    )
    compacted_reasons: list[str] = []
    for position, batch in enumerate(batches):
        last = position == len(batches) - 1
        result = model.update(
            upserts=batch,
            deletes=deletes if last else (),
            compact=args.compact,
        )
        note = (
            f" (compacted: {', '.join(result.compaction_reasons)})"
            if result.compacted
            else ""
        )
        print(
            f"update {position + 1}/{len(batches)}: +{result.upserts} records, "
            f"-{result.deletes} tombstoned, {len(result.new_pairs)} new pairs, "
            f"{len(result.refreshed_pairs)} refreshed pairs{note}"
        )
        if result.compacted:
            compacted_reasons.extend(result.compaction_reasons)

    description = model.describe()
    print(
        f"model: generation {description['update_generations']}, "
        f"{description['corpus_live_records']}/{description['corpus_records']} "
        f"live records, tombstone ratio {description['tombstone_ratio']:.3f}, "
        f"stale supervision {description['stale_supervision']}"
    )

    if probes and (args.dump_result or args.parity_dump):
        result = model.query(probes, k=args.query_k, mode=args.query_mode)
        _print_query_result(result)
        if args.dump_result:
            _dump_query_result(result, args.dump_result)
            print(f"post-update query artifact written to {args.dump_result}")
    elif args.dump_result or args.parity_dump:
        raise SystemExit("--dump-result/--parity-dump need remaining holdout probes")

    if args.parity_dump:
        # The strict contract: a fresh fit on the union corpus — same
        # supervision pairs, re-anchored over the live records — must
        # answer exact-mode queries byte-identically.
        live = Dataset(
            records=[
                record
                for record in model.corpus
                if record.record_id not in model.tombstones
            ],
            name=model.corpus.name,
            attributes=model.corpus.attributes,
        )

        def reanchor(part):
            """Re-anchor a split part's pairs over the union corpus."""
            return CandidateSet(live, pairs=list(part), intents=model.intents)

        fresh_split = DatasetSplit(
            train=reanchor(model.split.train),
            valid=reanchor(model.split.valid),
            test=reanchor(model.split.test),
        )
        runner = PipelineRunner(
            cache=_make_cache(args),
            augment_with_scores=model.augment_with_scores,
            feature_config=model.feature_config,
        )
        fresh = runner.fit_model(
            fresh_split,
            model.intents,
            config=model.config,
            retriever=model.retriever_spec,
        ).model
        parity = fresh.query(probes, k=args.query_k, mode=args.query_mode)
        _dump_query_result(parity, args.parity_dump)
        print(f"fresh-fit parity artifact written to {args.parity_dump}")

    if not args.no_save:
        path = model.save(args.model)
        if model.update_segments:
            print(
                f"model saved to {path} "
                f"(+{len(model.update_segments)} update segment(s), base unchanged)"
            )
        else:
            reasons = ", ".join(compacted_reasons) or "compaction"
            print(f"model rewritten at {path} after {reasons}")
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    # Imported lazily: the scenarios package pulls in the whole stack
    # (resolver, datasets, batch runner) and most CLI commands never
    # need it.
    from ..scenarios import NAMED_SCENARIOS, named_scenario

    if args.list:
        width = max(len(name) for name in NAMED_SCENARIOS)
        for name in sorted(NAMED_SCENARIOS):
            description = NAMED_SCENARIOS[name]["description"]
            print(f"{name:<{width}}  {description}")
        return 0
    if not args.name:
        raise SystemExit("scenario needs --name (or --list to see the presets)")

    scenario = named_scenario(args.name)
    executor = executor_spec(args.executor, args.workers)
    report = scenario.run(seed=args.seed, executor=executor, name=args.name)
    print(report.matrix_table())
    for key in ("final_macro_f1", "final_exact_parity", "per_level_macro_f1"):
        if key in report.summary:
            print(f"{key}: {report.summary[key]}")
    if args.report:
        path = report.write(args.report, include_timings=False)
        print(f"deterministic scenario report written to {path}")
    if args.timings:
        path = report.write(args.timings, include_timings=True)
        print(f"scenario report with timings written to {path}")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    if not args.cache_dir:
        print("no cache directory given (use --cache-dir or $REPRO_CACHE_DIR)")
        return 2
    cache = ArtifactCache(CacheConfig(directory=args.cache_dir))
    if args.clear:
        cache.clear()
        print(f"cleared artifact cache at {args.cache_dir}")
        return 0
    for key, value in cache.describe().items():
        print(f"{key}: {value}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the pipeline CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "resolve":
        return _command_resolve(args)
    if args.command == "fit":
        return _command_fit(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "update":
        return _command_update(args)
    if args.command == "retrieval-eval":
        return _command_retrieval_eval(args)
    if args.command == "sweep-k":
        return _command_sweep_k(args)
    if args.command == "scenario":
        return _command_scenario(args)
    return _command_cache(args)


if __name__ == "__main__":
    sys.exit(main())
