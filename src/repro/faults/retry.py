"""Retry policy shared by the executor, serve client, and chaos checks.

One small frozen dataclass describes "how hard to try again": attempt
budget, capped exponential backoff, and *deterministic* jitter — the
jitter for attempt N is a pure function of ``(seed, attempt)``, so a
retried run sleeps the same schedule every time and tests can pin it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``attempts`` counts *total* tries, so ``attempts=3`` means one
    initial try plus up to two retries; 1 disables retrying while still
    letting code share the "run under a policy" shape.  The delay before
    retry ``k`` (1-based) is ``base_delay * multiplier**(k-1)`` capped at
    ``max_delay``, scaled by a jitter factor in ``[1-jitter, 1]`` drawn
    from ``(seed, k)``.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.attempts < 1:
            raise ConfigurationError("retry attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("retry multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("retry jitter must be in [0, 1]")

    @property
    def retries(self) -> int:
        return self.attempts - 1

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter == 0.0:
            return raw
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode("ascii")).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return raw * (1.0 - self.jitter * unit)

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RetryPolicy":
        try:
            return cls(**dict(payload))
        except TypeError as error:
            raise ConfigurationError(f"malformed retry policy: {error}") from error


def as_retry_policy(value: "RetryPolicy | Mapping | None") -> RetryPolicy | None:
    """Normalize config input (policy, mapping, or None) to a policy."""
    if value is None or isinstance(value, RetryPolicy):
        return value
    if isinstance(value, Mapping):
        return RetryPolicy.from_dict(value)
    raise ConfigurationError(
        f"retry must be a RetryPolicy, mapping, or None, not {type(value).__name__}"
    )
