"""Deterministic fault injection and retry policies (``repro.faults``).

The robustness toolkit behind ``docs/robustness.md``:

* :class:`FaultPlan` / :class:`FaultSpec` — a seeded plan of named
  injection points (worker crashes, slow shards, raised exceptions,
  torn writes, dropped/stalled connections), activated as a context
  manager and inherited by subprocess workers via ``REPRO_FAULTS``.
* :func:`inject` — the hook production code calls at fault-prone
  points; a near-free no-op unless a plan is active.
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter, shared by the executors, the serve client, and
  ``FlexERConfig.retry``.
"""

from ..exceptions import FaultInjectionError
from .inject import active_plan, inject, reset
from .plan import ENV_VAR, FAULT_KINDS, FaultPlan, FaultSpec
from .retry import RetryPolicy, as_retry_policy

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active_plan",
    "as_retry_policy",
    "inject",
    "reset",
]
