"""The ``inject()`` hook threaded through fault-tolerant code paths.

Call :func:`inject` with a dotted point name wherever a fault could
strike in production — executor tasks, artifact writes, serve transport.
With no plan active it is a near-free no-op (one global read).  With a
plan active it consults :meth:`FaultPlan.should_fire` and either enacts
the fault in place (``exception`` raises :class:`FaultInjectionError`,
``crash`` SIGKILLs the current process, ``slow`` sleeps) or returns the
fired :class:`FaultSpec` for *cooperative* kinds (``torn_write``,
``drop``, ``stall``) whose enactment only the call site can perform.

Plans activate per process via :meth:`FaultPlan.__enter__` or are
inherited from the ``REPRO_FAULTS`` environment variable, which pool
workers read lazily on their first ``inject()`` call.
"""

from __future__ import annotations

import os
import signal
import time

from ..exceptions import FaultInjectionError
from .plan import ENV_VAR, FaultPlan, FaultSpec

# The active plan for this process. ``False`` means "not yet resolved":
# the first inject() checks REPRO_FAULTS so subprocess workers inherit
# the parent's plan without any executor-specific plumbing.
_ACTIVE: FaultPlan | None | bool = False


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` as this process's active fault plan."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate() -> None:
    """Remove the active fault plan (and stop consulting the env var)."""
    global _ACTIVE
    _ACTIVE = None


def _resolve() -> FaultPlan | None:
    global _ACTIVE
    if _ACTIVE is False:
        payload = os.environ.get(ENV_VAR)
        _ACTIVE = FaultPlan.from_json(payload) if payload else None
    return _ACTIVE


def reset() -> None:
    """Forget any resolved plan; the next ``inject()`` re-reads the env."""
    global _ACTIVE
    _ACTIVE = False


def active_plan() -> FaultPlan | None:
    """The plan this process would consult right now, if any."""
    return _resolve()


def inject(point: str) -> FaultSpec | None:
    """Fire any armed fault at ``point``; return cooperative specs.

    Returns ``None`` when nothing fires.  ``exception``/``crash``/
    ``slow`` faults act right here; the caller only needs to handle the
    cooperative kinds it supports (and may ignore the return value
    entirely at points that support none).
    """
    plan = _resolve()
    if plan is None:
        return None
    spec = plan.should_fire(point)
    if spec is None:
        return None
    if spec.kind == "exception":
        raise FaultInjectionError(f"injected fault at {point}")
    if spec.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.kind == "slow":
        time.sleep(spec.seconds)
        return None
    return spec
