"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming
an injection point (glob pattern over ``inject("point.name")`` hooks), a
fault kind, and trigger conditions.  Activating a plan installs it both
as a module global *and* in the ``REPRO_FAULTS`` environment variable so
subprocess pool workers — fork or spawn — inherit it and arm the same
hooks.

Determinism has two parts:

* Probabilistic triggers draw from a hash of ``(plan seed, spec index,
  hit index)``, so whether the N-th arrival at a point fires never
  depends on wall clock, process id, or interleaving.
* Counted triggers (``times``/``after``) count per process by default.
  When the plan carries a ``state_dir``, firing additionally claims an
  atomic marker file there, making ``times=1`` mean "once across every
  process sharing the plan" — the right semantics for "kill exactly one
  pool worker".
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

ENV_VAR = "REPRO_FAULTS"

FAULT_KINDS = ("exception", "crash", "slow", "torn_write", "drop", "stall")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it fires, what it does, and how often.

    ``point`` is an ``fnmatch`` pattern over injection-point names
    (``"exec.*"`` matches every executor hook).  ``kind`` is one of
    ``FAULT_KINDS``; ``exception``/``crash``/``slow`` act inside
    :func:`repro.faults.inject`, while ``torn_write``/``drop``/``stall``
    are *cooperative* — ``inject`` returns the spec and the call site
    enacts the fault (truncate the write, abort the transport, await a
    delay) because only it knows how.

    ``probability`` gates each arrival (1.0 = always); ``after`` skips
    the first N eligible arrivals; ``times`` caps total firings
    (``None`` = unlimited); ``seconds`` sizes ``slow``/``stall`` delays
    and is reused by ``torn_write`` as a 0..1 fraction of bytes to keep.
    """

    point: str
    kind: str = "exception"
    probability: float = 1.0
    times: int | None = 1
    after: int = 0
    seconds: float = 0.05

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ConfigurationError("fault times must be >= 1 (or None)")
        if self.after < 0:
            raise ConfigurationError("fault after must be >= 0")
        if self.seconds < 0:
            raise ConfigurationError("fault seconds must be >= 0")

    def matches(self, point: str) -> bool:
        return fnmatch.fnmatchcase(point, self.point)

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "probability": self.probability,
            "times": self.times,
            "after": self.after,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(f"malformed fault spec: {error}") from error


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries plus activation plumbing.

    Use as a context manager::

        plan = FaultPlan([FaultSpec("exec.task", kind="crash")], seed=7)
        with plan:
            repro.fit(...)

    Entering installs the plan for this process and exports it through
    ``REPRO_FAULTS`` so pool workers spawned inside the block arm the
    same faults; exiting restores both.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    state_dir: str | None = None

    def __post_init__(self):
        self.specs = [
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(dict(spec))
            for spec in self.specs
        ]
        # Per-process arrival/firing counters, keyed by spec index.
        self._hits: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self._saved_env: str | None = None

    # -- serialization ------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": self.state_dir,
                "specs": [spec.to_dict() for spec in self.specs],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"malformed {ENV_VAR} payload: {error}") from error
        return cls(
            specs=[FaultSpec.from_dict(spec) for spec in data.get("specs", ())],
            seed=int(data.get("seed", 0)),
            state_dir=data.get("state_dir"),
        )

    # -- trigger logic ------------------------------------------------

    def _draw(self, index: int, hit: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{hit}".encode("ascii")
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _claim_marker(self, index: int, slot: int) -> bool:
        """Atomically claim one cross-process firing slot for a spec."""
        if self.state_dir is None:
            return True
        os.makedirs(self.state_dir, exist_ok=True)
        marker = os.path.join(self.state_dir, f"fired-{index}-{slot}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def should_fire(self, point: str) -> FaultSpec | None:
        """Return the first spec firing at ``point`` this arrival, if any."""
        for index, spec in enumerate(self.specs):
            if not spec.matches(point):
                continue
            hit = self._hits.get(index, 0)
            self._hits[index] = hit + 1
            if hit < spec.after:
                continue
            if spec.probability < 1.0 and self._draw(index, hit) >= spec.probability:
                continue
            fired = self._fired.get(index, 0)
            if spec.times is not None:
                if fired >= spec.times:
                    continue
                if not self._claim_marker(index, fired):
                    # Another process used this slot; mirror its claim
                    # locally so we contend for the next slot, not this one.
                    self._fired[index] = fired + 1
                    continue
            self._fired[index] = fired + 1
            return spec
        return None

    # -- activation ---------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        from .inject import activate

        self._saved_env = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = self.to_json()
        activate(self)
        return self

    def __exit__(self, *exc_info) -> None:
        from .inject import deactivate

        if self._saved_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._saved_env
        self._saved_env = None
        deactivate()
