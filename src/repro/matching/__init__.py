"""Matching phase: pair feature encoding, matchers, and MIER baselines."""

from .features import PairFeatureConfig, PairFeatureEncoder
from .pair_matcher import PairMatcher, TrainingHistory
from .multilabel import MultiLabelMatcher
from .solvers import BaseSolver, NaiveSolver, InParallelSolver, MultiLabelSolver

__all__ = [
    "PairFeatureConfig",
    "PairFeatureEncoder",
    "PairMatcher",
    "TrainingHistory",
    "MultiLabelMatcher",
    "BaseSolver",
    "NaiveSolver",
    "InParallelSolver",
    "MultiLabelSolver",
]
