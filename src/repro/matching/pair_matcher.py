"""Per-intent binary pair matcher (the DITTO analogue).

The matcher casts single-intent entity resolution as binary
classification over two logits trained with cross-entropy (Eq. 1), which
is exactly the formulation DITTO fine-tunes.  Its last hidden layer is
exposed as the latent pair representation used to initialize the
multiplex intent graph (Section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from ..config import MatcherConfig
from ..exceptions import MatchingError, NotFittedError
from ..nn import MLP, Adam, Tensor, cross_entropy, l2_penalty


@dataclass
class TrainingHistory:
    """Per-epoch training metadata returned by the matchers."""

    losses: list[float]

    @property
    def final_loss(self) -> float:
        """Loss of the final epoch (``nan`` when no epoch ran)."""
        return self.losses[-1] if self.losses else float("nan")


class PairMatcher:
    """Binary matcher over encoded pair features.

    Parameters
    ----------
    config:
        Training hyper-parameters (see :class:`~repro.config.MatcherConfig`).
    """

    def __init__(self, config: MatcherConfig | None = None) -> None:
        self.config = config or MatcherConfig()
        self._model: MLP | None = None
        self.history: TrainingHistory | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._model is not None

    def _require_model(self) -> MLP:
        if self._model is None:
            raise NotFittedError("PairMatcher must be fitted before use")
        return self._model

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "PairMatcher":
        """Train the matcher on encoded features and binary labels.

        Parameters
        ----------
        features:
            Matrix of shape ``(n, d)``.
        labels:
            Binary vector of shape ``(n,)``.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if features.ndim != 2:
            raise MatchingError("features must be a 2-D matrix")
        if features.shape[0] != labels.shape[0]:
            raise MatchingError("features and labels must have the same number of rows")
        if features.shape[0] == 0:
            raise MatchingError("cannot fit a matcher on an empty training set")
        if not np.isin(labels, (0, 1)).all():
            raise MatchingError("labels must be binary")

        rng = np.random.default_rng(self.config.seed)
        model = MLP(
            in_features=features.shape[1],
            hidden_dims=self.config.hidden_dims,
            out_features=2,
            rng=rng,
        )
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        n = features.shape[0]
        batch_size = min(self.config.batch_size, n)
        losses: list[float] = []
        for _ in range(self.config.epochs):
            permutation = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch_index = permutation[start : start + batch_size]
                inputs = Tensor(features[batch_index])
                logits = model(inputs)
                loss = cross_entropy(logits, labels[batch_index])
                if self.config.weight_decay:
                    loss = loss + l2_penalty(
                        list(model.parameters()), self.config.weight_decay
                    )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self._model = model
        self.history = TrainingHistory(losses=losses)
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameter arrays of the fitted model (for artifact caching)."""
        return self._require_model().state_dict()

    def load_state_dict(
        self, state: Mapping[str, np.ndarray], in_features: int
    ) -> "PairMatcher":
        """Rebuild the fitted model from :meth:`state_dict` arrays.

        Restoring skips training entirely: the architecture is derived
        from the matcher configuration plus ``in_features`` and the
        parameters are loaded verbatim, so a restored matcher produces
        byte-identical predictions and representations.
        """
        model = MLP(
            in_features=in_features,
            hidden_dims=self.config.hidden_dims,
            out_features=2,
            rng=np.random.default_rng(self.config.seed),
        )
        model.load_state_dict(dict(state))
        model.eval()
        self._model = model
        self.history = None
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Likelihood scores (probability of the positive class) per pair."""
        model = self._require_model()
        model.eval()
        logits = model(Tensor(np.asarray(features, dtype=np.float64)))
        probabilities = logits.softmax(axis=1).numpy()
        return probabilities[:, 1]

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions obtained by thresholding the likelihoods."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def representations(self, features: np.ndarray) -> np.ndarray:
        """Latent pair representations (last hidden layer, the ``[CLS]`` analogue)."""
        model = self._require_model()
        model.eval()
        hidden = model.hidden_representation(
            Tensor(np.asarray(features, dtype=np.float64))
        )
        return hidden.numpy().copy()

    def outputs(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Latent representations and likelihoods from one shared forward pass.

        Identical values to calling :meth:`representations` and
        :meth:`predict_proba` separately — the likelihood head runs on
        the same hidden activations — at half the forward cost.
        """
        model = self._require_model()
        model.eval()
        hidden = model.hidden_representation(
            Tensor(np.asarray(features, dtype=np.float64))
        )
        logits = model.head(hidden)
        probabilities = logits.softmax(axis=1).numpy()[:, 1]
        return hidden.numpy().copy(), probabilities

    @property
    def representation_dim(self) -> int:
        """Dimension of the latent pair representation."""
        return self.config.representation_dim
