"""MIER solvers built from matchers: Naïve, In-parallel, and Multi-label.

These are the three baselines of the paper (Section 5.2.4):

* **Naïve** — one-size-fits-all: a single universal (equivalence) matcher
  whose resolution is reused for every intent.
* **In-parallel** (Section 3.2) — one independently trained binary
  matcher per intent; also the source of the independent intent-based
  representations FlexER builds on.
* **Multi-label** (Section 3.3) — a single jointly trained matcher with
  one sigmoid head per intent (Eq. 2 loss).

All solvers share the interface ``fit(train) / predict(test)`` over
labeled :class:`~repro.data.pairs.CandidateSet` objects and can expose
per-intent latent representations for graph construction.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..config import MatcherConfig
from ..data.pairs import CandidateSet
from ..exceptions import MatchingError, NotFittedError
from .features import PairFeatureConfig, PairFeatureEncoder
from .multilabel import MultiLabelMatcher
from .pair_matcher import PairMatcher


#: Separator between intent name and parameter name in solver state dicts.
STATE_KEY_SEPARATOR = "::"


def _group_solver_state(
    state: Mapping[str, np.ndarray],
) -> dict[str, dict[str, np.ndarray]]:
    """Split ``intent::parameter`` keys into per-intent state dicts."""
    grouped: dict[str, dict[str, np.ndarray]] = {}
    for key, array in state.items():
        intent, separator, name = key.partition(STATE_KEY_SEPARATOR)
        if not separator or not name:
            raise MatchingError(f"malformed solver state key: {key!r}")
        grouped.setdefault(intent, {})[name] = array
    return grouped


def _fit_matcher_worker(payload):
    """Train one per-intent matcher from shipped arrays (executor task).

    Returns the fitted matcher's ``state_dict`` — the same serialization
    round-trip the pipeline's artifact cache uses — plus its
    :class:`~repro.matching.pair_matcher.TrainingHistory`, so the parent
    process restores a matcher indistinguishable from one trained in
    place (parameters *and* per-epoch losses).
    """
    matcher_config, features, labels = payload
    matcher = PairMatcher(matcher_config)
    matcher.fit(features, labels)
    return matcher.state_dict(), matcher.history


class BaseSolver:
    """Shared feature-encoding logic of the MIER solvers.

    Every concrete solver is registered in
    :data:`repro.registry.SOLVERS` under :attr:`spec_type` and
    serializes its solver-specific parameters via :meth:`to_spec`.
    Creation-time context (intents, matcher and feature configs) is
    deliberately not part of the spec — the registry passes it through
    ``create(spec, intents=..., matcher_config=..., feature_config=...)``.
    """

    #: Registry key of the concrete solver (set by subclasses).
    spec_type: str = ""

    def __init__(
        self,
        intents: tuple[str, ...],
        matcher_config: MatcherConfig | None = None,
        feature_config: PairFeatureConfig | None = None,
    ) -> None:
        if not intents:
            raise MatchingError("at least one intent is required")
        self.intents = tuple(intents)
        self.matcher_config = matcher_config or MatcherConfig()
        self.encoder = PairFeatureEncoder(feature_config)
        self._fitted = False
        #: Optional :class:`repro.exec.Executor` for per-intent training
        #: fan-out.  Runtime wiring (attached by the pipeline runner),
        #: not part of the spec: executors never change results.
        self.executor = None

    def to_spec(self) -> dict[str, object]:
        """Serialize the solver-specific parameters into a registry spec."""
        return {"type": self.spec_type, "params": {}}

    @classmethod
    def from_spec(
        cls,
        params: Mapping[str, object],
        *,
        intents,
        matcher_config: MatcherConfig | None = None,
        feature_config: PairFeatureConfig | None = None,
    ) -> "BaseSolver":
        """Construct the solver from spec parameters plus creation context."""
        return cls(
            tuple(intents),
            matcher_config=matcher_config,
            feature_config=feature_config,
            **params,
        )

    def encode(self, candidates: CandidateSet) -> np.ndarray:
        """Encode every candidate pair into the feature matrix."""
        return self.encoder.encode(candidates.dataset, candidates.pairs)

    def _check_intents(self, candidates: CandidateSet) -> None:
        missing = set(self.intents) - set(candidates.intents)
        if missing:
            raise MatchingError(f"candidate set is missing intents: {sorted(missing)}")

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predicting")

    @property
    def name(self) -> str:
        """Human-readable solver name used in reports."""
        return type(self).__name__


class NaiveSolver(BaseSolver):
    """One-size-fits-all baseline: the universal resolution serves every intent."""

    spec_type = "naive"

    def __init__(
        self,
        intents: tuple[str, ...],
        equivalence_intent: str | None = None,
        matcher_config: MatcherConfig | None = None,
        feature_config: PairFeatureConfig | None = None,
    ) -> None:
        super().__init__(intents, matcher_config, feature_config)
        self.equivalence_intent = equivalence_intent or self.intents[0]
        if self.equivalence_intent not in self.intents:
            raise MatchingError(
                f"equivalence intent {self.equivalence_intent!r} is not in {self.intents}"
            )
        self.matcher = PairMatcher(self.matcher_config)

    def to_spec(self) -> dict[str, object]:
        """Spec carrying the universal intent the matcher trains on."""
        return {
            "type": self.spec_type,
            "params": {"equivalence_intent": self.equivalence_intent},
        }

    def fit(self, train: CandidateSet) -> "NaiveSolver":
        """Train the single universal matcher on the equivalence intent."""
        self._check_intents(train)
        features = self.encode(train)
        self.matcher.fit(features, train.labels(self.equivalence_intent))
        self._fitted = True
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameters of the single universal matcher (for artifact caching)."""
        self._require_fitted()
        return dict(self.matcher.state_dict())

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> "NaiveSolver":
        """Restore the universal matcher from :meth:`state_dict` arrays."""
        self.matcher.load_state_dict(dict(state), self.encoder.dimension)
        self._fitted = True
        return self

    def predict(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Reuse the universal prediction for every intent."""
        self._require_fitted()
        features = self.encode(candidates)
        universal = self.matcher.predict(features)
        return {intent: universal.copy() for intent in self.intents}

    def predict_proba(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Reuse the universal likelihoods for every intent."""
        self._require_fitted()
        features = self.encode(candidates)
        universal = self.matcher.predict_proba(features)
        return {intent: universal.copy() for intent in self.intents}

    def representations(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """The universal latent representation, reused for every intent.

        Lets the one-size-fits-all baseline serve as a FlexER
        representation source (every graph layer starts from the same
        universal matcher's latent space).
        """
        self._require_fitted()
        features = self.encode(candidates)
        universal = self.matcher.representations(features)
        return {intent: universal.copy() for intent in self.intents}

    def intent_outputs(
        self, candidates: CandidateSet
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Representations and likelihoods from one encode + forward pass."""
        self._require_fitted()
        features = self.encode(candidates)
        universal_repr, universal_proba = self.matcher.outputs(features)
        return (
            {intent: universal_repr.copy() for intent in self.intents},
            {intent: universal_proba.copy() for intent in self.intents},
        )


class InParallelSolver(BaseSolver):
    """One independently trained binary matcher per intent (Section 3.2)."""

    spec_type = "in_parallel"

    def __init__(
        self,
        intents: tuple[str, ...],
        matcher_config: MatcherConfig | None = None,
        feature_config: PairFeatureConfig | None = None,
    ) -> None:
        super().__init__(intents, matcher_config, feature_config)
        self.matchers: dict[str, PairMatcher] = {}

    def _intent_config(self, index: int) -> MatcherConfig:
        """Per-intent matcher configuration.

        The seed varies per intent so the independently trained matchers
        land in different latent spaces, as in the paper.
        """
        return MatcherConfig(
            hidden_dims=self.matcher_config.hidden_dims,
            n_features=self.matcher_config.n_features,
            epochs=self.matcher_config.epochs,
            batch_size=self.matcher_config.batch_size,
            learning_rate=self.matcher_config.learning_rate,
            weight_decay=self.matcher_config.weight_decay,
            l2_similarity_features=self.matcher_config.l2_similarity_features,
            seed=self.matcher_config.seed + index,
        )

    def fit(self, train: CandidateSet) -> "InParallelSolver":
        """Train one matcher per intent on the same candidate pairs.

        The per-intent trainings are independent (each is seeded by its
        own :meth:`_intent_config`), so with a parallel executor
        attached they fan out one task per intent; workers return
        matcher ``state_dict`` arrays that restore bit-identically.
        """
        self._check_intents(train)
        features = self.encode(train)
        self.matchers = {}
        if (
            self.executor is not None
            and getattr(self.executor, "is_parallel", False)
            and len(self.intents) > 1
        ):
            payloads = [
                (self._intent_config(index), features, train.labels(intent))
                for index, intent in enumerate(self.intents)
            ]
            outcomes = self.executor.map(_fit_matcher_worker, payloads)
            for index, (intent, (state, history)) in enumerate(zip(self.intents, outcomes)):
                matcher = PairMatcher(self._intent_config(index))
                matcher.load_state_dict(state, self.encoder.dimension)
                matcher.history = history
                self.matchers[intent] = matcher
        else:
            for index, intent in enumerate(self.intents):
                matcher = PairMatcher(self._intent_config(index))
                matcher.fit(features, train.labels(intent))
                self.matchers[intent] = matcher
        self._fitted = True
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        """All per-intent matcher parameters, keyed ``intent::parameter``."""
        self._require_fitted()
        state: dict[str, np.ndarray] = {}
        for intent, matcher in self.matchers.items():
            for name, array in matcher.state_dict().items():
                state[f"{intent}{STATE_KEY_SEPARATOR}{name}"] = array
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> "InParallelSolver":
        """Restore every per-intent matcher from :meth:`state_dict` arrays."""
        grouped = _group_solver_state(state)
        missing = set(self.intents) - set(grouped)
        if missing:
            raise MatchingError(f"solver state is missing intents: {sorted(missing)}")
        self.matchers = {}
        for index, intent in enumerate(self.intents):
            matcher = PairMatcher(self._intent_config(index))
            matcher.load_state_dict(grouped[intent], self.encoder.dimension)
            self.matchers[intent] = matcher
        self._fitted = True
        return self

    def predict(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Independent per-intent binary predictions."""
        self._require_fitted()
        features = self.encode(candidates)
        return {
            intent: matcher.predict(features) for intent, matcher in self.matchers.items()
        }

    def predict_proba(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Independent per-intent likelihood scores."""
        self._require_fitted()
        features = self.encode(candidates)
        return {
            intent: matcher.predict_proba(features)
            for intent, matcher in self.matchers.items()
        }

    def representations(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Per-intent latent pair representations (graph node initializations)."""
        self._require_fitted()
        features = self.encode(candidates)
        return {
            intent: matcher.representations(features)
            for intent, matcher in self.matchers.items()
        }

    def intent_outputs(
        self, candidates: CandidateSet
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Representations and likelihoods from one encode + forward per intent."""
        self._require_fitted()
        features = self.encode(candidates)
        representations: dict[str, np.ndarray] = {}
        probabilities: dict[str, np.ndarray] = {}
        for intent, matcher in self.matchers.items():
            representations[intent], probabilities[intent] = matcher.outputs(features)
        return representations, probabilities


class MultiLabelSolver(BaseSolver):
    """Jointly trained multi-label matcher (Section 3.3)."""

    spec_type = "multi_label"

    def __init__(
        self,
        intents: tuple[str, ...],
        matcher_config: MatcherConfig | None = None,
        feature_config: PairFeatureConfig | None = None,
        intent_weights: np.ndarray | None = None,
    ) -> None:
        super().__init__(intents, matcher_config, feature_config)
        self.matcher = MultiLabelMatcher(self.intents, self.matcher_config, intent_weights)

    def fit(self, train: CandidateSet) -> "MultiLabelSolver":
        """Train the joint matcher on the multi-label dataset."""
        self._check_intents(train)
        features = self.encode(train)
        self.matcher.fit(features, train.label_matrix(self.intents))
        self._fitted = True
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameters of the joint network (for artifact caching)."""
        self._require_fitted()
        return self.matcher.state_dict()

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> "MultiLabelSolver":
        """Restore the joint network from :meth:`state_dict` arrays."""
        self.matcher.load_state_dict(state, self.encoder.dimension)
        self._fitted = True
        return self

    def predict(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Per-intent binary predictions from the joint matcher."""
        self._require_fitted()
        features = self.encode(candidates)
        matrix = self.matcher.predict(features)
        return {intent: matrix[:, index] for index, intent in enumerate(self.intents)}

    def predict_proba(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Per-intent likelihoods from the joint matcher."""
        self._require_fitted()
        features = self.encode(candidates)
        matrix = self.matcher.predict_proba(features)
        return {intent: matrix[:, index] for index, intent in enumerate(self.intents)}

    def representations(self, candidates: CandidateSet) -> dict[str, np.ndarray]:
        """Per-intent latent representations from the multi-task network."""
        self._require_fitted()
        features = self.encode(candidates)
        return {
            intent: self.matcher.representations(features, intent)
            for intent in self.intents
        }
