"""Multi-label matcher (Section 3.3).

A single network with a shared trunk and one projection + sigmoid head
per intent, trained with the weighted multi-label binary cross-entropy of
Eq. 2.  Per-intent latent representations are taken from the layer prior
to each intent's output (Section 5.2.2), so the multi-task variant of
FlexER can also be built on top of this matcher.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..config import MatcherConfig
from ..exceptions import MatchingError, NotFittedError
from ..nn import (
    MLP,
    Adam,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tensor,
    l2_penalty,
    multilabel_weighted_bce,
)
from .pair_matcher import TrainingHistory


class _MultiHeadNetwork(Module):
    """Shared trunk with a per-intent projection and scoring head."""

    def __init__(
        self,
        in_features: int,
        hidden_dims: tuple[int, ...],
        num_intents: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.trunk = MLP(
            in_features=in_features,
            hidden_dims=hidden_dims[:-1] or hidden_dims,
            out_features=hidden_dims[-1],
            rng=rng,
        )
        self.num_intents = num_intents
        self.head_dim = hidden_dims[-1]
        self._heads: list[Sequential] = []
        for index in range(num_intents):
            head = Sequential(
                Linear(self.head_dim, self.head_dim, rng=rng, init="he"),
                ReLU(),
            )
            scorer = Linear(self.head_dim, 1, rng=rng)
            setattr(self, f"head{index}", head)
            setattr(self, f"scorer{index}", scorer)
            self._heads.append(head)

    def shared(self, inputs: Tensor) -> Tensor:
        """Shared trunk representation."""
        return self.trunk(inputs).relu()

    def intent_representation(self, inputs: Tensor, intent_index: int) -> Tensor:
        """Per-intent latent representation (layer prior to the intent output)."""
        return self._heads[intent_index](self.shared(inputs))

    def forward(self, inputs: Tensor) -> Tensor:
        """Raw scores of shape ``(n, P)`` (one logit per intent)."""
        shared = self.shared(inputs)
        scores = []
        for index in range(self.num_intents):
            head_output = self._heads[index](shared)
            scorer: Linear = getattr(self, f"scorer{index}")
            scores.append(scorer(head_output))
        return Tensor.concat(scores, axis=1)


class MultiLabelMatcher:
    """Joint matcher for all intents (the Multi-label baseline).

    Parameters
    ----------
    intents:
        Ordered intent names; defines the column order of labels,
        predictions, and representations.
    config:
        Training hyper-parameters shared with :class:`PairMatcher`.
    intent_weights:
        Optional per-intent loss weights ``w_p`` of Eq. 2 (defaults to
        equal weights, as in the paper).
    """

    def __init__(
        self,
        intents: tuple[str, ...],
        config: MatcherConfig | None = None,
        intent_weights: np.ndarray | None = None,
    ) -> None:
        if not intents:
            raise MatchingError("at least one intent is required")
        self.intents = tuple(intents)
        self.config = config or MatcherConfig()
        if intent_weights is not None and len(intent_weights) != len(intents):
            raise MatchingError("intent_weights must have one entry per intent")
        self.intent_weights = (
            np.asarray(intent_weights, dtype=np.float64) if intent_weights is not None else None
        )
        self._model: _MultiHeadNetwork | None = None
        self.history: TrainingHistory | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._model is not None

    def _require_model(self) -> _MultiHeadNetwork:
        if self._model is None:
            raise NotFittedError("MultiLabelMatcher must be fitted before use")
        return self._model

    def _intent_index(self, intent: str) -> int:
        try:
            return self.intents.index(intent)
        except ValueError:
            raise MatchingError(f"unknown intent: {intent!r}") from None

    def fit(self, features: np.ndarray, label_matrix: np.ndarray) -> "MultiLabelMatcher":
        """Train on encoded features and the ``(n, P)`` binary label matrix."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(label_matrix, dtype=np.float64)
        if features.ndim != 2 or labels.ndim != 2:
            raise MatchingError("features and label_matrix must be 2-D")
        if features.shape[0] != labels.shape[0]:
            raise MatchingError("features and labels must have the same number of rows")
        if labels.shape[1] != len(self.intents):
            raise MatchingError(
                f"label_matrix has {labels.shape[1]} columns, expected {len(self.intents)}"
            )
        if features.shape[0] == 0:
            raise MatchingError("cannot fit a matcher on an empty training set")

        rng = np.random.default_rng(self.config.seed)
        model = _MultiHeadNetwork(
            in_features=features.shape[1],
            hidden_dims=self.config.hidden_dims,
            num_intents=len(self.intents),
            rng=rng,
        )
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        n = features.shape[0]
        batch_size = min(self.config.batch_size, n)
        losses: list[float] = []
        for _ in range(self.config.epochs):
            permutation = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch_index = permutation[start : start + batch_size]
                logits = model(Tensor(features[batch_index]))
                loss = multilabel_weighted_bce(
                    logits, labels[batch_index], self.intent_weights
                )
                if self.config.weight_decay:
                    loss = loss + l2_penalty(
                        list(model.parameters()), self.config.weight_decay
                    )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self._model = model
        self.history = TrainingHistory(losses=losses)
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameter arrays of the fitted network (for artifact caching)."""
        return self._require_model().state_dict()

    def load_state_dict(
        self, state: Mapping[str, np.ndarray], in_features: int
    ) -> "MultiLabelMatcher":
        """Rebuild the fitted network from :meth:`state_dict` arrays."""
        model = _MultiHeadNetwork(
            in_features=in_features,
            hidden_dims=self.config.hidden_dims,
            num_intents=len(self.intents),
            rng=np.random.default_rng(self.config.seed),
        )
        model.load_state_dict(dict(state))
        model.eval()
        self._model = model
        self.history = None
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-intent likelihood matrix of shape ``(n, P)``."""
        model = self._require_model()
        model.eval()
        logits = model(Tensor(np.asarray(features, dtype=np.float64)))
        return logits.sigmoid().numpy().copy()

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Per-intent binary prediction matrix of shape ``(n, P)``."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def predict_intent(
        self, features: np.ndarray, intent: str, threshold: float = 0.5
    ) -> np.ndarray:
        """Binary predictions for a single intent."""
        return self.predict(features, threshold)[:, self._intent_index(intent)]

    def representations(self, features: np.ndarray, intent: str) -> np.ndarray:
        """Per-intent latent representations (layer prior to the intent output)."""
        model = self._require_model()
        model.eval()
        hidden = model.intent_representation(
            Tensor(np.asarray(features, dtype=np.float64)), self._intent_index(intent)
        )
        return hidden.numpy().copy()

    @property
    def representation_dim(self) -> int:
        """Dimension of each per-intent latent representation."""
        return self.config.representation_dim
