"""Pair feature encoding.

DITTO feeds a serialized pair through a pre-trained transformer; the
offline substitute encodes the same serialized text with a hashing
vectorizer and augments it with per-record interaction features
(element-wise absolute difference and product of the two record vectors)
plus classic string-similarity scores.  The encoding is deterministic, so
independently trained per-intent matchers see the same raw features but
learn their own projections — the analogue of separate fine-tuning runs.

Two equivalent implementations coexist:

* :meth:`PairFeatureEncoder.encode_pair` / :meth:`~PairFeatureEncoder.encode_loop`
  — the scalar reference path, one pair at a time, calling the scalar
  :data:`~repro.text.similarity.SIMILARITY_FUNCTIONS` directly; and
* :meth:`PairFeatureEncoder.encode_batch` — the vectorized hot path,
  which memoizes per-record text/tokenization once per batch
  (:class:`~repro.text.memo.TextMemo`), hashes all texts through the
  vectorizer's CSR-style batch transform, and evaluates the similarity
  features with batched numpy kernels where exact ones exist.

The batched path is bit-identical to the reference on every feature (all
divergent-risk reductions are exact integer sums in float64), which the
equivalence tests assert on randomized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..data.serialization import (
    SerializationConfig,
    serialize_pair,
    serialize_pair_from_texts,
    serialize_record,
)
from ..perf.instrument import profiled
from ..text.memo import TextMemo
from ..text.similarity import (
    SIMILARITY_FUNCTIONS,
    jaccard_similarity,
    jaro_winkler_similarity_fast,
    levenshtein_similarities_batch,
)
from ..text.vectorizers import HashingVectorizer, HashingVectorizerConfig

#: Module-level default for the encoder implementation; flipped by
#: :func:`repro.perf.compat.use_reference_implementations` to time the
#: pre-vectorization loop path.
VECTORIZED = True


@dataclass(frozen=True)
class PairFeatureConfig:
    """Configuration of :class:`PairFeatureEncoder`.

    Attributes
    ----------
    n_features:
        Buckets of the hashing vectorizer; each of the three hashed
        blocks (pair text, |left - right|, left * right) has this size.
    use_interaction_features:
        Include the element-wise difference/product blocks.
    use_similarity_features:
        Append the classic string-similarity scores.
    attributes:
        Record attributes serialized for matching; ``None`` uses all.
    """

    n_features: int = 256
    use_interaction_features: bool = True
    use_similarity_features: bool = True
    attributes: tuple[str, ...] | None = None

    @property
    def dimension(self) -> int:
        """Total dimensionality of the encoded pair feature vector."""
        dim = self.n_features
        if self.use_interaction_features:
            dim += 2 * self.n_features
        if self.use_similarity_features:
            dim += len(SIMILARITY_FUNCTIONS)
        return dim


class PairFeatureEncoder:
    """Encode candidate record pairs into dense feature vectors.

    Parameters
    ----------
    config:
        Feature layout configuration.
    vectorized:
        Per-instance override of the implementation choice; ``None``
        (default) follows the module-level :data:`VECTORIZED` flag.
    """

    #: Entry caps of the persistent caches; each cache is cleared when it
    #: would exceed its bound, so a long-lived encoder on a stream of
    #: unique texts cannot grow without limit.
    JW_CACHE_MAX_ENTRIES = 1 << 16
    SIM_CACHE_MAX_ENTRIES = 1 << 20

    def __init__(
        self,
        config: PairFeatureConfig | None = None,
        vectorized: bool | None = None,
    ) -> None:
        self.config = config or PairFeatureConfig()
        self.vectorized = vectorized
        vector_config = HashingVectorizerConfig(n_features=self.config.n_features)
        self._vectorizer = HashingVectorizer(vector_config)
        self._serialization = SerializationConfig(attributes=self.config.attributes)
        # Single-slot result cache: solvers encode the same candidate set
        # back to back (representations + likelihoods), so the last batch
        # is kept keyed by the dataset (strong reference, so its identity
        # stays valid) plus the pair id tuples.  Callers never mutate the
        # returned matrix (they wrap it in fresh Tensors), and records
        # are frozen, so cached rows cannot go stale.
        self._last_batch: tuple[Dataset, tuple, np.ndarray] | None = None
        # Per-dataset text memo reused across batches (records are frozen,
        # so memoized views cannot go stale), a persistent Jaro-Winkler
        # token-pair cache shared by all Monge-Elkan calls, and a
        # similarity-feature row cache keyed by pair ids (similarity
        # columns depend only on the two record texts).
        self._memo: TextMemo | None = None
        self._jw_cache: dict[tuple[str, str], float] = {}
        self._sim_cache: dict[tuple[str, str], np.ndarray] = {}
        #: Optional :class:`repro.exec.Executor` batch encodes shard
        #: over.  Runtime wiring (attached by the pipeline runner), not
        #: part of the feature configuration: sharded encoding is
        #: bit-identical to the single-batch path.
        self.executor = None

    @property
    def dimension(self) -> int:
        """Dimensionality of the produced feature vectors."""
        return self.config.dimension

    def encode_pair(self, dataset: Dataset, pair: RecordPair) -> np.ndarray:
        """Encode a single candidate pair (scalar reference path)."""
        left = dataset[pair.left_id]
        right = dataset[pair.right_id]
        left_text = left.text(self.config.attributes)
        right_text = right.text(self.config.attributes)

        blocks = [self._vectorizer.transform_one(serialize_pair(left, right, self._serialization))]
        if self.config.use_interaction_features:
            left_vector = self._vectorizer.transform_one(left_text)
            right_vector = self._vectorizer.transform_one(right_text)
            blocks.append(np.abs(left_vector - right_vector))
            blocks.append(left_vector * right_vector)
        if self.config.use_similarity_features:
            similarities = np.array(
                [fn(left_text, right_text) for fn in SIMILARITY_FUNCTIONS.values()],
                dtype=np.float64,
            )
            blocks.append(similarities)
        return np.concatenate(blocks)

    @profiled("pair-feature-encode", items_from=lambda self, dataset, pairs: len(pairs))
    def encode(self, dataset: Dataset, pairs: list[RecordPair]) -> np.ndarray:
        """Encode a list of candidate pairs into a ``(n, dimension)`` matrix."""
        if not pairs:
            return np.zeros((0, self.dimension), dtype=np.float64)
        use_vectorized = VECTORIZED if self.vectorized is None else self.vectorized
        if not use_vectorized:
            return self.encode_loop(dataset, pairs)
        pair_key = tuple(pair.as_tuple() for pair in pairs)
        if (
            self._last_batch is not None
            and self._last_batch[0] is dataset
            and self._last_batch[1] == pair_key
        ):
            return self._last_batch[2]
        if (
            self.executor is not None
            and getattr(self.executor, "is_parallel", False)
            and len(pairs) > 1
        ):
            # Each shard encodes on a fresh worker-side encoder; rows are
            # pair-independent, so stacking shard outputs is bit-identical
            # to one unsharded encode_batch call.
            from ..exec.stages import encode_pairs_sharded

            matrix = encode_pairs_sharded(self.config, dataset, pairs, self.executor)
        else:
            matrix = self.encode_batch(dataset, pairs)
        self._last_batch = (dataset, pair_key, matrix)
        return matrix

    def encode_loop(self, dataset: Dataset, pairs: list[RecordPair]) -> np.ndarray:
        """Reference implementation: one :meth:`encode_pair` per pair."""
        if not pairs:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.stack([self.encode_pair(dataset, pair) for pair in pairs], axis=0)

    # -------------------------------------------------------------- batched

    def encode_batch(self, dataset: Dataset, pairs: list[RecordPair]) -> np.ndarray:
        """Vectorized batch encoding, bit-identical to :meth:`encode_loop`."""
        if not pairs:
            return np.zeros((0, self.dimension), dtype=np.float64)
        if self._memo is None or self._memo.dataset is not dataset:
            self._memo = TextMemo(dataset, self.config.attributes)
            self._serialized_cache: dict[str, str] = {}
            self._sim_cache.clear()
        memo = self._memo

        # Every distinct record is serialized and tokenized exactly once
        # per dataset, however many pairs (or batches) it appears in.
        record_ids = list(dict.fromkeys(rid for pair in pairs for rid in pair.as_tuple()))
        record_row = {rid: row for row, rid in enumerate(record_ids)}
        serialized = self._serialized_cache
        for rid in record_ids:
            if rid not in serialized:
                serialized[rid] = serialize_record(
                    dataset[rid], self._serialization.attributes, self._serialization.lowercase
                )
        pair_texts = [
            serialize_pair_from_texts(
                serialized[pair.left_id], serialized[pair.right_id], self._serialization
            )
            for pair in pairs
        ]

        blocks = [self._vectorizer.transform(pair_texts)]
        if self.config.use_interaction_features:
            record_matrix = self._vectorizer.transform(
                [memo.text(rid) for rid in record_ids]
            )
            left_rows = np.fromiter(
                (record_row[pair.left_id] for pair in pairs), dtype=np.int64, count=len(pairs)
            )
            right_rows = np.fromiter(
                (record_row[pair.right_id] for pair in pairs), dtype=np.int64, count=len(pairs)
            )
            left_matrix = record_matrix[left_rows]
            right_matrix = record_matrix[right_rows]
            blocks.append(np.abs(left_matrix - right_matrix))
            blocks.append(left_matrix * right_matrix)
        if self.config.use_similarity_features:
            blocks.append(self._similarity_block(memo, pairs))
        return np.concatenate(blocks, axis=1)

    def _similarity_block(self, memo: TextMemo, pairs: list[RecordPair]) -> np.ndarray:
        """All similarity features for all pairs (rows cached per pair)."""
        cache = self._sim_cache
        missing = [pair for pair in pairs if pair.as_tuple() not in cache]
        if missing:
            if len(cache) + len(missing) > self.SIM_CACHE_MAX_ENTRIES:
                # Evicting invalidates rows needed by this very call, so
                # the whole batch is recomputed into the emptied cache.
                cache.clear()
                missing = list(pairs)
            if len(self._jw_cache) > self.JW_CACHE_MAX_ENTRIES:
                self._jw_cache.clear()
            rows = self._similarity_rows(memo, missing)
            for position, pair in enumerate(missing):
                cache[pair.as_tuple()] = rows[position]
        return np.stack([cache[pair.as_tuple()] for pair in pairs], axis=0)

    def _similarity_rows(self, memo: TextMemo, pairs: list[RecordPair]) -> np.ndarray:
        """Similarity features of uncached pairs, one column per measure."""
        n = len(pairs)
        left_texts = [memo.text(pair.left_id) for pair in pairs]
        right_texts = [memo.text(pair.right_id) for pair in pairs]
        jw_cache = self._jw_cache
        columns: list[np.ndarray] = []
        for name, fn in SIMILARITY_FUNCTIONS.items():
            if name == "levenshtein":
                column = levenshtein_similarities_batch(left_texts, right_texts)
            elif name == "token_jaccard":
                column = np.fromiter(
                    (
                        jaccard_similarity(
                            memo.token_set(pair.left_id), memo.token_set(pair.right_id)
                        )
                        for pair in pairs
                    ),
                    dtype=np.float64,
                    count=n,
                )
            elif name == "qgram_jaccard":
                column = np.fromiter(
                    (
                        jaccard_similarity(
                            memo.ngram_set(pair.left_id, 3), memo.ngram_set(pair.right_id, 3)
                        )
                        for pair in pairs
                    ),
                    dtype=np.float64,
                    count=n,
                )
            elif name == "cosine_tokens":
                column = np.fromiter(
                    (self._cosine_tokens(memo, pair) for pair in pairs),
                    dtype=np.float64,
                    count=n,
                )
            elif name == "monge_elkan":
                column = np.fromiter(
                    (self._monge_elkan(memo, pair, jw_cache) for pair in pairs),
                    dtype=np.float64,
                    count=n,
                )
            elif name == "jaro_winkler":
                column = np.fromiter(
                    (
                        jaro_winkler_similarity_fast(left, right)
                        for left, right in zip(left_texts, right_texts)
                    ),
                    dtype=np.float64,
                    count=n,
                )
            else:
                # Any future measure without a batched kernel falls back
                # to the scalar oracle per pair.
                column = np.fromiter(
                    (fn(left, right) for left, right in zip(left_texts, right_texts)),
                    dtype=np.float64,
                    count=n,
                )
            columns.append(column)
        return np.stack(columns, axis=1)

    @staticmethod
    def _cosine_tokens(memo: TextMemo, pair: RecordPair) -> float:
        """Memoized :func:`~repro.text.similarity.cosine_token_similarity`.

        The dot product is an exact integer sum, so iterating the smaller
        count mapping yields the identical float64 value.
        """
        left_counts = memo.token_counts(pair.left_id)
        right_counts = memo.token_counts(pair.right_id)
        if not left_counts and not right_counts:
            return 1.0
        if not left_counts or not right_counts:
            return 0.0
        if len(right_counts) < len(left_counts):
            left_counts, right_counts = right_counts, left_counts
        dot = sum(
            count * right_counts.get(token, 0) for token, count in left_counts.items()
        )
        left_norm = memo.token_norm(pair.left_id)
        right_norm = memo.token_norm(pair.right_id)
        if left_norm == 0 or right_norm == 0:
            return 0.0
        return dot / (left_norm * right_norm)

    @staticmethod
    def _monge_elkan(
        memo: TextMemo, pair: RecordPair, cache: dict[tuple[str, str], float]
    ) -> float:
        """Monge-Elkan with Jaro-Winkler memoized per distinct token pair.

        Jaro-Winkler is bounded by 1.0 and attains it exactly for equal
        strings, so a left token present among the right tokens scores
        ``best = 1.0`` without evaluating the inner maximum.
        """
        left_tokens = memo.tokens(pair.left_id)
        right_tokens = memo.tokens(pair.right_id)
        if not left_tokens or not right_tokens:
            return 1.0 if not left_tokens and not right_tokens else 0.0
        right_token_set = memo.token_set(pair.right_id)
        total = 0.0
        for left_token in left_tokens:
            if left_token in right_token_set:
                total += 1.0
                continue
            best = 0.0
            first = True
            for right_token in right_tokens:
                key = (left_token, right_token)
                value = cache.get(key)
                if value is None:
                    value = jaro_winkler_similarity_fast(left_token, right_token)
                    cache[key] = value
                if first or value > best:
                    best = value
                    first = False
            total += best
        return total / len(left_tokens)
