"""Pair feature encoding.

DITTO feeds a serialized pair through a pre-trained transformer; the
offline substitute encodes the same serialized text with a hashing
vectorizer and augments it with per-record interaction features
(element-wise absolute difference and product of the two record vectors)
plus classic string-similarity scores.  The encoding is deterministic, so
independently trained per-intent matchers see the same raw features but
learn their own projections — the analogue of separate fine-tuning runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..data.serialization import SerializationConfig, serialize_pair
from ..text.similarity import SIMILARITY_FUNCTIONS
from ..text.vectorizers import HashingVectorizer, HashingVectorizerConfig


@dataclass(frozen=True)
class PairFeatureConfig:
    """Configuration of :class:`PairFeatureEncoder`.

    Attributes
    ----------
    n_features:
        Buckets of the hashing vectorizer; each of the three hashed
        blocks (pair text, |left - right|, left * right) has this size.
    use_interaction_features:
        Include the element-wise difference/product blocks.
    use_similarity_features:
        Append the classic string-similarity scores.
    attributes:
        Record attributes serialized for matching; ``None`` uses all.
    """

    n_features: int = 256
    use_interaction_features: bool = True
    use_similarity_features: bool = True
    attributes: tuple[str, ...] | None = None

    @property
    def dimension(self) -> int:
        """Total dimensionality of the encoded pair feature vector."""
        dim = self.n_features
        if self.use_interaction_features:
            dim += 2 * self.n_features
        if self.use_similarity_features:
            dim += len(SIMILARITY_FUNCTIONS)
        return dim


class PairFeatureEncoder:
    """Encode candidate record pairs into dense feature vectors."""

    def __init__(self, config: PairFeatureConfig | None = None) -> None:
        self.config = config or PairFeatureConfig()
        vector_config = HashingVectorizerConfig(n_features=self.config.n_features)
        self._vectorizer = HashingVectorizer(vector_config)
        self._serialization = SerializationConfig(attributes=self.config.attributes)

    @property
    def dimension(self) -> int:
        """Dimensionality of the produced feature vectors."""
        return self.config.dimension

    def encode_pair(self, dataset: Dataset, pair: RecordPair) -> np.ndarray:
        """Encode a single candidate pair."""
        left = dataset[pair.left_id]
        right = dataset[pair.right_id]
        left_text = left.text(self.config.attributes)
        right_text = right.text(self.config.attributes)

        blocks = [self._vectorizer.transform_one(serialize_pair(left, right, self._serialization))]
        if self.config.use_interaction_features:
            left_vector = self._vectorizer.transform_one(left_text)
            right_vector = self._vectorizer.transform_one(right_text)
            blocks.append(np.abs(left_vector - right_vector))
            blocks.append(left_vector * right_vector)
        if self.config.use_similarity_features:
            similarities = np.array(
                [fn(left_text, right_text) for fn in SIMILARITY_FUNCTIONS.values()],
                dtype=np.float64,
            )
            blocks.append(similarities)
        return np.concatenate(blocks)

    def encode(self, dataset: Dataset, pairs: list[RecordPair]) -> np.ndarray:
        """Encode a list of candidate pairs into a ``(n, dimension)`` matrix."""
        if not pairs:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.stack([self.encode_pair(dataset, pair) for pair in pairs], axis=0)
