"""The generic string-keyed component registry.

A *component spec* is the serializable description of one pipeline
component: either a bare string key (``"qgram"``) or a plain mapping with
a ``type`` key and optional parameters (``{"type": "qgram", "q": 3}`` or,
equivalently, ``{"type": "qgram", "params": {"q": 3}}``).  Specs are
normalized to the canonical ``{"type": ..., "params": {...}}`` form built
from JSON-plain values only, so a spec feeds directly into the pipeline's
content fingerprints (:func:`repro.pipeline.digest`) and two ways of
writing the same configuration always hash identically.

Registered components implement two hooks:

``from_spec(params, **context)``
    Classmethod constructing the component from the spec's parameters
    plus creation-time context the spec deliberately does not capture
    (intent names, shared hyper-parameter config objects, ...).
``to_spec()``
    Return the component's spec as a plain dict, such that
    ``registry.create(component.to_spec(), **context)`` rebuilds an
    equivalent component.
"""

from __future__ import annotations

from collections.abc import Iterator

from .._spec import SPEC_PARAMS_KEY, SPEC_TYPE_KEY, normalize_spec
from ..exceptions import RegistryError

__all__ = ["ComponentRegistry", "normalize_spec", "SPEC_TYPE_KEY", "SPEC_PARAMS_KEY"]


class ComponentRegistry:
    """A string-keyed registry of one component family.

    Parameters
    ----------
    family:
        Human-readable family name (``"solver"``, ``"blocker"``, ...),
        used in error messages and as the registry's identity in
        :data:`repro.registry.FAMILIES`.
    """

    def __init__(self, family: str) -> None:
        if not family:
            raise RegistryError("registry family name must be non-empty")
        self.family = family
        self._components: dict[str, type] = {}

    # ------------------------------------------------------------ registration

    def register(self, key: str, component: type | None = None):
        """Register ``component`` under ``key`` (usable as a decorator).

        The component must provide ``from_spec``; re-registering an
        existing key raises (delete first to replace deliberately).
        """

        def _register(target: type) -> type:
            if not key or not isinstance(key, str):
                raise RegistryError(f"{self.family} registry keys must be non-empty strings")
            if key in self._components:
                raise RegistryError(
                    f"{self.family} component {key!r} is already registered "
                    f"({self._components[key].__name__})"
                )
            if not callable(getattr(target, "from_spec", None)):
                raise RegistryError(
                    f"{self.family} component {target.__name__} must define from_spec()"
                )
            self._components[key] = target
            return target

        if component is None:
            return _register
        return _register(component)

    def unregister(self, key: str) -> None:
        """Remove a registration (primarily for tests and plugins)."""
        self._components.pop(key, None)

    # ----------------------------------------------------------------- lookup

    def __contains__(self, key: str) -> bool:
        return key in self._components

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def keys(self) -> tuple[str, ...]:
        """Registered keys, in registration order."""
        return tuple(self._components)

    def get(self, key: str) -> type:
        """The component class registered under ``key``."""
        try:
            return self._components[key]
        except KeyError:
            available = ", ".join(sorted(self._components)) or "<none>"
            raise RegistryError(
                f"unknown {self.family} component {key!r}; available: {available}"
            ) from None

    # --------------------------------------------------------------- creation

    def normalize(self, spec: object) -> dict[str, object]:
        """Normalize ``spec`` and verify its key is registered."""
        normalized = normalize_spec(spec, context=f"{self.family} spec")
        self.get(str(normalized[SPEC_TYPE_KEY]))
        return normalized

    def create(self, spec: object, **context) -> object:
        """Build the component described by ``spec``.

        ``context`` carries creation-time inputs that are not part of the
        serialized spec (e.g. ``intents`` and ``matcher_config`` for
        solvers, ``config`` for graph builders and classifiers).
        """
        normalized = self.normalize(spec)
        component = self.get(str(normalized[SPEC_TYPE_KEY]))
        params = dict(normalized[SPEC_PARAMS_KEY])  # type: ignore[arg-type]
        try:
            return component.from_spec(params, **context)
        except TypeError as error:
            raise RegistryError(
                f"cannot build {self.family} component "
                f"{normalized[SPEC_TYPE_KEY]!r} from params {sorted(params)}: {error}"
            ) from error

    def spec(self, component: object) -> dict[str, object]:
        """The canonical spec of a component instance (via ``to_spec``).

        Raises when the component does not expose ``to_spec`` or reports
        a type that is not registered in this family — catching drift
        between an instance and the registry that is supposed to be able
        to rebuild it.
        """
        to_spec = getattr(component, "to_spec", None)
        if not callable(to_spec):
            raise RegistryError(
                f"{type(component).__name__} does not expose to_spec(); "
                f"it cannot serialize as a {self.family} component"
            )
        return self.normalize(to_spec())
