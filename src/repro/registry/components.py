"""The four built-in component families and their registrations.

The FlexER pipeline is modular by design (Sections 4–5 of the paper):
matchers, graph constructions, and per-intent GNN heads are
interchangeable.  This module declares one :class:`ComponentRegistry`
per family and registers the library's built-in implementations, so
adding a new backend is a single ``register`` call:

>>> from repro.registry import BLOCKERS
>>> blocker = BLOCKERS.create({"type": "qgram", "q": 3})
>>> BLOCKERS.spec(blocker)["params"]["q"]
3

Families and creation context:

``SOLVERS``
    MIER solvers / representation sources.  Context: ``intents``,
    ``matcher_config``, ``feature_config``.
``BLOCKERS``
    Candidate-pair generators over raw datasets.  No context.
``GRAPH_BUILDERS``
    Multiplex graph constructions.  Context: ``config`` (GraphConfig).
``INTENT_CLASSIFIERS``
    Per-intent node classifiers.  Context: ``config`` (GNNConfig).
``EXECUTORS``
    Sharded-execution backends (``serial`` / ``threads`` /
    ``processes``).  No context; executors never change results, so
    their specs stay out of pipeline stage fingerprints.
``CANDIDATE_RETRIEVERS``
    Online candidate retrieval against a fitted corpus (``ann_knn`` /
    ``blocker``).  No context; fitted over the model corpus at fit/load
    time.
``MODELS``
    Persistable fit artifacts (``flexer``).  Context: ``arrays`` — the
    numpy payload the spec's metadata describes.
``SCENARIOS``
    End-to-end workload scenarios (``streaming`` / ``intent_drift`` /
    ``robustness_grid``).  No context; a scenario spec fully describes
    a seeded, reproducible run (see :mod:`repro.scenarios`).
"""

from __future__ import annotations

from ..blocking.full import FullBlocker
from ..blocking.qgram import QGramBlocker
from ..blocking.token import TokenBlocker
from ..exec.executors import BUILTIN_EXECUTORS
from ..graph.builder import IntentGraphBuilder
from ..graph.sage import IntentNodeClassifier
from ..matching.solvers import InParallelSolver, MultiLabelSolver, NaiveSolver
from ..retrieval import BUILTIN_RETRIEVERS
from .core import ComponentRegistry

SOLVERS = ComponentRegistry("solver")
SOLVERS.register(InParallelSolver.spec_type, InParallelSolver)
SOLVERS.register(MultiLabelSolver.spec_type, MultiLabelSolver)
SOLVERS.register(NaiveSolver.spec_type, NaiveSolver)

BLOCKERS = ComponentRegistry("blocker")
BLOCKERS.register(QGramBlocker.spec_type, QGramBlocker)
BLOCKERS.register(TokenBlocker.spec_type, TokenBlocker)
BLOCKERS.register(FullBlocker.spec_type, FullBlocker)

GRAPH_BUILDERS = ComponentRegistry("graph_builder")
GRAPH_BUILDERS.register(IntentGraphBuilder.spec_type, IntentGraphBuilder)

INTENT_CLASSIFIERS = ComponentRegistry("intent_classifier")
INTENT_CLASSIFIERS.register(IntentNodeClassifier.spec_type, IntentNodeClassifier)

EXECUTORS = ComponentRegistry("executor")
for _key, _executor in BUILTIN_EXECUTORS.items():
    EXECUTORS.register(_key, _executor)

CANDIDATE_RETRIEVERS = ComponentRegistry("candidate_retriever")
for _key, _retriever in BUILTIN_RETRIEVERS.items():
    CANDIDATE_RETRIEVERS.register(_key, _retriever)

# The built-in ResolverModel registers itself on first import of
# repro.model (registering here would close an import cycle through the
# pipeline runner).
MODELS = ComponentRegistry("model")

# The built-in scenarios register themselves on first import of
# repro.scenarios (same cycle-avoidance pattern as MODELS: scenarios
# import the resolver and pipeline layers).
SCENARIOS = ComponentRegistry("scenario")

#: All registries keyed by family name.
FAMILIES: dict[str, ComponentRegistry] = {
    SOLVERS.family: SOLVERS,
    BLOCKERS.family: BLOCKERS,
    GRAPH_BUILDERS.family: GRAPH_BUILDERS,
    INTENT_CLASSIFIERS.family: INTENT_CLASSIFIERS,
    EXECUTORS.family: EXECUTORS,
    CANDIDATE_RETRIEVERS.family: CANDIDATE_RETRIEVERS,
    MODELS.family: MODELS,
    SCENARIOS.family: SCENARIOS,
}
