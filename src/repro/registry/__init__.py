"""Component registries — the composable backbone of the public API.

Every pluggable piece of the FlexER pipeline (solvers, blockers, graph
builders, intent classifiers) lives in a string-keyed
:class:`ComponentRegistry` and serializes to a plain-dict *spec* via
``to_spec``/``from_spec``.  Specs are what :class:`repro.config.FlexERConfig`
stores, what the staged pipeline fingerprints, and what the
:class:`~repro.resolver.Resolver` uses to assemble an end-to-end run —
so adding a backend is one ``register`` call plus a spec.

>>> from repro import registry
>>> registry.available("blocker")
('qgram', 'token', 'full')
>>> blocker = registry.create("blocker", {"type": "token", "min_shared": 1})
>>> registry.spec("blocker", blocker)["type"]
'token'
"""

from __future__ import annotations

from ..exceptions import RegistryError
from .core import ComponentRegistry, normalize_spec
from .components import (
    BLOCKERS,
    CANDIDATE_RETRIEVERS,
    EXECUTORS,
    FAMILIES,
    GRAPH_BUILDERS,
    INTENT_CLASSIFIERS,
    MODELS,
    SCENARIOS,
    SOLVERS,
)


def family(name: str) -> ComponentRegistry:
    """The registry of component family ``name``."""
    try:
        return FAMILIES[name]
    except KeyError:
        available_families = ", ".join(sorted(FAMILIES))
        raise RegistryError(
            f"unknown component family {name!r}; available: {available_families}"
        ) from None


def register(family_name: str, key: str, component: type | None = None):
    """Register ``component`` under ``key`` in family ``family_name``.

    Usable as a decorator::

        @register("blocker", "sorted_neighborhood")
        class SortedNeighborhoodBlocker(Blocker): ...
    """
    return family(family_name).register(key, component)


def create(family_name: str, spec: object, **context) -> object:
    """Build the component described by ``spec`` in family ``family_name``."""
    return family(family_name).create(spec, **context)


def spec(family_name: str, component: object) -> dict[str, object]:
    """The canonical serialized spec of a component instance."""
    return family(family_name).spec(component)


def available(family_name: str | None = None):
    """Registered keys of one family, or a dict over all families."""
    if family_name is not None:
        return family(family_name).keys()
    return {name: reg.keys() for name, reg in FAMILIES.items()}


__all__ = [
    "ComponentRegistry",
    "RegistryError",
    "normalize_spec",
    "SOLVERS",
    "BLOCKERS",
    "GRAPH_BUILDERS",
    "INTENT_CLASSIFIERS",
    "EXECUTORS",
    "CANDIDATE_RETRIEVERS",
    "MODELS",
    "SCENARIOS",
    "FAMILIES",
    "family",
    "register",
    "create",
    "spec",
    "available",
]
