"""The intent-drift streaming scenario.

A variant of :class:`~repro.scenarios.streaming.StreamingScenario`
whose stream is *ordered by product domain*: records from the first
half of the benchmark's domains arrive first (the **pre-shift** phase),
records from the remaining domains arrive after (the **post-shift**
phase).  Because the benchmark's intent labels are functions of the
underlying products' domain/brand/category structure, this reorders the
label distribution mid-stream — the classic drift setting where a
deployed resolver suddenly sees entities from a population it was
barely fitted on.

Every matrix row is annotated with its phase (``pre-shift`` /
``shift`` / ``post-shift``) and the summary reports per-intent mean F1
on each side of the shift plus the per-intent delta, so quality loss
concentrated in one intent is visible even when the macro average moves
little.
"""

from __future__ import annotations

import numpy as np

from .base import QUALITY_DIGITS
from .streaming import StreamingScenario

__all__ = ["IntentDriftScenario"]


class IntentDriftScenario(StreamingScenario):
    """Streaming replay with a mid-stream domain (label) distribution shift."""

    spec_type = "intent_drift"

    # ------------------------------------------------------------------ hooks

    def order_stream(self, benchmark, stream):
        """Stably reorder the stream: early-domain records first."""
        products = benchmark.record_products
        domains = sorted({product.domain for product in products.values()})
        early = frozenset(domains[: max(1, len(domains) // 2)])
        self._early_ids = {
            record.record_id
            for record in stream
            if products[record.record_id].domain in early
        }
        return sorted(
            stream,
            key=lambda record: record.record_id not in self._early_ids,
        )

    def annotate_row(self, benchmark, chunk, row):
        """Tag the row with its drift phase."""
        phases = {
            record.record_id in self._early_ids for record in chunk.records
        }
        if phases == {True}:
            row["phase"] = "pre-shift"
        elif phases == {False}:
            row["phase"] = "post-shift"
        else:
            row["phase"] = "shift"

    def extend_summary(self, benchmark, matrix, summary):
        """Per-intent mean F1 before vs after the shift, plus the delta."""
        pre = [row for row in matrix if row.get("phase") == "pre-shift"]
        post = [
            row for row in matrix if row.get("phase") in ("shift", "post-shift")
        ]
        shift_rows = [
            row for row in matrix if row.get("phase") in ("shift", "post-shift")
        ]
        summary["shift_cell"] = shift_rows[0]["cell"] if shift_rows else None

        def per_intent_mean(rows):
            if not rows:
                return {}
            intents = sorted(rows[0]["f1"])
            return {
                intent: round(
                    float(np.mean([float(row["f1"][intent]) for row in rows])),
                    QUALITY_DIGITS,
                )
                for intent in intents
            }

        pre_f1 = per_intent_mean(pre)
        post_f1 = per_intent_mean(post)
        summary["pre_shift_f1"] = pre_f1
        summary["post_shift_f1"] = post_f1
        summary["shift_f1_delta"] = {
            intent: round(post_f1[intent] - pre_f1[intent], QUALITY_DIGITS)
            for intent in sorted(set(pre_f1) & set(post_f1))
        }
