"""The streaming/temporal replay scenario.

A corpus is partitioned into an initial fit prefix, a timestamped
stream tail, and a fixed probe set.  The scenario fits a
:class:`~repro.model.ResolverModel` on the prefix, then replays the
tail chunk by chunk through :meth:`~repro.model.ResolverModel.update`
with an ``online``-mode probe query interleaved after every absorption.
Per chunk it records:

* **quality-over-time** — per-intent F1 of the probe predictions
  against the benchmark's ground-truth labeler;
* **staleness** — the macro-F1 delta between the query just before and
  just after absorbing the chunk (how much answering from the stale
  corpus cost);
* **compaction triggers** — whether the drift policy forced a refit,
  and why;
* **per-step latency** — update and probe-query wall seconds (timings
  section only; the quality matrix stays byte-reproducible).

At its final step the scenario *asserts* the exact-mode parity
contract: a fresh fit on the union corpus (same supervision pairs,
re-anchored over the live records) must answer exact-mode probe
queries byte-identically to the incrementally updated model.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

import numpy as np

from ..data.records import Dataset, Record
from ..exceptions import ScenarioError
from .base import (
    QUALITY_DIGITS,
    WorkloadScenario,
    benchmark_labeler,
    load_scenario_benchmark,
    make_scenario_config,
    query_quality,
    require,
    scenario_executor,
    split_tail,
    timed,
)
from .report import ScenarioReport

__all__ = ["StreamingScenario", "timestamped_chunks", "assert_exact_parity"]


def timestamped_chunks(
    records: Sequence[Record],
    chunk_size: int,
    start_time: float = 0.0,
    interval: float = 1.0,
):
    """Partition ``records`` into timestamped chunks via time-mode streaming.

    Each record is stamped with a synthetic ``arrival`` attribute
    (``start_time + position * interval``) and the stamped copies are
    grouped by :func:`~repro.datasets.stream.stream_chunks` in its
    timestamp-column mode with a window of ``chunk_size * interval``.
    The yielded chunks carry the **original** records (the stamp never
    reaches the model — corpora enforce their schema on update).
    """
    from ..datasets import CorpusChunk, stream_chunks

    require(chunk_size >= 1, f"chunk_size must be >= 1, got {chunk_size}")
    stamped = [
        Record(
            record_id=record.record_id,
            values={**record.values, "arrival": repr(start_time + index * interval)},
            source=record.source,
        )
        for index, record in enumerate(records)
    ]
    originals = {record.record_id: record for record in records}
    return [
        CorpusChunk(
            index=chunk.index,
            timestamp=chunk.timestamp,
            records=tuple(originals[record.record_id] for record in chunk.records),
        )
        for chunk in stream_chunks(
            stamped, timestamp_attribute="arrival", window=chunk_size * interval
        )
    ]


def assert_exact_parity(model, probes: Sequence[Record], query_k: int) -> dict[str, object]:
    """Assert the updated model's exact-mode parity with a fresh union fit.

    Re-anchors the model's supervision split over the live (union)
    corpus, fits a fresh model with the same configuration and
    retriever spec, and compares the exact-mode probe query of both
    models array-for-array.  Raises
    :class:`~repro.exceptions.ScenarioError` on any mismatch; returns
    the deterministic parity summary otherwise.
    """
    from ..data.pairs import CandidateSet
    from ..data.splits import DatasetSplit
    from ..pipeline import PipelineRunner

    updated = model.query(probes, k=query_k, mode="exact")

    live = Dataset(
        records=[
            record for record in model.corpus if record.record_id not in model.tombstones
        ],
        name=model.corpus.name,
        attributes=model.corpus.attributes,
    )

    def reanchor(part):
        return CandidateSet(live, pairs=list(part), intents=model.intents)

    fresh_split = DatasetSplit(
        train=reanchor(model.split.train),
        valid=reanchor(model.split.valid),
        test=reanchor(model.split.test),
    )
    runner = PipelineRunner(
        augment_with_scores=model.augment_with_scores,
        feature_config=model.feature_config,
    )
    fresh = runner.fit_model(
        fresh_split, model.intents, config=model.config, retriever=model.retriever_spec
    ).model
    fresh_result = fresh.query(probes, k=query_k, mode="exact")

    updated_arrays, updated_meta = updated.as_arrays()
    fresh_arrays, fresh_meta = fresh_result.as_arrays()
    if updated_meta != fresh_meta or set(updated_arrays) != set(fresh_arrays):
        raise ScenarioError(
            "exact-mode parity violated: updated model and fresh union fit "
            "disagree on result structure"
        )
    for key in sorted(updated_arrays):
        if not np.array_equal(updated_arrays[key], fresh_arrays[key]):
            raise ScenarioError(
                f"exact-mode parity violated: array {key!r} differs between the "
                "updated model and a fresh union fit"
            )
    return {
        "final_exact_parity": True,
        "parity_pairs": len(updated.pairs),
        "parity_probe_records": len(probes),
    }


class StreamingScenario(WorkloadScenario):
    """Streaming/temporal corpus replay through incremental update.

    Parameters (all captured in the spec)
    -------------------------------------
    dataset, num_pairs, products:
        The synthetic benchmark and its scale.
    matcher_epochs, gnn_epochs, solver, blocker, retriever, k_neighbors:
        Model configuration (see :func:`make_scenario_config`).
    probe_count:
        Records withheld as the fixed query probe set (never absorbed).
    stream_records:
        Records withheld from the initial fit and replayed as the
        stream, in ``chunk_size``-record timestamped chunks.
    chunk_size:
        Records per stream chunk.
    query_k:
        Candidates retrieved per probe record.
    compact:
        Compaction mode forwarded to ``model.update`` (``"auto"`` /
        ``"never"`` / ``"force"``).
    """

    spec_type = "streaming"

    def __init__(
        self,
        dataset: str = "amazon_mi",
        num_pairs: int = 120,
        products: int = 10,
        matcher_epochs: int = 2,
        gnn_epochs: int = 4,
        probe_count: int = 6,
        stream_records: int = 18,
        chunk_size: int = 6,
        query_k: int = 4,
        compact: str = "auto",
        solver: str = "in_parallel",
        blocker: str = "qgram",
        retriever: str = "ann_knn",
        k_neighbors: int = 6,
    ) -> None:
        super().__init__(
            dataset=dataset,
            num_pairs=num_pairs,
            products=products,
            matcher_epochs=matcher_epochs,
            gnn_epochs=gnn_epochs,
            probe_count=probe_count,
            stream_records=stream_records,
            chunk_size=chunk_size,
            query_k=query_k,
            compact=compact,
            solver=solver,
            blocker=blocker,
            retriever=retriever,
            k_neighbors=k_neighbors,
        )
        require(probe_count >= 1, "probe_count must be >= 1")
        require(stream_records >= 1, "stream_records must be >= 1")
        require(chunk_size >= 1, "chunk_size must be >= 1")
        require(
            compact in ("auto", "never", "force"),
            f"compact must be auto/never/force, got {compact!r}",
        )
        self.dataset = dataset
        self.num_pairs = int(num_pairs)
        self.products = int(products)
        self.matcher_epochs = int(matcher_epochs)
        self.gnn_epochs = int(gnn_epochs)
        self.probe_count = int(probe_count)
        self.stream_records = int(stream_records)
        self.chunk_size = int(chunk_size)
        self.query_k = int(query_k)
        self.compact = compact
        self.solver = solver
        self.blocker = blocker
        self.retriever = retriever
        self.k_neighbors = int(k_neighbors)

    # ------------------------------------------------------------------ hooks

    def order_stream(self, benchmark, stream: list[Record]) -> list[Record]:
        """Arrival order of the streamed records (identity by default)."""
        return stream

    def annotate_row(self, benchmark, chunk, row: dict[str, object]) -> None:
        """Extend a chunk's matrix row (no-op by default)."""

    def extend_summary(
        self, benchmark, matrix: list[dict[str, object]], summary: dict[str, object]
    ) -> None:
        """Extend the deterministic summary (no-op by default)."""

    # -------------------------------------------------------------------- run

    def run(
        self, seed: int = 0, executor: object = None, name: str | None = None
    ) -> ScenarioReport:
        """Fit, replay the stream, and return the scenario report."""
        from ..resolver import Resolver

        run_start = time.perf_counter()
        benchmark = load_scenario_benchmark(
            self.dataset, self.num_pairs, self.products, seed
        )
        labeler, record_labeler = benchmark_labeler(self.dataset, benchmark)
        products = benchmark.record_products
        head, stream, probes = split_tail(
            benchmark.dataset.records, self.stream_records, self.probe_count
        )
        corpus = Dataset(
            records=head,
            name=benchmark.dataset.name,
            attributes=benchmark.dataset.attributes,
        )

        blocker_spec: dict[str, object] = {"type": self.blocker}
        retriever_spec: dict[str, object] = {"type": self.retriever}
        if benchmark.dataset.sources:
            blocker_spec["cross_source_only"] = True
            if self.retriever == "blocker":
                retriever_spec["blocker"] = dict(blocker_spec)
            else:
                retriever_spec["cross_source_only"] = True
        elif self.retriever == "blocker":
            retriever_spec["blocker"] = dict(blocker_spec)

        config = make_scenario_config(
            seed,
            self.matcher_epochs,
            self.gnn_epochs,
            solver=self.solver,
            k_neighbors=self.k_neighbors,
            executor=executor if executor is not None else "serial",
            blocker=blocker_spec,
        )
        query_executor = scenario_executor(executor)

        timings: dict[str, object] = {}
        resolver = Resolver(config=config)
        with timed(timings, "fit_seconds"):
            model = resolver.fit(
                corpus,
                intents=labeler.intent_names,
                labeler=record_labeler,
                split_seed=seed,
                retriever=retriever_spec,
            )

        chunks = timestamped_chunks(
            self.order_stream(benchmark, stream), self.chunk_size
        )
        matrix, cell_timings, qualities = self._replay(
            model, chunks, probes, products, labeler, benchmark, query_executor
        )

        with timed(timings, "parity_seconds"):
            parity = assert_exact_parity(model, probes, self.query_k)

        staleness = [
            float(row["staleness"]) for row in matrix if row["cell"] != "initial"
        ]
        drift = model.drift_metrics()
        summary: dict[str, object] = {
            "chunks": len(chunks),
            "stream_records": sum(len(chunk.records) for chunk in chunks),
            "initial_macro_f1": qualities[0]["macro_f1"],
            "final_macro_f1": qualities[-1]["macro_f1"],
            "initial_f1": qualities[0]["f1"],
            "final_f1": qualities[-1]["f1"],
            "staleness_mean": round(float(np.mean(staleness)), QUALITY_DIGITS),
            "staleness_min": round(float(np.min(staleness)), QUALITY_DIGITS),
            "staleness_max": round(float(np.max(staleness)), QUALITY_DIGITS),
            "compactions": sum(1 for row in matrix if row.get("compacted")),
            "update_generations": drift.update_generations,
            "corpus_live_records": drift.live_records,
            **parity,
        }
        self.extend_summary(benchmark, matrix, summary)

        timings["cells"] = cell_timings
        timings["total_seconds"] = round(time.perf_counter() - run_start, 6)
        return ScenarioReport(
            name=name or self.spec_type,
            scenario=self.to_spec(),
            seed=int(seed),
            matrix=matrix,
            summary=summary,
            timings=timings,
        )

    def _replay(
        self,
        model,
        chunks,
        probes: list[Record],
        products,
        labeler,
        benchmark,
        query_executor,
        annotate: Callable | None = None,
    ):
        """Replay ``chunks`` through update + probe query; returns rows."""

        def probe_quality() -> dict[str, object]:
            result = model.query(
                probes, k=self.query_k, mode="online", executor=query_executor
            )
            return query_quality(result, products, labeler)

        matrix: list[dict[str, object]] = []
        cell_timings: dict[str, dict[str, object]] = {}

        initial_timing: dict[str, object] = {}
        with timed(initial_timing, "query_seconds"):
            quality = probe_quality()
        qualities = [quality]
        matrix.append(
            {
                "cell": "initial",
                "timestamp": None,
                "records": 0,
                "new_pairs": 0,
                "refreshed_pairs": 0,
                "compacted": False,
                "compaction_reasons": [],
                "corpus_live_records": model.drift_metrics().live_records,
                "f1": quality["f1"],
                "positive_rate": quality["positive_rate"],
                "macro_f1": quality["macro_f1"],
                "probe_pairs": quality["num_pairs"],
                "staleness": 0.0,
            }
        )
        cell_timings["initial"] = initial_timing

        for chunk in chunks:
            cell = f"chunk-{chunk.index:02d}"
            timing: dict[str, object] = {}
            before = qualities[-1]
            with timed(timing, "update_seconds"):
                result = model.update(upserts=list(chunk.records), compact=self.compact)
            with timed(timing, "query_seconds"):
                quality = probe_quality()
            qualities.append(quality)
            timing["query_seconds_per_record"] = round(
                float(timing["query_seconds"]) / max(len(probes), 1), 6
            )
            row: dict[str, object] = {
                "cell": cell,
                "timestamp": chunk.timestamp,
                "records": len(chunk.records),
                "new_pairs": len(result.new_pairs),
                "refreshed_pairs": len(result.refreshed_pairs),
                "compacted": bool(result.compacted),
                "compaction_reasons": list(result.compaction_reasons),
                "corpus_live_records": model.drift_metrics().live_records,
                "f1": quality["f1"],
                "positive_rate": quality["positive_rate"],
                "macro_f1": quality["macro_f1"],
                "probe_pairs": quality["num_pairs"],
                "staleness": round(
                    float(quality["macro_f1"]) - float(before["macro_f1"]),
                    QUALITY_DIGITS,
                ),
            }
            self.annotate_row(benchmark, chunk, row)
            matrix.append(row)
            cell_timings[cell] = timing
        return matrix, cell_timings, qualities
