"""Schema-versioned scenario reports and the quality×latency matrix.

Every scenario run produces a :class:`ScenarioReport`: a flat list of
*matrix rows* (one per scenario cell — a replayed chunk, a grid cell),
a deterministic ``summary``, and a parallel ``timings`` section keyed by
the same cell names.  The split is deliberate: everything outside
``timings`` is **content-derived and byte-reproducible** — two runs with
the same spec and seed (under any executor) serialize to identical JSON
— while ``timings`` carries the wall-clock measurements that make the
quality×latency matrix.  :meth:`ScenarioReport.to_json` therefore takes
``include_timings``: the determinism contract (and the ``scenario-smoke``
CI ``cmp``) applies to the timings-free document, and the full document
is what lands in ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..evaluation import format_table
from ..exceptions import ScenarioError

#: Version of the scenario report document layout.
SCENARIO_SCHEMA_VERSION = 1

#: Document kind marker (guards against comparing unrelated JSON files).
SCENARIO_REPORT_KIND = "repro-scenario-report"


def _json_plain(value: object) -> object:
    """Round-trip through JSON so tuples and numpy scalars normalize."""
    return json.loads(json.dumps(value, sort_keys=True, default=_coerce))


def _coerce(value: object) -> object:
    """JSON fallback for numpy scalar types."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON-serializable: {value!r} ({type(value).__name__})")


@dataclass
class ScenarioReport:
    """The structured outcome of one scenario run.

    Attributes
    ----------
    name:
        Scenario name (a named preset such as ``streaming-smoke``, or
        the registry type for ad-hoc runs).
    scenario:
        The normalized registry spec (``{"type": ..., "params": ...}``)
        that reproduces this run.
    seed:
        The run seed; together with ``scenario`` it pins the content of
        every non-timing field.
    matrix:
        The quality matrix — one dict per cell with a unique ``cell``
        key plus scenario-specific quality columns.  Deterministic.
    summary:
        Headline deterministic numbers (final quality, staleness
        statistics, parity verdicts, ...).
    timings:
        Wall-clock measurements keyed like the matrix: a ``cells``
        mapping from cell name to latency fields, plus scenario-level
        totals.  Excluded from the determinism contract.
    """

    name: str
    scenario: dict[str, object]
    seed: int
    matrix: list[dict[str, object]] = field(default_factory=list)
    summary: dict[str, object] = field(default_factory=dict)
    timings: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cells = [str(row.get("cell", "")) for row in self.matrix]
        if any(not cell for cell in cells):
            raise ScenarioError("every matrix row needs a non-empty 'cell' key")
        if len(set(cells)) != len(cells):
            raise ScenarioError(f"matrix cell names must be unique, got {cells}")

    # ------------------------------------------------------------- documents

    def to_document(self, include_timings: bool = True) -> dict[str, object]:
        """The JSON-plain report document (schema-versioned)."""
        document: dict[str, object] = {
            "kind": SCENARIO_REPORT_KIND,
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "scenario": _json_plain(self.scenario),
            "seed": int(self.seed),
            "matrix": _json_plain(self.matrix),
            "summary": _json_plain(self.summary),
        }
        if include_timings:
            document["timings"] = _json_plain(self.timings)
        return document

    def to_json(self, include_timings: bool = True) -> str:
        """Serialize deterministically (sorted keys, trailing newline)."""
        return (
            json.dumps(self.to_document(include_timings), indent=2, sort_keys=True)
            + "\n"
        )

    def write(self, path: str | Path, include_timings: bool = True) -> Path:
        """Write the report JSON to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.to_json(include_timings), encoding="utf-8")
        return path

    # -------------------------------------------------------------- rendering

    def cell_timings(self, cell: str) -> dict[str, object]:
        """The timing fields recorded for ``cell`` (empty when absent)."""
        cells = self.timings.get("cells", {})
        entry = cells.get(cell, {}) if isinstance(cells, dict) else {}
        return dict(entry) if isinstance(entry, dict) else {}

    def matrix_table(self, float_digits: int = 4) -> str:
        """Render the quality×latency matrix as a fixed-width text table.

        Quality columns come from the union of matrix-row keys (scalar
        values only — nested dicts are flattened one level with
        ``::``-joined headers); latency columns come from the per-cell
        timing entries.  Cells missing a column render as ``-``.
        """
        if not self.matrix:
            return f"(empty matrix for scenario {self.name})"

        def flatten(row: dict[str, object]) -> dict[str, object]:
            flat: dict[str, object] = {}
            for key, value in row.items():
                if isinstance(value, dict):
                    for sub_key, sub_value in value.items():
                        if not isinstance(sub_value, (dict, list)):
                            flat[f"{key}::{sub_key}"] = sub_value
                elif not isinstance(value, list):
                    flat[key] = value
            return flat

        flat_rows = [flatten(row) for row in self.matrix]
        timing_rows = [flatten(self.cell_timings(str(row["cell"]))) for row in self.matrix]

        quality_columns: list[str] = []
        for flat in flat_rows:
            for key in flat:
                if key != "cell" and key not in quality_columns:
                    quality_columns.append(key)
        latency_columns: list[str] = []
        for flat in timing_rows:
            for key in flat:
                if key not in latency_columns:
                    latency_columns.append(key)

        headers = ["cell"] + quality_columns + latency_columns
        rows = []
        for flat, timing in zip(flat_rows, timing_rows):
            row = [flat.get("cell", "-")]
            row += [flat.get(column, "-") for column in quality_columns]
            row += [timing.get(column, "-") for column in latency_columns]
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=f"scenario {self.name} (seed {self.seed})",
            float_digits=float_digits,
        )


def load_scenario_report(path: str | Path) -> dict[str, object]:
    """Load a scenario report document, validating kind and schema."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("kind") != SCENARIO_REPORT_KIND:
        raise ScenarioError(f"{path} is not a {SCENARIO_REPORT_KIND} document")
    if document.get("schema_version") != SCENARIO_SCHEMA_VERSION:
        raise ScenarioError(
            f"{path} has schema version {document.get('schema_version')}, "
            f"expected {SCENARIO_SCHEMA_VERSION}"
        )
    return document
