"""The robustness-grid scenario: corruption levels × component specs.

Crosses the field-level corruption axes of
:class:`~repro.datasets.perturb.RecordPerturber` (typo rate, dropped
fields, swapped fields, schema renames — the *mixed schemas* axis) with
registry component specs, producing one quality×latency matrix cell per
``(corruption level, component)`` combination:

* **solver cells** run the staged pipeline over the benchmark's
  supervision split re-anchored onto the corrupted corpus, via
  :func:`~repro.pipeline.batch.solver_grid` and a shared
  :class:`~repro.pipeline.batch.BatchRunner` (so cells that share
  upstream stages reuse cached artifacts);
* **blocker cells** resolve the corrupted corpus end to end from raw
  records, measuring how corruption degrades candidate generation
  (pair completeness) on top of downstream F1;
* **retriever cells** fit a model on the corrupted corpus and answer
  online probe queries through the given candidate retriever.

The corrupted corpora are *enriched* multi-field records (title, brand,
category, model) built from the benchmark's ground-truth products, with
the pair feature schema pinned to those attributes — so a schema rename
genuinely removes a field from the matcher's view instead of being a
cosmetic key change.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..data.pairs import CandidateSet
from ..data.records import Dataset, Record
from ..data.splits import DatasetSplit
from ..evaluation import evaluate_binary
from ..matching.features import PairFeatureConfig
from .base import (
    QUALITY_DIGITS,
    WorkloadScenario,
    benchmark_labeler,
    load_scenario_benchmark,
    make_scenario_config,
    query_quality,
    require,
    split_tail,
    timed,
)
from .report import ScenarioReport

__all__ = ["RobustnessGridScenario", "DEFAULT_LEVELS", "ENRICHED_SCHEMA"]

#: Default corruption levels: scale factors applied to the base
#: per-record corruption probabilities.
DEFAULT_LEVELS: tuple[dict[str, object], ...] = (
    {"name": "clean", "scale": 0.0},
    {"name": "moderate", "scale": 1.0},
    {"name": "heavy", "scale": 2.5},
)

#: Attribute schema of the enriched robustness corpus.  The pair
#: feature configuration is pinned to exactly these attributes.
ENRICHED_SCHEMA = ("title", "brand", "category", "model")


def _enriched_dataset(benchmark) -> Dataset:
    """Multi-field robustness corpus built from the benchmark products.

    Benchmark records carry only a (noisy) title; field-level corruption
    axes need fields.  Each record is widened with its ground-truth
    product's brand, main category, and model line, keeping the record
    id and source so the benchmark's supervision pairs re-anchor
    unchanged.
    """
    products = benchmark.record_products
    records = []
    for record in benchmark.dataset.records:
        product = products[record.record_id]
        records.append(
            Record(
                record_id=record.record_id,
                values={
                    "title": record.values.get("title", product.title),
                    "brand": product.brand,
                    "category": product.main_category,
                    "model": product.model,
                },
                source=record.source,
            )
        )
    return Dataset(
        records=records, name=benchmark.dataset.name, attributes=ENRICHED_SCHEMA
    )


def _macro(f1: dict[str, float]) -> float:
    """Macro average of a per-intent F1 dict."""
    return round(float(np.mean(list(f1.values()))) if f1 else 0.0, QUALITY_DIGITS)


class RobustnessGridScenario(WorkloadScenario):
    """Corruption-level × component-spec quality grid.

    Parameters
    ----------
    dataset, num_pairs, products, matcher_epochs, gnn_epochs, k_neighbors:
        Benchmark scale and model configuration.
    levels:
        Corruption levels as ``{"name": ..., "scale": ...}`` dicts; the
        scale multiplies the base probabilities below (0 = clean).
    p_drop_field, p_swap_fields, p_rename_field, p_value_typo:
        Base per-record corruption probabilities at scale 1.
    solver_specs, blocker_specs, retriever_specs:
        Component specs crossed with every level.  At least one spec in
        total is required; the named grids use ≥3 levels × ≥3 specs.
    probe_count, query_k:
        Probe set for retriever cells (withheld from their fit corpus).
    """

    spec_type = "robustness_grid"

    def __init__(
        self,
        dataset: str = "amazon_mi",
        num_pairs: int = 120,
        products: int = 10,
        matcher_epochs: int = 2,
        gnn_epochs: int = 4,
        levels: object = DEFAULT_LEVELS,
        p_drop_field: float = 0.12,
        p_swap_fields: float = 0.06,
        p_rename_field: float = 0.18,
        p_value_typo: float = 0.25,
        solver_specs: object = ("in_parallel", "multi_label", "naive"),
        blocker_specs: object = (),
        retriever_specs: object = (),
        probe_count: int = 5,
        query_k: int = 4,
        k_neighbors: int = 6,
    ) -> None:
        super().__init__(
            dataset=dataset,
            num_pairs=num_pairs,
            products=products,
            matcher_epochs=matcher_epochs,
            gnn_epochs=gnn_epochs,
            levels=[dict(level) for level in levels],
            p_drop_field=p_drop_field,
            p_swap_fields=p_swap_fields,
            p_rename_field=p_rename_field,
            p_value_typo=p_value_typo,
            solver_specs=list(solver_specs),
            blocker_specs=list(blocker_specs),
            retriever_specs=list(retriever_specs),
            probe_count=probe_count,
            query_k=query_k,
            k_neighbors=k_neighbors,
        )
        self.dataset = dataset
        self.num_pairs = int(num_pairs)
        self.products = int(products)
        self.matcher_epochs = int(matcher_epochs)
        self.gnn_epochs = int(gnn_epochs)
        self.levels = [dict(level) for level in levels]
        self.p_drop_field = float(p_drop_field)
        self.p_swap_fields = float(p_swap_fields)
        self.p_rename_field = float(p_rename_field)
        self.p_value_typo = float(p_value_typo)
        self.solver_specs = list(solver_specs)
        self.blocker_specs = list(blocker_specs)
        self.retriever_specs = list(retriever_specs)
        self.probe_count = int(probe_count)
        self.query_k = int(query_k)
        self.k_neighbors = int(k_neighbors)
        require(len(self.levels) >= 1, "the grid needs at least one level")
        for level in self.levels:
            require(
                bool(str(level.get("name", ""))),
                f"every level needs a non-empty name, got {level!r}",
            )
            require(
                float(level.get("scale", -1.0)) >= 0.0,
                f"level scales must be >= 0, got {level!r}",
            )
        names = [str(level["name"]) for level in self.levels]
        require(
            len(set(names)) == len(names), f"level names must be unique, got {names}"
        )
        require(
            len(self.solver_specs)
            + len(self.blocker_specs)
            + len(self.retriever_specs)
            >= 1,
            "the grid needs at least one component spec",
        )

    # -------------------------------------------------------------------- run

    def run(
        self, seed: int = 0, executor: object = None, name: str | None = None
    ) -> ScenarioReport:
        """Run every (level × component) cell and return the report."""
        from ..datasets import FieldCorruptionConfig, RecordPerturber

        run_start = time.perf_counter()
        benchmark = load_scenario_benchmark(
            self.dataset, self.num_pairs, self.products, seed
        )
        labeler, record_labeler = benchmark_labeler(self.dataset, benchmark)
        enriched = _enriched_dataset(benchmark)
        feature_config = PairFeatureConfig(attributes=ENRICHED_SCHEMA)

        blocker_spec: dict[str, object] = {"type": "qgram"}
        if enriched.sources:
            blocker_spec["cross_source_only"] = True
        base_config = make_scenario_config(
            seed,
            self.matcher_epochs,
            self.gnn_epochs,
            k_neighbors=self.k_neighbors,
            executor=executor if executor is not None else "serial",
            blocker=blocker_spec,
        )
        base_corruption = FieldCorruptionConfig(
            p_drop_field=self.p_drop_field,
            p_swap_fields=self.p_swap_fields,
            p_rename_field=self.p_rename_field,
            p_value_typo=self.p_value_typo,
        )

        matrix: list[dict[str, object]] = []
        cell_timings: dict[str, dict[str, object]] = {}
        level_summaries: list[dict[str, object]] = []
        context = {
            "benchmark": benchmark,
            "labeler": labeler,
            "record_labeler": record_labeler,
            "base_config": base_config,
            "feature_config": feature_config,
            "blocker_spec": blocker_spec,
            "seed": int(seed),
        }

        for level_index, level in enumerate(self.levels):
            level_name = str(level["name"])
            scale = float(level["scale"])
            rng = np.random.default_rng([int(seed), level_index])
            perturber = RecordPerturber(config=base_corruption.scaled(scale), rng=rng)
            corrupted = perturber.corrupt_dataset(
                enriched, name=f"{enriched.name}-{level_name}"
            )
            missing = sum(
                1
                for record in corrupted.records
                for attribute in ENRICHED_SCHEMA
                if record.values.get(attribute) is None
            )
            level_summaries.append(
                {
                    "name": level_name,
                    "scale": scale,
                    "num_attributes": len(corrupted.attributes or ()),
                    "missing_schema_values": missing,
                }
            )
            self._run_solver_cells(corrupted, level_name, context, matrix, cell_timings)
            self._run_blocker_cells(corrupted, level_name, context, matrix, cell_timings)
            self._run_retriever_cells(
                corrupted, level_name, context, matrix, cell_timings
            )

        summary = self._summarize(matrix, level_summaries)
        timings: dict[str, object] = {
            "cells": cell_timings,
            "total_seconds": round(time.perf_counter() - run_start, 6),
        }
        return ScenarioReport(
            name=name or self.spec_type,
            scenario=self.to_spec(),
            seed=int(seed),
            matrix=matrix,
            summary=summary,
            timings=timings,
        )

    # ------------------------------------------------------------------ cells

    def _reanchored_split(self, benchmark, corrupted: Dataset) -> DatasetSplit:
        """The benchmark's supervision split over the corrupted corpus."""

        def reanchor(part):
            return CandidateSet(corrupted, pairs=list(part), intents=benchmark.intents)

        return DatasetSplit(
            train=reanchor(benchmark.split.train),
            valid=reanchor(benchmark.split.valid),
            test=reanchor(benchmark.split.test),
        )

    def _run_solver_cells(
        self, corrupted, level_name, context, matrix, cell_timings
    ) -> None:
        if not self.solver_specs:
            return
        from ..pipeline.batch import BatchRunner, solver_grid
        from ..pipeline.runner import PipelineRunner

        benchmark = context["benchmark"]
        split = self._reanchored_split(benchmark, corrupted)
        batch = BatchRunner(
            runner=PipelineRunner(feature_config=context["feature_config"])
        )
        for scenario in solver_grid(context["base_config"], self.solver_specs):
            cell = f"{level_name}/{scenario.name}"
            timing: dict[str, object] = {}
            with timed(timing, "wall_seconds"):
                run = batch.run(
                    split, benchmark.intents, [scenario], dataset=level_name
                )[0]
            solution = run.result.solution
            test = split.test
            f1 = {
                intent: round(
                    float(evaluate_binary(solution.prediction(intent), test.labels(intent)).f1),
                    QUALITY_DIGITS,
                )
                for intent in solution.intents
            }
            matrix.append(
                {
                    "cell": cell,
                    "level": level_name,
                    "component": scenario.name,
                    "measure": "test-split",
                    "f1": f1,
                    "macro_f1": _macro(f1),
                    "test_pairs": len(test),
                }
            )
            cell_timings[cell] = timing

    def _run_blocker_cells(
        self, corrupted, level_name, context, matrix, cell_timings
    ) -> None:
        if not self.blocker_specs:
            return
        from ..resolver import Resolver

        for spec in self.blocker_specs:
            normalized = dict(spec) if isinstance(spec, dict) else {"type": str(spec)}
            if corrupted.sources and "cross_source_only" not in normalized:
                normalized["cross_source_only"] = True
            cell = f"{level_name}/blocker={normalized['type']}"
            timing: dict[str, object] = {}
            resolver = Resolver(
                config=replace(context["base_config"], blocker=normalized),
                feature_config=context["feature_config"],
            )
            with timed(timing, "wall_seconds"):
                result = resolver.resolve(
                    corrupted,
                    intents=context["labeler"].intent_names,
                    labeler=context["record_labeler"],
                    split_seed=context["seed"],
                )
            f1 = {
                intent: round(float(evaluation.f1), QUALITY_DIGITS)
                for intent, evaluation in sorted(result.intent_evaluations().items())
            }
            completeness = None
            if result.blocking is not None and result.blocking.pair_completeness:
                completeness = round(
                    float(np.mean(list(result.blocking.pair_completeness.values()))),
                    QUALITY_DIGITS,
                )
            matrix.append(
                {
                    "cell": cell,
                    "level": level_name,
                    "component": f"blocker={normalized['type']}",
                    "measure": "test-split",
                    "f1": f1,
                    "macro_f1": _macro(f1),
                    "pair_completeness": completeness,
                    "candidate_pairs": (
                        result.blocking.num_candidate_pairs
                        if result.blocking is not None
                        else None
                    ),
                }
            )
            cell_timings[cell] = timing

    def _run_retriever_cells(
        self, corrupted, level_name, context, matrix, cell_timings
    ) -> None:
        if not self.retriever_specs:
            return
        from ..resolver import Resolver

        head, probes = split_tail(corrupted.records, self.probe_count)
        corpus = Dataset(
            records=head, name=corrupted.name, attributes=corrupted.attributes
        )
        products = context["benchmark"].record_products
        for spec in self.retriever_specs:
            normalized = dict(spec) if isinstance(spec, dict) else {"type": str(spec)}
            if normalized["type"] == "blocker":
                normalized.setdefault("blocker", dict(context["blocker_spec"]))
            elif corpus.sources and "cross_source_only" not in normalized:
                normalized["cross_source_only"] = True
            cell = f"{level_name}/retriever={normalized['type']}"
            timing: dict[str, object] = {}
            resolver = Resolver(
                config=context["base_config"],
                feature_config=context["feature_config"],
            )
            with timed(timing, "fit_seconds"):
                model = resolver.fit(
                    corpus,
                    intents=context["labeler"].intent_names,
                    labeler=context["record_labeler"],
                    split_seed=context["seed"],
                    retriever=normalized,
                )
            with timed(timing, "query_seconds"):
                result = model.query(probes, k=self.query_k, mode="online")
            timing["query_seconds_per_record"] = round(
                float(timing["query_seconds"]) / max(len(probes), 1), 6
            )
            quality = query_quality(result, products, context["labeler"])
            matrix.append(
                {
                    "cell": cell,
                    "level": level_name,
                    "component": f"retriever={normalized['type']}",
                    "measure": "online-probes",
                    "f1": quality["f1"],
                    "macro_f1": quality["macro_f1"],
                    "probe_pairs": quality["num_pairs"],
                }
            )
            cell_timings[cell] = timing

    # ---------------------------------------------------------------- summary

    def _summarize(
        self,
        matrix: list[dict[str, object]],
        level_summaries: list[dict[str, object]],
    ) -> dict[str, object]:
        require(bool(matrix), "the robustness grid produced no cells")
        per_level: dict[str, list[float]] = {}
        per_component: dict[str, list[float]] = {}
        for row in matrix:
            per_level.setdefault(str(row["level"]), []).append(float(row["macro_f1"]))
            per_component.setdefault(str(row["component"]), []).append(
                float(row["macro_f1"])
            )
        best = max(matrix, key=lambda row: (float(row["macro_f1"]), str(row["cell"])))
        worst = min(matrix, key=lambda row: (float(row["macro_f1"]), str(row["cell"])))
        level_means = {
            level: round(float(np.mean(values)), QUALITY_DIGITS)
            for level, values in per_level.items()
        }
        clean_name = str(self.levels[0]["name"])
        degradation = None
        if len(level_means) > 1 and clean_name in level_means:
            degradation = round(
                level_means[clean_name] - min(level_means.values()), QUALITY_DIGITS
            )
        return {
            "num_cells": len(matrix),
            "levels": level_summaries,
            "per_level_macro_f1": level_means,
            "per_component_macro_f1": {
                component: round(float(np.mean(values)), QUALITY_DIGITS)
                for component, values in per_component.items()
            },
            "best_cell": str(best["cell"]),
            "best_macro_f1": float(best["macro_f1"]),
            "worst_cell": str(worst["cell"]),
            "worst_macro_f1": float(worst["macro_f1"]),
            "max_level_degradation": degradation,
        }
