"""Named scenario presets: the CLI/CI/nightly workload catalog.

Each preset is a plain ``(registry spec, description)`` pair.  The
``*-smoke`` presets are sized for CI and for the perf harness's
headline regression gate; the full presets are what the nightly
workflow runs end to end.
"""

from __future__ import annotations

from ..exceptions import ScenarioError
from ..registry import SCENARIOS

__all__ = [
    "NAMED_SCENARIOS",
    "HEADLINE_SCENARIOS",
    "build_scenario",
    "named_scenario",
    "scenario_names",
]

#: Name → ``{"description": ..., "spec": ...}``.  Specs are JSON-plain
#: registry specs (family ``scenario``), so presets serialize into the
#: reports they produce.
NAMED_SCENARIOS: dict[str, dict[str, object]] = {
    "streaming-smoke": {
        "description": (
            "CI-sized streaming replay: 3 chunks through update() with "
            "interleaved online probes and the final exact-parity check"
        ),
        "spec": {
            "type": "streaming",
            "params": {
                "num_pairs": 100,
                "products": 8,
                "matcher_epochs": 1,
                "gnn_epochs": 2,
                "probe_count": 5,
                "stream_records": 12,
                "chunk_size": 4,
                "query_k": 4,
            },
        },
    },
    "streaming-replay": {
        "description": (
            "Nightly streaming replay: 6 chunks over a larger corpus, "
            "auto compaction enabled"
        ),
        "spec": {
            "type": "streaming",
            "params": {
                "num_pairs": 220,
                "products": 16,
                "matcher_epochs": 2,
                "gnn_epochs": 4,
                "probe_count": 10,
                "stream_records": 36,
                "chunk_size": 6,
                "query_k": 5,
            },
        },
    },
    "intent-drift": {
        "description": (
            "Streaming replay with a mid-stream domain shift; tracks "
            "per-intent quality before vs after the shift"
        ),
        "spec": {
            "type": "intent_drift",
            "params": {
                "num_pairs": 160,
                "products": 12,
                "matcher_epochs": 1,
                "gnn_epochs": 3,
                "probe_count": 8,
                "stream_records": 24,
                "chunk_size": 6,
                "query_k": 4,
            },
        },
    },
    "robustness-smoke": {
        "description": (
            "CI-sized robustness grid: 3 corruption levels x 3 solver "
            "specs on the enriched multi-field corpus"
        ),
        "spec": {
            "type": "robustness_grid",
            "params": {
                "num_pairs": 90,
                "products": 8,
                "matcher_epochs": 1,
                "gnn_epochs": 2,
                "solver_specs": ["in_parallel", "multi_label", "naive"],
            },
        },
    },
    "robustness-grid": {
        "description": (
            "Full robustness grid: 3 corruption levels x (3 solvers + "
            "2 blockers + 2 retrievers)"
        ),
        "spec": {
            "type": "robustness_grid",
            "params": {
                "num_pairs": 160,
                "products": 12,
                "matcher_epochs": 2,
                "gnn_epochs": 3,
                "solver_specs": ["in_parallel", "multi_label", "naive"],
                "blocker_specs": ["qgram", "token"],
                "retriever_specs": ["ann_knn", "lsh"],
            },
        },
    },
}

#: The presets the perf harness records into ``BENCH_perf.json`` and
#: gates with the regression check.
HEADLINE_SCENARIOS: tuple[str, ...] = ("streaming-smoke", "robustness-smoke")


def build_scenario(spec: object):
    """Build a scenario instance from a registry spec."""
    return SCENARIOS.create(spec)


def named_scenario(name: str):
    """Build the scenario of preset ``name`` (raises on unknown names)."""
    try:
        entry = NAMED_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_SCENARIOS))
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {known}"
        ) from None
    return build_scenario(entry["spec"])


def scenario_names() -> tuple[str, ...]:
    """The preset names, sorted."""
    return tuple(sorted(NAMED_SCENARIOS))
