"""Shared machinery of the workload scenarios.

A *workload scenario* is a registry component (family ``scenario``,
:data:`repro.registry.SCENARIOS`) whose spec fully describes one
seeded, end-to-end workload: which benchmark to generate, how to
degrade or stream it, and which component specs to cross it with.
``scenario.run(seed)`` executes the workload and returns a
:class:`~repro.scenarios.report.ScenarioReport` whose non-timing
content is byte-reproducible for a fixed ``(spec, seed)`` under any
executor.

This module holds the base class plus the helpers every scenario
shares: the pinned FlexER configuration, benchmark loading, and
ground-truth quality scoring of query results against a benchmark's
intent labeler.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from contextlib import contextmanager

import numpy as np

from ..config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from ..evaluation import evaluate_binary
from ..exceptions import ScenarioError
from ..exec import executor_spec, make_executor

#: Quality floats are rounded to this many digits in matrix rows — far
#: above measurement noise, and it keeps report diffs readable.
QUALITY_DIGITS = 6


def make_scenario_config(
    seed: int,
    matcher_epochs: int,
    gnn_epochs: int,
    solver: object = "in_parallel",
    k_neighbors: int = 6,
    executor: object = "serial",
    blocker: object | None = None,
) -> FlexERConfig:
    """The pinned FlexER configuration scenarios run under.

    Mirrors the pipeline CLI's configuration (64/32 matcher hidden
    dims, 256 hashed features, 48 GNN hidden units) so scenario quality
    numbers are comparable with ``repro.pipeline`` runs at the same
    scale.
    """
    kwargs: dict[str, object] = {"blocker": blocker} if blocker is not None else {}
    return FlexERConfig(
        matcher=MatcherConfig(
            hidden_dims=(64, 32), n_features=256, epochs=matcher_epochs, seed=seed
        ),
        graph=GraphConfig(k_neighbors=k_neighbors),
        gnn=GNNConfig(hidden_dim=48, epochs=gnn_epochs, seed=seed),
        solver=solver,
        executor=executor_spec(executor),
        **kwargs,
    )


def load_scenario_benchmark(dataset: str, num_pairs: int, products: int, seed: int):
    """Generate the scenario's synthetic benchmark (lazy dataset import)."""
    from ..datasets import load_benchmark

    return load_benchmark(
        dataset, num_pairs=num_pairs, products_per_domain=products, seed=seed
    )


def benchmark_labeler(dataset: str, benchmark):
    """``(intent labeler, record-level labeling callable)`` of a benchmark."""
    from ..datasets import BENCHMARK_LABELERS

    labeler = BENCHMARK_LABELERS[dataset]
    products = benchmark.record_products

    def record_labeler(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    return labeler, record_labeler


def query_quality(
    result,
    products: Mapping[str, object],
    labeler,
) -> dict[str, object]:
    """Score a :class:`~repro.model.QueryResult` against ground truth.

    Every scored (query record, corpus record) pair is labeled with the
    benchmark's intent labeler over the underlying products; per intent
    the binary predictions are evaluated against those labels.  Returns
    a deterministic dict: per-intent F1 and observed positive rate,
    plus ``macro_f1`` and the pair count.
    """
    intents = tuple(result.intents)
    labels: dict[str, list[int]] = {intent: [] for intent in intents}
    for pair in result.pairs:
        truth = labeler.label_pair(products[pair.left_id], products[pair.right_id])
        for intent in intents:
            labels[intent].append(int(truth[intent]))

    f1: dict[str, float] = {}
    positive_rate: dict[str, float] = {}
    for intent in intents:
        label_array = np.asarray(labels[intent], dtype=np.int64)
        if label_array.size == 0:
            f1[intent] = 0.0
            positive_rate[intent] = 0.0
            continue
        evaluation = evaluate_binary(result.predictions[intent], label_array)
        f1[intent] = round(float(evaluation.f1), QUALITY_DIGITS)
        positive_rate[intent] = round(float(label_array.mean()), QUALITY_DIGITS)
    macro = round(float(np.mean(list(f1.values()))) if f1 else 0.0, QUALITY_DIGITS)
    return {
        "f1": f1,
        "positive_rate": positive_rate,
        "macro_f1": macro,
        "num_pairs": len(result.pairs),
    }


def scenario_executor(executor: object):
    """Build the online-query executor object for a scenario run.

    ``None`` and ``"serial"`` mean in-process serial execution (no
    executor object); anything else is resolved through the executor
    registry.  Executors never change results — this only affects the
    timings section.
    """
    if executor is None:
        return None
    spec = executor_spec(executor)
    if spec["type"] == "serial":
        return None
    return make_executor(spec)


@contextmanager
def timed(timings: dict[str, object], key: str):
    """Record the wall seconds of a ``with`` block under ``timings[key]``."""
    start = time.perf_counter()
    yield
    timings[key] = round(time.perf_counter() - start, 6)


class WorkloadScenario:
    """Base class of the registered workload scenarios.

    Subclasses define ``spec_type``, accept their parameters as keyword
    arguments, and implement :meth:`run`.  The spec round-trip is
    uniform: every constructor argument is a JSON-plain value captured
    in ``to_spec()``, and ``from_spec`` simply re-invokes the
    constructor — so :data:`repro.registry.SCENARIOS` can rebuild any
    scenario from its serialized spec.
    """

    #: Registry key in :data:`repro.registry.SCENARIOS`.
    spec_type = "abstract"

    def __init__(self, **params: object) -> None:
        self._params: dict[str, object] = dict(params)

    @classmethod
    def from_spec(cls, params: Mapping[str, object]) -> "WorkloadScenario":
        """Build the scenario from its spec parameters."""
        return cls(**dict(params))

    def to_spec(self) -> dict[str, object]:
        """The canonical registry spec of this scenario."""
        return {"type": self.spec_type, "params": dict(self._params)}

    def run(self, seed: int = 0, executor: object = None, name: str | None = None):
        """Execute the scenario; subclasses must override."""
        raise NotImplementedError


def require(condition: bool, message: str) -> None:
    """Raise :class:`~repro.exceptions.ScenarioError` unless ``condition``."""
    if not condition:
        raise ScenarioError(message)


def split_tail(records: Sequence[object], *counts: int):
    """Split ``records`` into a head plus tail groups of the given sizes.

    ``split_tail(records, a, b)`` returns ``(head, group_a, group_b)``
    where ``group_b`` is the last ``b`` records and ``group_a`` the
    ``a`` records before them.  Raises when the head would be empty —
    every scenario needs a non-trivial initial corpus.
    """
    total = sum(counts)
    require(
        total < len(records),
        f"scenario needs {total} stream/probe records but the corpus has "
        f"only {len(records)}",
    )
    head = list(records[: len(records) - total])
    groups = []
    offset = len(records) - total
    for count in counts:
        groups.append(list(records[offset : offset + count]))
        offset += count
    return (head, *groups)
