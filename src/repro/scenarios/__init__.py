"""Workload scenarios: streaming/temporal replay and robustness grids.

``repro.scenarios`` turns the library's moving parts — incremental
:meth:`~repro.model.ResolverModel.update`, online queries, field-level
corruption, the component registries — into *seeded, end-to-end
workloads* that produce a schema-versioned quality×latency matrix:

>>> from repro import scenarios
>>> report = scenarios.named_scenario("streaming-smoke").run(seed=0)
>>> print(report.matrix_table())  # doctest: +SKIP

Three scenario families are registered (registry family ``scenario``):

* :class:`StreamingScenario` — replay a timestamped stream through
  ``update()`` with interleaved online probe queries, measuring
  quality-over-time, staleness, compaction triggers, and per-step
  latency, then asserting exact-mode parity with a fresh union fit;
* :class:`IntentDriftScenario` — the same replay with a mid-stream
  label-distribution shift, tracking per-intent quality across it;
* :class:`RobustnessGridScenario` — corruption levels × component
  specs, one quality×latency cell per combination.

Everything outside a report's ``timings`` section is byte-reproducible
for a fixed ``(spec, seed)`` under any executor — the contract the
``scenario-smoke`` CI job enforces with ``cmp``.
"""

from __future__ import annotations

from ..registry import SCENARIOS
from .base import WorkloadScenario, make_scenario_config, query_quality
from .drift import IntentDriftScenario
from .presets import (
    HEADLINE_SCENARIOS,
    NAMED_SCENARIOS,
    build_scenario,
    named_scenario,
    scenario_names,
)
from .report import (
    SCENARIO_REPORT_KIND,
    SCENARIO_SCHEMA_VERSION,
    ScenarioReport,
    load_scenario_report,
)
from .robustness import RobustnessGridScenario
from .streaming import StreamingScenario, assert_exact_parity, timestamped_chunks

# Scenarios self-register on first package import (like repro.model's
# MODELS entry), keeping repro.registry import-cycle free.
if StreamingScenario.spec_type not in SCENARIOS.keys():
    SCENARIOS.register(StreamingScenario.spec_type, StreamingScenario)
    SCENARIOS.register(IntentDriftScenario.spec_type, IntentDriftScenario)
    SCENARIOS.register(RobustnessGridScenario.spec_type, RobustnessGridScenario)

__all__ = [
    "SCENARIO_REPORT_KIND",
    "SCENARIO_SCHEMA_VERSION",
    "HEADLINE_SCENARIOS",
    "NAMED_SCENARIOS",
    "ScenarioReport",
    "WorkloadScenario",
    "StreamingScenario",
    "IntentDriftScenario",
    "RobustnessGridScenario",
    "assert_exact_parity",
    "build_scenario",
    "load_scenario_report",
    "make_scenario_config",
    "named_scenario",
    "query_quality",
    "scenario_names",
    "timestamped_chunks",
]
