"""The incremental maintenance engine of :meth:`ResolverModel.update`.

Applying a :class:`~repro.update.delta.CorpusDelta` to a fitted model
delta-maintains every fitted component instead of refitting:

1. the corpus dataset is rewritten in place — modified records keep
   their position, new records append, deleted records stay as
   *tombstones* (so every persisted row index remains valid) and the
   labeled split parts are re-anchored onto the new dataset;
2. the candidate retriever absorbs the delta
   (:meth:`~repro.retrieval.candidates.CandidateRetriever.apply_delta`)
   and filters tombstones out of every ranking;
3. pairs the upserted records introduce (their retrieved corpus
   neighbours) are appended to the representation matrices and the
   multiplex-graph edge log, with existing node ids renumbered for the
   grown pair axis;
4. per-intent GraphSAGE corpus hidden states are refreshed only for the
   touched neighbourhoods — the frozen weights re-propagate through the
   closure of nodes whose inputs changed, level by level, leaving every
   untouched row bit-identical.

Deliberate approximations of the incremental path (each repaired by
compaction): existing nodes are not re-wired to newly introduced pairs,
tombstoned pairs keep their graph nodes, and supervision referencing
modified records goes stale.  :func:`compact_model` discards all of it
with a fresh pipeline refit over the live corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..ann.knn import ExactNearestNeighbors
from ..core.flexer import compute_representations
from ..data.pairs import CandidateSet, LabeledPair, RecordPair
from ..data.records import Dataset, Record
from ..data.splits import DatasetSplit
from ..exceptions import SchemaError, UpdateError
from ..graph.multiplex import MultiplexGraph, renumber_pair_nodes
from ..graph.sage import FrozenSAGE
from .delta import CorpusDelta
from .drift import DriftMetrics

__all__ = ["UpdateResult", "apply_delta_to_model", "compact_model", "corpus_pair_order"]


@dataclass
class UpdateResult:
    """Outcome of one applied delta (returned by ``model.update()``).

    Attributes
    ----------
    upserts, deletes:
        Sizes of the applied delta.
    added_records, modified_records, resurrected_records:
        How the upserts decomposed: brand-new ids, replaced ids, and
        previously tombstoned ids brought back.
    new_pairs:
        Candidate pairs the upserted records introduced into the graph.
    refreshed_pairs:
        Existing pairs whose representations (and dependent hidden
        states) were recomputed because a member record changed.
    drift:
        Post-update drift snapshot.
    compacted:
        Whether this update triggered a compaction refit.
    compaction_reasons:
        The thresholds that triggered it (empty when ``compacted`` is
        ``False``).
    """

    upserts: int
    deletes: int
    added_records: list[str]
    modified_records: list[str]
    resurrected_records: list[str]
    new_pairs: list[RecordPair]
    refreshed_pairs: list[RecordPair]
    drift: DriftMetrics
    compacted: bool = False
    compaction_reasons: list[str] = field(default_factory=list)

    def to_document(self) -> dict[str, object]:
        """JSON-plain summary (printed by the ``update`` CLI subcommand)."""
        return {
            "upserts": self.upserts,
            "deletes": self.deletes,
            "added_records": list(self.added_records),
            "modified_records": list(self.modified_records),
            "resurrected_records": list(self.resurrected_records),
            "new_pairs": [list(pair.as_tuple()) for pair in self.new_pairs],
            "refreshed_pairs": [list(pair.as_tuple()) for pair in self.refreshed_pairs],
            "drift": self.drift.to_document(),
            "compacted": self.compacted,
            "compaction_reasons": list(self.compaction_reasons),
        }


def corpus_pair_order(model) -> list[RecordPair]:
    """The canonical pair order of the model's per-pair matrices.

    Row ``i`` of every representation matrix (and pair ``i`` of every
    graph layer) corresponds to this order: the pipeline's combined
    candidate order — train, valid (when non-empty), test — followed by
    every pair appended by incremental updates.
    """
    pairs: list[RecordPair] = list(model.split.train.pairs)
    if len(model.split.valid) > 0:
        pairs.extend(model.split.valid.pairs)
    pairs.extend(model.split.test.pairs)
    pairs.extend(model.update_pairs)
    return pairs


def _split_record_ids(split: DatasetSplit) -> set[str]:
    """Every record id referenced by a labeled split pair."""
    ids: set[str] = set()
    for part in split:
        for pair in part.pairs:
            ids.add(pair.left_id)
            ids.add(pair.right_id)
    return ids


def _rebuilt_dataset(model, delta: CorpusDelta) -> Dataset:
    """The post-delta corpus: replacements in place, additions appended."""
    replacements = {record.record_id: record for record in delta.upserts}
    records: list[Record] = []
    for record in model.corpus:
        records.append(replacements.pop(record.record_id, record))
    records.extend(replacements[rid] for rid in delta.upserted_ids if rid in replacements)
    try:
        return Dataset(
            records=records,
            name=model.corpus.name,
            attributes=model.corpus.attributes,
        )
    except SchemaError as error:
        raise UpdateError(
            f"upserted records do not conform to the corpus schema: {error}"
        ) from error


def _reanchor_split(split: DatasetSplit, dataset: Dataset, intents) -> DatasetSplit:
    """The same labeled pairs, re-anchored onto the updated dataset."""

    def rebuilt(part: CandidateSet) -> CandidateSet:
        return CandidateSet(dataset, pairs=list(part), intents=intents)

    return DatasetSplit(
        train=rebuilt(split.train), valid=rebuilt(split.valid), test=rebuilt(split.test)
    )


def _pair_representations(model, dataset: Dataset, pair: RecordPair) -> dict[str, np.ndarray]:
    """Per-intent representation row of one pair, computed in isolation.

    One pair per call mirrors the online query path: BLAS results can
    differ in the last bit with the batch row count, so per-pair
    encoding keeps update replay bit-identical regardless of how deltas
    were batched.
    """
    zeros = {intent: 0 for intent in model.intents}
    pair_set = CandidateSet(
        dataset, pairs=[LabeledPair(pair=pair, labels=zeros)], intents=model.intents
    )
    features = compute_representations(model.solver, pair_set, model.augment_with_scores)
    return {intent: np.asarray(features[intent][0], dtype=np.float64) for intent in model.intents}


def _introduced_pairs(
    model, delta: CorpusDelta, existing: set[RecordPair], pair_k: int
) -> list[RecordPair]:
    """Candidate pairs the upserted records introduce, in a stable order.

    Each upserted record is retrieved against the updated corpus
    individually (tombstones already filtered by the retriever); pairs
    already present in the split or a previous update are skipped.
    """
    if pair_k <= 0:
        return []
    introduced: list[RecordPair] = []
    seen = set(existing)
    for record in delta.upserts:
        for corpus_id in model.retriever.retrieve([record], pair_k)[0]:
            if corpus_id == record.record_id:
                continue
            pair = RecordPair(record.record_id, corpus_id)
            if pair in seen:
                continue
            seen.add(pair)
            introduced.append(pair)
    return introduced


def _append_graph_pairs(
    model,
    representations: dict[str, np.ndarray],
    old_num_pairs: int,
    new_num_pairs: int,
) -> MultiplexGraph:
    """Rebuild the graph with the grown pair axis and attach the new nodes.

    Existing edges are renumbered for the new layer stride (their order,
    and hence every old node's aggregation, is preserved exactly).  Each
    new pair receives the builder's edge pattern *as a target only*:
    intra-layer edges from its ``k`` nearest same-layer neighbours and
    inter-layer edges from its own peers in every other layer.  Existing
    nodes are deliberately not re-wired — their persisted hidden states
    must stay valid — which is the documented approximation compaction
    repairs.
    """
    payload = model.graph_payload
    num_layers = len(model.intents)
    feature_dim = int(np.asarray(payload["features"]).shape[1])
    features = np.empty((num_layers, new_num_pairs, feature_dim), dtype=np.float64)
    for layer, intent in enumerate(model.intents):
        features[layer] = representations[intent]
    graph = MultiplexGraph(
        intents=model.intents,
        num_pairs=new_num_pairs,
        features=features.reshape(num_layers * new_num_pairs, feature_dim),
        intra_edge_count=int(payload["intra_edge_count"]),
        inter_edge_count=int(payload["inter_edge_count"]),
    )
    graph.add_edges(
        renumber_pair_nodes(payload["sources"], old_num_pairs, new_num_pairs),
        renumber_pair_nodes(payload["targets"], old_num_pairs, new_num_pairs),
    )
    num_new = new_num_pairs - old_num_pairs
    if num_new == 0:
        return graph
    new_pair_indexes = np.arange(old_num_pairs, new_num_pairs, dtype=np.int64)
    k_graph = min(int(model.config.graph.k_neighbors), new_num_pairs - 1)
    if k_graph > 0:
        for layer, intent in enumerate(model.intents):
            matrix = representations[intent]
            index = ExactNearestNeighbors(metric=model.config.graph.metric).fit(matrix)
            result = index.search(
                matrix[old_num_pairs:],
                k_graph,
                exclude_self=True,
                query_offset=old_num_pairs,
            )
            effective_k = result.indices.shape[1]
            layer_start = layer * new_num_pairs
            graph.add_edges(
                layer_start + result.indices.ravel(),
                layer_start + np.repeat(new_pair_indexes, effective_k),
            )
            graph.intra_edge_count += num_new * effective_k
    for target_layer in range(num_layers):
        for source_layer in range(num_layers):
            if source_layer == target_layer:
                continue
            graph.add_edges(
                source_layer * new_num_pairs + new_pair_indexes,
                target_layer * new_num_pairs + new_pair_indexes,
            )
    graph.inter_edge_count += num_new * num_layers * (num_layers - 1)
    return graph


def _closure(operator, touched: np.ndarray) -> np.ndarray:
    """Nodes whose next-level hidden state depends on a touched node.

    ``operator[v, u] != 0`` means ``u`` sends messages to ``v``; the
    next level must be recomputed for every touched node and every node
    receiving from one.
    """
    if touched.size == 0:
        return touched
    receivers = operator[:, touched].nonzero()[0]
    return np.unique(np.concatenate([touched, receivers]))


def _refresh_hidden_states(
    model,
    graph: MultiplexGraph,
    old_num_pairs: int,
    touched_pair_indexes: Sequence[int],
) -> None:
    """Recompute per-intent hidden levels for the touched neighbourhoods.

    New pairs (indexes ``>= old_num_pairs``) have no stored state and
    are always computed; existing rows are recomputed only inside the
    propagation closure of the touched nodes.  The closure recompute is
    row-for-row the same arithmetic as a full forward pass (a CSR row
    slice aggregates exactly like the full operator), so refreshed rows
    match a from-scratch propagation bit-for-bit and untouched rows are
    left physically untouched.
    """
    num_layers = graph.num_intents
    new_num_pairs = graph.num_pairs
    pair_indexes = np.concatenate(
        [
            np.asarray(sorted(touched_pair_indexes), dtype=np.int64),
            np.arange(old_num_pairs, new_num_pairs, dtype=np.int64),
        ]
    )
    if pair_indexes.size == 0:
        return
    operator = graph.aggregation_operator(model.config.gnn.aggregator)
    features = np.asarray(graph.features, dtype=np.float64)
    layer_offsets = np.arange(num_layers, dtype=np.int64)[:, np.newaxis] * new_num_pairs
    touched_nodes = np.unique((layer_offsets + pair_indexes[np.newaxis, :]).ravel())

    for intent in model.intents:
        frozen = FrozenSAGE(model.gnn_states[intent], model.config.gnn)
        # Grow every stored level to the new pair axis; new slots start
        # at zero and are filled by the propagation below.
        expanded: list[np.ndarray] = []
        for stored in model.gnn_hiddens[intent]:
            stored = np.asarray(stored, dtype=np.float64)
            width = stored.shape[1]
            grown = np.zeros((num_layers * new_num_pairs, width), dtype=np.float64)
            grown.reshape(num_layers, new_num_pairs, width)[
                :, :old_num_pairs, :
            ] = stored.reshape(num_layers, old_num_pairs, width)
            expanded.append(grown)
        levels: list[np.ndarray] = [features, *expanded]
        changed = touched_nodes
        for level in range(frozen.num_convolutions - 1):
            changed = _closure(operator, changed)
            if changed.size == 0:
                break
            aggregated = np.asarray(operator[changed] @ levels[level])
            levels[level + 1][changed] = frozen.convolve(
                level, levels[level][changed], aggregated
            )
        model.gnn_hiddens[intent] = levels[1:]


def apply_delta_to_model(model, delta: CorpusDelta, pair_k: int | None = None) -> UpdateResult:
    """Absorb one validated delta into ``model`` in place.

    Parameters
    ----------
    model:
        The fitted :class:`~repro.model.ResolverModel` to maintain.
    delta:
        A delta validated by :func:`~repro.update.delta.build_delta`
        against the model's current corpus state.
    pair_k:
        Corpus neighbours retrieved per upserted record when
        introducing new candidate pairs; defaults to the graph's
        ``k_neighbors``.

    Segment recording and compaction-policy decisions belong to the
    caller (:meth:`ResolverModel.update`); this function performs the
    state mutation and drift bookkeeping only.
    """
    if pair_k is None:
        pair_k = int(model.config.graph.k_neighbors)

    old_corpus = model.corpus
    added = [rid for rid in delta.upserted_ids if rid not in old_corpus]
    resurrected = [rid for rid in delta.upserted_ids if rid in model.tombstones]
    modified = [
        rid
        for rid in delta.upserted_ids
        if rid in old_corpus and rid not in model.tombstones
    ]

    # 1. Corpus, split, and tombstone bookkeeping.
    dataset = _rebuilt_dataset(model, delta)
    model.tombstones -= set(resurrected)
    model.tombstones |= set(delta.deletes)
    split_ids = _split_record_ids(model.split)
    stale = (set(modified) | set(resurrected) | set(delta.deletes)) & split_ids
    model._stale_supervision += len(stale)
    model.split = _reanchor_split(model.split, dataset, model.intents)
    model.corpus = dataset

    # 2. Retriever delta.
    model.retriever.apply_delta(dataset, list(delta.upserted_ids), model.tombstones)

    # 3. Representations: refresh touched rows, append introduced pairs.
    pair_order = corpus_pair_order(model)
    old_num_pairs = int(model.graph_payload["num_pairs"])
    if len(pair_order) != old_num_pairs:
        raise UpdateError(
            f"model pair bookkeeping is inconsistent: {len(pair_order)} canonical "
            f"pairs vs {old_num_pairs} graph pairs"
        )
    changed_ids = set(modified) | set(resurrected)
    touched_pair_indexes = [
        index
        for index, pair in enumerate(pair_order)
        if pair.left_id in changed_ids or pair.right_id in changed_ids
    ]
    refreshed_pairs = [pair_order[index] for index in touched_pair_indexes]
    new_pairs = _introduced_pairs(model, delta, set(pair_order), pair_k)
    new_num_pairs = old_num_pairs + len(new_pairs)

    refreshed_rows = {
        index: _pair_representations(model, dataset, pair_order[index])
        for index in touched_pair_indexes
    }
    new_rows = [_pair_representations(model, dataset, pair) for pair in new_pairs]
    representations: dict[str, np.ndarray] = {}
    for intent in model.intents:
        matrix = np.array(model.representations[intent], dtype=np.float64)
        for index, rows in refreshed_rows.items():
            matrix[index] = rows[intent]
        if new_rows:
            matrix = np.concatenate(
                [matrix, np.stack([rows[intent] for rows in new_rows])], axis=0
            )
        representations[intent] = matrix
    model.representations = representations
    model.update_pairs.extend(new_pairs)

    # 4. Graph append + touched-neighbourhood hidden refresh.
    graph = _append_graph_pairs(model, representations, old_num_pairs, new_num_pairs)
    _refresh_hidden_states(model, graph, old_num_pairs, touched_pair_indexes)
    model.graph_payload = graph.to_payload()

    # 5. Drift bookkeeping + cache invalidation.
    model._touched_ids |= set(added) | changed_ids | set(delta.deletes)
    model._update_generation += 1
    model._fingerprint = None
    model._default_session = None
    return UpdateResult(
        upserts=len(delta.upserts),
        deletes=len(delta.deletes),
        added_records=added,
        modified_records=modified,
        resurrected_records=resurrected,
        new_pairs=new_pairs,
        refreshed_pairs=refreshed_pairs,
        drift=model.drift_metrics(),
    )


def compact_model(model) -> None:
    """Discard incremental state with a full refit over the live corpus.

    Tombstoned records are dropped for real, split pairs referencing
    them are removed, and the staged pipeline refits the model from
    scratch (deterministically, through a fresh private cache).  The
    refitted state replaces the model's in place; update pairs, touched
    ids, stale-supervision counters, and pending segments are all reset,
    and the model is marked rebased so the next ``save()`` writes a full
    artifact instead of appending segments.
    """
    # Imported lazily: repro.pipeline.runner imports repro.model at
    # start-up, which must not require this module first.
    from ..pipeline.cache import ArtifactCache
    from ..pipeline.runner import PipelineRunner

    tombstones = set(model.tombstones)
    live_records = [
        record for record in model.corpus if record.record_id not in tombstones
    ]
    if not live_records:
        raise UpdateError("compaction would leave an empty corpus")
    dataset = Dataset(
        records=live_records, name=model.corpus.name, attributes=model.corpus.attributes
    )

    def rebuilt(part: CandidateSet) -> CandidateSet:
        kept = [
            labeled
            for labeled in part
            if labeled.pair.left_id not in tombstones
            and labeled.pair.right_id not in tombstones
        ]
        return CandidateSet(dataset, pairs=kept, intents=model.intents)

    split = DatasetSplit(
        train=rebuilt(model.split.train),
        valid=rebuilt(model.split.valid),
        test=rebuilt(model.split.test),
    )
    if len(split.train) == 0 or len(split.test) == 0:
        raise UpdateError(
            "compaction dropped every train or test pair; the deletes have "
            "invalidated too much supervision for a refit"
        )
    runner = PipelineRunner(
        cache=ArtifactCache(),
        augment_with_scores=model.augment_with_scores,
        feature_config=model.feature_config,
    )
    fresh = runner.fit_model(
        split, model.intents, config=model.config, retriever=model.retriever_spec
    ).model

    model.corpus = fresh.corpus
    model.split = fresh.split
    model.solver = fresh.solver
    model.representations = fresh.representations
    model.graph_payload = fresh.graph_payload
    model.gnn_states = fresh.gnn_states
    model.gnn_hiddens = fresh.gnn_hiddens
    model.retriever = fresh.retriever
    model.tombstones = set()
    model.update_pairs = []
    model.update_segments = []
    model._touched_ids = set()
    model._stale_supervision = 0
    model._persisted_segments = 0
    model._rebased = True
    model._update_generation += 1
    model._fingerprint = None
    model._default_session = None
