"""Validated corpus deltas and their persisted segment form.

A :class:`CorpusDelta` is one batch of corpus maintenance — records to
upsert (insert new or replace existing) and record ids to delete.  The
update engine (:mod:`repro.update.engine`) applies deltas to a fitted
:class:`~repro.model.ResolverModel`; each applied delta is recorded as an
:class:`UpdateSegment` so ``save()`` can persist only the deltas and
``load()`` can replay them over the base artifact.

Segments are chained by content fingerprint: every segment names the
fingerprint of its parent (the base artifact for the first segment, the
previous segment otherwise), so a reader detects mixed-up or tampered
sidecar files before replaying them.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Mapping, Sequence

from ..data.records import Dataset, Record
from ..exceptions import DataError, UpdateError
from ..pipeline.fingerprint import digest

__all__ = [
    "UPDATE_SEGMENT_KIND",
    "CorpusDelta",
    "TornSegmentWarning",
    "UpdateSegment",
    "build_delta",
    "fingerprint_segment",
    "read_segment_chain",
]

#: Artifact ``kind`` marker of persisted update segments.
UPDATE_SEGMENT_KIND = "resolver-model-update"


@dataclass(frozen=True)
class CorpusDelta:
    """One validated batch of corpus upserts and deletes.

    Attributes
    ----------
    upserts:
        Records to insert (new ids) or replace (existing ids), in
        application order.
    deletes:
        Existing record ids to delete (tombstone until compaction).
    """

    upserts: tuple[Record, ...]
    deletes: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.upserts) + len(self.deletes)

    @property
    def upserted_ids(self) -> tuple[str, ...]:
        """Record ids touched by the upserts, in application order."""
        return tuple(record.record_id for record in self.upserts)

    def to_document(self) -> dict[str, object]:
        """JSON-plain form of the delta (persisted in segment metadata)."""
        return {
            "upserts": [
                {
                    "record_id": record.record_id,
                    "source": record.source,
                    "values": dict(record.values),
                }
                for record in self.upserts
            ],
            "deletes": list(self.deletes),
        }

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "CorpusDelta":
        """Rebuild a delta from :meth:`to_document` output."""
        try:
            upserts = tuple(
                Record(
                    record_id=entry["record_id"],
                    values=entry["values"],
                    source=entry["source"],
                )
                for entry in document["upserts"]
            )
            deletes = tuple(str(record_id) for record_id in document["deletes"])
        except (KeyError, TypeError) as error:
            raise UpdateError(f"malformed update-segment delta: {error}") from error
        return cls(upserts=upserts, deletes=deletes)


def build_delta(
    corpus: Dataset,
    tombstones: frozenset[str] | set[str],
    upserts: Sequence[Record] = (),
    deletes: Sequence[str] = (),
) -> CorpusDelta:
    """Validate raw upserts/deletes against the current corpus state.

    Raises :class:`~repro.exceptions.UpdateError` for empty deltas,
    non-:class:`~repro.data.records.Record` upserts, duplicate ids inside
    one batch, records outside the corpus schema, deletes of unknown or
    already-deleted ids, and ids both upserted and deleted at once.
    """
    upsert_list = list(upserts)
    delete_list = [str(record_id) for record_id in deletes]
    if not upsert_list and not delete_list:
        raise UpdateError("update requires at least one upsert or delete")
    schema = set(corpus.attributes or ())
    seen: set[str] = set()
    for record in upsert_list:
        if not isinstance(record, Record):
            raise UpdateError(
                f"upserts accept Record objects, got {type(record).__name__}"
            )
        if record.record_id in seen:
            raise UpdateError(f"duplicate upsert record id: {record.record_id!r}")
        seen.add(record.record_id)
        if schema:
            unknown = set(record.attributes) - schema
            if unknown:
                raise UpdateError(
                    f"upsert record {record.record_id!r} has attributes outside "
                    f"the corpus schema: {sorted(unknown)}"
                )
    delete_seen: set[str] = set()
    for record_id in delete_list:
        if record_id in delete_seen:
            raise UpdateError(f"duplicate delete record id: {record_id!r}")
        delete_seen.add(record_id)
        if record_id not in corpus:
            raise UpdateError(f"cannot delete unknown record {record_id!r}")
        if record_id in tombstones:
            raise UpdateError(f"record {record_id!r} is already deleted")
        if record_id in seen:
            raise UpdateError(
                f"record {record_id!r} appears in both upserts and deletes"
            )
    return CorpusDelta(upserts=tuple(upsert_list), deletes=tuple(delete_list))


def fingerprint_segment(
    index: int, parent_fingerprint: str, delta_document: Mapping[str, object]
) -> str:
    """Chained content fingerprint of one update segment."""
    return digest("update-segment", index, parent_fingerprint, delta_document)


@dataclass(frozen=True)
class UpdateSegment:
    """One applied delta, positioned in the fingerprint chain of a model.

    Attributes
    ----------
    index:
        1-based position in the chain (matches the sidecar file name).
    delta:
        The applied corpus delta.
    base_fingerprint:
        Fingerprint of the base artifact the chain anchors to.
    parent_fingerprint:
        Fingerprint of the previous link (the base for segment 1).
    fingerprint:
        This segment's own chained fingerprint.
    """

    index: int
    delta: CorpusDelta
    base_fingerprint: str
    parent_fingerprint: str
    fingerprint: str

    @classmethod
    def build(
        cls, index: int, delta: CorpusDelta, base_fingerprint: str, parent_fingerprint: str
    ) -> "UpdateSegment":
        """Assemble a segment, computing its chained fingerprint."""
        return cls(
            index=int(index),
            delta=delta,
            base_fingerprint=base_fingerprint,
            parent_fingerprint=parent_fingerprint,
            fingerprint=fingerprint_segment(index, parent_fingerprint, delta.to_document()),
        )

    def to_metadata(self) -> dict[str, object]:
        """The artifact metadata written to the segment's sidecar file."""
        return {
            "kind": UPDATE_SEGMENT_KIND,
            "segment_index": self.index,
            "base_fingerprint": self.base_fingerprint,
            "parent_fingerprint": self.parent_fingerprint,
            "fingerprint": self.fingerprint,
            "delta": self.delta.to_document(),
        }

    @classmethod
    def from_metadata(
        cls, metadata: Mapping[str, object], source: str = "<segment>"
    ) -> "UpdateSegment":
        """Rebuild a segment from sidecar metadata, verifying its fingerprint."""
        if metadata.get("kind") != UPDATE_SEGMENT_KIND:
            raise UpdateError(f"{source} is not a resolver-model update segment")
        try:
            index = int(metadata["segment_index"])
            base = str(metadata["base_fingerprint"])
            parent = str(metadata["parent_fingerprint"])
            stored = str(metadata["fingerprint"])
            delta = CorpusDelta.from_document(metadata["delta"])
        except (KeyError, TypeError, ValueError) as error:
            raise UpdateError(f"malformed update segment {source}: {error}") from error
        expected = fingerprint_segment(index, parent, delta.to_document())
        if stored != expected:
            raise UpdateError(
                f"update segment {source} failed fingerprint verification "
                f"(stored {stored[:12]}…, recomputed {expected[:12]}…); the file "
                f"is corrupt or was modified after saving"
            )
        return cls(
            index=index,
            delta=delta,
            base_fingerprint=base,
            parent_fingerprint=parent,
            fingerprint=stored,
        )


class TornSegmentWarning(UserWarning):
    """Emitted when a torn trailing update segment is recovered.

    The segment file was unreadable — the classic signature of a process
    killed mid-write before atomic-rename protection existed, or of a
    filesystem that lost the tail of the chain — and was quarantined so
    the model loads cleanly from the last valid chain link.
    """


#: Suffix appended to quarantined (torn) segment files.  Quarantined
#: files no longer match the ``*.upd-NNNN.npz`` chain pattern, so they
#: are invisible to replay but preserved for post-mortem inspection.
TORN_SEGMENT_SUFFIX = ".torn"


def read_segment_chain(
    base: str | Path, recover: bool = True
) -> tuple[list[tuple[Path, "UpdateSegment"]], list[Path]]:
    """Read and verify the update-segment sidecars of ``base``, in order.

    Returns ``(segments, recovered)`` where ``segments`` pairs each
    sidecar path with its fingerprint-verified :class:`UpdateSegment`
    and ``recovered`` lists quarantined torn files (empty on a healthy
    chain).

    Crash-tail recovery: when ``recover`` is true and the *trailing*
    segment file is unreadable (:class:`~repro.exceptions.DataError` —
    truncated or half-written, e.g. by a crash mid-append), the file is
    renamed aside with :data:`TORN_SEGMENT_SUFFIX`, a
    :class:`TornSegmentWarning` is emitted, and the chain is cleanly
    truncated at the last valid link instead of failing the whole load.
    Only unreadable *tails* recover: an unreadable segment with valid
    successors chained on it cannot have been a torn append (appends are
    sequential), and a *readable* segment that fails fingerprint or
    chain verification is tampering, not a crash — both still raise.
    """
    from ..data.serialization import list_segment_paths, read_artifact

    segment_files = list_segment_paths(base)
    segments: list[tuple[Path, UpdateSegment]] = []
    recovered: list[Path] = []
    for position, segment_file in enumerate(segment_files):
        try:
            _, metadata = read_artifact(segment_file)
        except DataError as error:
            if recover and position == len(segment_files) - 1:
                quarantine = segment_file.with_name(
                    segment_file.name + TORN_SEGMENT_SUFFIX
                )
                os.replace(segment_file, quarantine)
                recovered.append(segment_file)
                warnings.warn(
                    f"update segment {segment_file} is unreadable ({error}); "
                    f"recovered the chain at its last valid link and quarantined "
                    f"the torn file as {quarantine.name}",
                    TornSegmentWarning,
                    stacklevel=2,
                )
                break
            raise
        segments.append(
            (segment_file, UpdateSegment.from_metadata(metadata, source=str(segment_file)))
        )
    return segments, recovered
