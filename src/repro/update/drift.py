"""Drift accounting for incrementally maintained models.

Every applied delta moves the model further from its fitted state: the
corpus accumulates tombstones, touched records pile up, and supervision
may reference records whose values changed after training.  This module
quantifies that drift (:class:`DriftMetrics`) and decides when it has
grown large enough that the approximations of the incremental path
should be discarded for a full compaction refit
(:class:`CompactionPolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompactionPolicy", "DriftMetrics"]


@dataclass(frozen=True)
class DriftMetrics:
    """Snapshot of how far a model has drifted from its fitted state.

    Attributes
    ----------
    corpus_records:
        Records in the model's dataset, tombstoned ones included.
    tombstone_records:
        Deleted records still occupying index rows.
    touched_records:
        Distinct record ids modified, added, or deleted since the fit
        (or the last compaction).
    update_generations:
        Number of deltas applied since the fit (or last compaction).
    stale_supervision:
        Count of updates that modified or deleted a record referenced by
        a labeled split pair — the cases where exact-mode parity with a
        fresh refit is no longer guaranteed.
    """

    corpus_records: int
    tombstone_records: int
    touched_records: int
    update_generations: int
    stale_supervision: int

    @property
    def live_records(self) -> int:
        """Records that are not tombstoned."""
        return self.corpus_records - self.tombstone_records

    @property
    def touched_fraction(self) -> float:
        """Fraction of the corpus touched since the fit."""
        if self.corpus_records == 0:
            return 0.0
        return self.touched_records / self.corpus_records

    @property
    def tombstone_ratio(self) -> float:
        """Fraction of corpus rows occupied by tombstones."""
        if self.corpus_records == 0:
            return 0.0
        return self.tombstone_records / self.corpus_records

    def to_document(self) -> dict[str, object]:
        """JSON-plain form (reported by ``describe()`` and the CLI)."""
        return {
            "corpus_records": self.corpus_records,
            "live_records": self.live_records,
            "tombstone_records": self.tombstone_records,
            "tombstone_ratio": self.tombstone_ratio,
            "touched_records": self.touched_records,
            "touched_fraction": self.touched_fraction,
            "update_generations": self.update_generations,
            "stale_supervision": self.stale_supervision,
        }


@dataclass(frozen=True)
class CompactionPolicy:
    """Thresholds above which drift triggers a compaction refit.

    The policy is deliberately conservative: incremental updates are
    three orders of magnitude cheaper than a refit, so compaction should
    fire on accumulated drift, not on every delta.

    Attributes
    ----------
    max_touched_fraction:
        Compact once this fraction of the corpus has been touched.
    max_tombstone_ratio:
        Compact once this fraction of index rows are tombstones.
    max_stale_supervision:
        Compact once this many updates have invalidated labeled split
        records (0 disables the trigger only when negative).
    """

    max_touched_fraction: float = 0.5
    max_tombstone_ratio: float = 0.2
    max_stale_supervision: int = -1

    def reasons(self, metrics: DriftMetrics) -> list[str]:
        """Human-readable list of thresholds ``metrics`` exceeds."""
        reasons: list[str] = []
        if metrics.touched_fraction > self.max_touched_fraction:
            reasons.append(
                f"touched_fraction {metrics.touched_fraction:.3f} > "
                f"{self.max_touched_fraction:.3f}"
            )
        if metrics.tombstone_ratio > self.max_tombstone_ratio:
            reasons.append(
                f"tombstone_ratio {metrics.tombstone_ratio:.3f} > "
                f"{self.max_tombstone_ratio:.3f}"
            )
        if 0 <= self.max_stale_supervision < metrics.stale_supervision:
            reasons.append(
                f"stale_supervision {metrics.stale_supervision} > "
                f"{self.max_stale_supervision}"
            )
        return reasons

    def should_compact(self, metrics: DriftMetrics) -> bool:
        """Whether the drift of ``metrics`` warrants a compaction refit."""
        return bool(self.reasons(metrics))
