"""Incremental corpus maintenance for fitted resolver models.

``repro.update`` lets a fitted :class:`~repro.model.ResolverModel`
absorb corpus **upserts** and **deletes** without a refit
(:meth:`~repro.model.ResolverModel.update`): retriever indexes are
delta-maintained, new candidate pairs are appended to the multiplex
graph, and per-intent GraphSAGE hidden states are refreshed only for
the touched neighbourhoods.  Each applied delta is recorded as a
fingerprint-chained :class:`UpdateSegment`, so ``save()`` appends
small sidecar segments next to the unchanged base artifact and
``load()`` replays them deterministically.  Accumulated drift
(:class:`DriftMetrics`) triggers a full compaction refit through
:class:`CompactionPolicy`.
"""

from .delta import (
    UPDATE_SEGMENT_KIND,
    CorpusDelta,
    TornSegmentWarning,
    UpdateSegment,
    build_delta,
    fingerprint_segment,
    read_segment_chain,
)
from .drift import CompactionPolicy, DriftMetrics
from .engine import (
    UpdateResult,
    apply_delta_to_model,
    compact_model,
    corpus_pair_order,
)

__all__ = [
    "UPDATE_SEGMENT_KIND",
    "CompactionPolicy",
    "CorpusDelta",
    "DriftMetrics",
    "TornSegmentWarning",
    "UpdateResult",
    "UpdateSegment",
    "apply_delta_to_model",
    "build_delta",
    "compact_model",
    "corpus_pair_order",
    "fingerprint_segment",
    "read_segment_chain",
]
