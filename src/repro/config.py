"""Configuration objects for the FlexER reproduction.

The configuration mirrors the hyper-parameters reported in Section 5.2 of
the paper (matcher fine-tuning, multiplex-graph construction, and GNN
training), scaled to a CPU-only numpy implementation.  All values are
plain dataclasses so they serialize naturally and are easy to sweep in
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from collections.abc import Mapping
from typing import Any

from ._spec import normalize_spec
from .exceptions import ConfigurationError
from .faults.retry import RetryPolicy, as_retry_policy


@dataclass(frozen=True)
class MatcherConfig:
    """Hyper-parameters of the per-intent pair matcher (DITTO analogue).

    The paper fine-tunes RoBERTa with a learning rate of 3e-5 for 15
    epochs and batch size 16; our numpy MLP uses a comparable budget over
    hashed character n-gram features.

    Attributes
    ----------
    hidden_dims:
        Sizes of the hidden layers; the last hidden layer is the latent
        pair representation used to initialize graph nodes (the ``[CLS]``
        analogue, 768-dimensional in the paper).
    n_features:
        Dimensionality of the hashed n-gram feature space.
    epochs, batch_size, learning_rate, weight_decay:
        Standard training knobs for the Adam optimizer.
    l2_similarity_features:
        Whether to append classic string-similarity features (Jaccard,
        Jaro-Winkler, ...) to the hashed representation.
    seed:
        Seed for parameter initialization and batch shuffling.
    """

    hidden_dims: tuple[int, ...] = (96, 48)
    n_features: int = 512
    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 3e-3
    weight_decay: float = 1e-5
    l2_similarity_features: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.hidden_dims:
            raise ConfigurationError("hidden_dims must contain at least one layer")
        if any(d <= 0 for d in self.hidden_dims):
            raise ConfigurationError("hidden layer sizes must be positive")
        if self.n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")

    @property
    def representation_dim(self) -> int:
        """Dimension of the latent pair representation (last hidden layer)."""
        return self.hidden_dims[-1]


@dataclass(frozen=True)
class GraphConfig:
    """Hyper-parameters of the multiplex intent graph (Section 4.1).

    Attributes
    ----------
    k_neighbors:
        Number of intra-layer nearest neighbours per node (``k`` in the
        paper; 0 disables intra-layer edges as in the Table 8 ablation).
    metric:
        Distance used by the kNN search ("l2" as in the paper, or
        "cosine").
    include_inter_layer:
        Whether to add inter-layer edges connecting the same record pair
        across intent layers (disabled only for ablations).
    """

    k_neighbors: int = 6
    metric: str = "l2"
    include_inter_layer: bool = True

    def __post_init__(self) -> None:
        if self.k_neighbors < 0:
            raise ConfigurationError("k_neighbors must be non-negative")
        if self.metric not in ("l2", "cosine"):
            raise ConfigurationError(f"unsupported kNN metric: {self.metric!r}")


@dataclass(frozen=True)
class GNNConfig:
    """Hyper-parameters of the GraphSAGE model (Section 5.2.1).

    The paper trains 2- or 3-layer GraphSAGE for 150 epochs with Adam
    (lr 0.01, weight decay 5e-4); hidden sizes are swept over
    {100, ..., 500} with the three-layer second hidden dim set to half of
    the first.
    """

    num_layers: int = 2
    hidden_dim: int = 64
    epochs: int = 60
    learning_rate: float = 0.01
    weight_decay: float = 5e-4
    aggregator: str = "mean"
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_layers not in (2, 3):
            raise ConfigurationError("num_layers must be 2 or 3 (as in the paper)")
        if self.hidden_dim <= 0:
            raise ConfigurationError("hidden_dim must be positive")
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")
        if self.aggregator not in ("mean", "sum"):
            raise ConfigurationError(f"unsupported aggregator: {self.aggregator!r}")


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of the pipeline's content-addressed artifact cache.

    The cache is deliberately *not* part of :class:`FlexERConfig`: it has
    no effect on results, so it never participates in stage fingerprints.

    Attributes
    ----------
    directory:
        Root directory of the on-disk store.  ``None`` keeps artifacts in
        memory only (the default for tests and one-shot runs).
    enabled:
        When false every lookup misses and nothing is stored, which turns
        the staged runner into a plain cold-path executor.
    keep_in_memory:
        Whether artifacts are also retained in an in-process map so
        repeated lookups skip disk entirely.
    """

    directory: str | None = None
    enabled: bool = True
    keep_in_memory: bool = True

    def __post_init__(self) -> None:
        if self.directory is not None and not str(self.directory):
            raise ConfigurationError("cache directory must be a non-empty path or None")


@dataclass(frozen=True)
class FlexERConfig:
    """End-to-end configuration of the FlexER pipeline.

    Besides the hyper-parameter sections, the configuration names the
    pluggable components of a run as *registry specs* — either a bare
    string key or a ``{"type": ..., **params}`` mapping (see
    :mod:`repro.registry`).  Specs are normalized to the canonical
    ``{"type": ..., "params": {...}}`` form at construction, so two ways
    of writing the same component fingerprint identically and warm
    pipeline re-runs hit the artifact cache.

    Attributes
    ----------
    solver:
        The intent-representation solver (``"in_parallel"`` — the
        paper's main configuration, ``"multi_label"``, or ``"naive"``).
    blocker:
        The blocking strategy used by :func:`repro.resolve` when
        starting from raw records (``"qgram"``, ``"token"``, ``"full"``).
    graph_builder:
        The multiplex graph construction (``"intent_graph"``).
    classifier:
        The per-intent node classifier (``"graphsage"``).
    executor:
        The sharded-execution backend of the run (``"serial"``,
        ``"threads"``, ``"processes"``; e.g.
        ``{"type": "processes", "workers": 4}``).  Executors never
        change results — every sharded stage is bit-identical to its
        serial run — so this spec deliberately does *not* participate
        in pipeline stage fingerprints and cached artifacts stay valid
        across executor choices.
    retry:
        Optional :class:`~repro.faults.RetryPolicy` (or its mapping
        form) applied to failed executor shards: each failed shard is
        rerun after capped exponential backoff, with broken process
        pools respawned between attempts.  ``None`` (the default)
        disables retrying.  Like ``executor``, retry never changes
        results — retried shards are pure functions of their payloads —
        so it does not participate in stage fingerprints either.
    """

    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    graph: GraphConfig = field(default_factory=GraphConfig)
    gnn: GNNConfig = field(default_factory=GNNConfig)
    solver: str | Mapping[str, Any] = "in_parallel"
    blocker: str | Mapping[str, Any] = "qgram"
    graph_builder: str | Mapping[str, Any] = "intent_graph"
    classifier: str | Mapping[str, Any] = "graphsage"
    executor: str | Mapping[str, Any] = "serial"
    retry: RetryPolicy | Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        for name in ("solver", "blocker", "graph_builder", "classifier", "executor"):
            spec = normalize_spec(getattr(self, name), context=f"FlexERConfig.{name}")
            object.__setattr__(self, name, spec)
        object.__setattr__(self, "retry", as_retry_policy(self.retry))

    def to_dict(self) -> dict[str, Any]:
        """Return a plain-dict view suitable for logging or JSON dumps."""
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FlexERConfig":
        """Rebuild a configuration from a :meth:`to_dict` document.

        This is the inverse used by persisted
        :class:`~repro.model.ResolverModel` artifacts: the JSON-plain
        document round-trips through nested dataclass construction
        (tuples restored from lists), so
        ``FlexERConfig.from_dict(config.to_dict()) == config``.
        """
        document = dict(document)
        matcher = dict(document.get("matcher", {}))
        if "hidden_dims" in matcher:
            matcher["hidden_dims"] = tuple(matcher["hidden_dims"])
        return cls(
            matcher=MatcherConfig(**matcher),
            graph=GraphConfig(**dict(document.get("graph", {}))),
            gnn=GNNConfig(**dict(document.get("gnn", {}))),
            solver=document.get("solver", "in_parallel"),
            blocker=document.get("blocker", "qgram"),
            graph_builder=document.get("graph_builder", "intent_graph"),
            classifier=document.get("classifier", "graphsage"),
            executor=document.get("executor", "serial"),
            retry=document.get("retry"),
        )

    @classmethod
    def fast(cls) -> "FlexERConfig":
        """A configuration scaled down for unit tests and examples."""
        return cls(
            matcher=MatcherConfig(hidden_dims=(32, 16), n_features=128, epochs=8),
            graph=GraphConfig(k_neighbors=3),
            gnn=GNNConfig(hidden_dim=24, epochs=20),
        )
