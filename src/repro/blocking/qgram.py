"""Shared q-gram blocker.

The paper's AmazonMI benchmark keeps record pairs that share at least one
character 4-gram (Section 5.1, following the Magellan blocker), and the
WDC cross-category expansion uses the same rule.  This blocker builds an
inverted index from q-grams to records and emits pairs co-occurring in at
least ``min_shared`` postings lists.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..exceptions import BlockingError
from ..perf.instrument import profiled
from ..text.memo import TextMemo
from . import base
from .base import Blocker, BlockingStats, join_blocks


class QGramBlocker(Blocker):
    """Keep pairs of records sharing at least ``min_shared`` character q-grams.

    Parameters
    ----------
    q:
        Gram length (4 in the paper).
    min_shared:
        Minimum number of distinct shared q-grams required to keep a pair.
    attributes:
        Attributes whose text participates in blocking; defaults to all.
    cross_source_only:
        Restrict pairs to records from different sources (clean-clean).
    max_block_size:
        Q-grams indexing more than this many records are skipped (they
        behave as stop-grams and would otherwise produce a quadratic
        blow-up); ``None`` disables the cap.
    """

    spec_type = "qgram"

    def __init__(
        self,
        q: int = 4,
        min_shared: int = 1,
        attributes: Iterable[str] | None = None,
        cross_source_only: bool = False,
        max_block_size: int | None = 200,
    ) -> None:
        if q <= 0:
            raise BlockingError("q must be positive")
        if min_shared <= 0:
            raise BlockingError("min_shared must be positive")
        if max_block_size is not None and max_block_size <= 1:
            raise BlockingError("max_block_size must exceed 1 when given")
        self.q = q
        self.min_shared = min_shared
        self.attributes = tuple(attributes) if attributes is not None else None
        self.cross_source_only = cross_source_only
        self.max_block_size = max_block_size
        #: Statistics of the most recent :meth:`block` run.
        self.last_stats = BlockingStats()
        #: Optional :class:`repro.exec.Executor` the co-occurrence join
        #: shards over.  Runtime wiring (attached by the resolver), not
        #: part of the spec: executors never change blocking results.
        self.executor = None

    def to_spec(self) -> dict[str, object]:
        """Serialize the blocker configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "q": self.q,
                "min_shared": self.min_shared,
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "cross_source_only": self.cross_source_only,
                "max_block_size": self.max_block_size,
            },
        }

    def _index(self, dataset: Dataset) -> dict[str, list[str]]:
        """Inverted index from q-grams to record ids (text memoized per record)."""
        memo = TextMemo(dataset, self.attributes)
        index: dict[str, list[str]] = defaultdict(list)
        for record in dataset:
            for gram in memo.ngram_set(record.record_id, self.q):
                index[gram].append(record.record_id)
        return index

    @profiled("blocking", items_from=lambda self, dataset: len(dataset))
    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Return the candidate pairs sharing at least ``min_shared`` q-grams.

        The co-occurrence join runs vectorized (see
        :func:`repro.blocking.base.join_blocks`); statistics of the run —
        including blocks skipped by the ``max_block_size`` guard — are
        kept in :attr:`last_stats`.
        """
        if not base.VECTORIZED:
            return self.block_loop(dataset)
        pairs, stats = join_blocks(
            dataset,
            self._index(dataset),
            min_shared=self.min_shared,
            cross_source_only=self.cross_source_only,
            max_block_size=self.max_block_size,
            executor=self.executor,
        )
        self.last_stats: BlockingStats = stats
        return pairs

    def block_loop(self, dataset: Dataset) -> list[RecordPair]:
        """Reference implementation materializing the shared-count pair dict."""
        index = self._index(dataset)
        shared_counts: dict[tuple[str, str], int] = defaultdict(int)
        num_oversized = 0
        num_block_pairs = 0
        for _, record_ids in index.items():
            if self.max_block_size is not None and len(record_ids) > self.max_block_size:
                num_oversized += 1
                continue
            record_ids = sorted(set(record_ids))
            for i, left_id in enumerate(record_ids):
                for right_id in record_ids[i + 1 :]:
                    num_block_pairs += 1
                    if not self.allow_pair(dataset, left_id, right_id, self.cross_source_only):
                        continue
                    shared_counts[(left_id, right_id)] += 1

        pairs = [
            RecordPair(left_id, right_id)
            for (left_id, right_id), count in shared_counts.items()
            if count >= self.min_shared
        ]
        pairs.sort()
        self.last_stats = BlockingStats(
            num_blocks=len(index),
            num_oversized_blocks=num_oversized,
            num_block_pairs=num_block_pairs,
            num_candidate_pairs=len(pairs),
        )
        return pairs
