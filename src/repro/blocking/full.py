"""Exhaustive cross-product blocking.

The trivial blocker: every admissible record pair is a candidate.  It is
the ``C = D × D`` baseline of Section 2.1 — the candidate space blocking
is meant to reduce — and doubles as the golden-standard enumerator the
blocking-quality metrics (pair completeness) are computed against on
datasets small enough to label exhaustively.
"""

from __future__ import annotations

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..exceptions import BlockingError
from .base import Blocker


class FullBlocker(Blocker):
    """Emit every admissible pair of the dataset (quadratic — use with care).

    Parameters
    ----------
    cross_source_only:
        Restrict pairs to records from different sources (clean-clean).
    max_records:
        Guard rail: datasets larger than this raise instead of silently
        materializing a quadratic candidate set; ``None`` disables it.
    """

    spec_type = "full"

    def __init__(
        self,
        cross_source_only: bool = False,
        max_records: int | None = 2000,
    ) -> None:
        if max_records is not None and max_records < 2:
            raise BlockingError("max_records must be at least 2 when given")
        self.cross_source_only = cross_source_only
        self.max_records = max_records

    def to_spec(self) -> dict[str, object]:
        """Serialize the blocker configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "cross_source_only": self.cross_source_only,
                "max_records": self.max_records,
            },
        }

    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Return every admissible pair, in canonical sorted order."""
        if self.max_records is not None and len(dataset) > self.max_records:
            raise BlockingError(
                f"FullBlocker refuses {len(dataset)} records "
                f"(max_records={self.max_records}); raise the cap explicitly "
                f"or use a reducing blocker"
            )
        record_ids = sorted(dataset.record_ids)
        # Iterating the sorted ids with left < right already yields
        # canonical (left_id, right_id) lexicographic order.
        return [
            RecordPair(left_id, right_id)
            for i, left_id in enumerate(record_ids)
            for right_id in record_ids[i + 1 :]
            if self.allow_pair(dataset, left_id, right_id, self.cross_source_only)
        ]
