"""Blocking phase: candidate pair generation."""

from .base import Blocker, BlockingReport
from .full import FullBlocker
from .qgram import QGramBlocker
from .token import TokenBlocker, DEFAULT_STOPWORDS

__all__ = [
    "Blocker",
    "BlockingReport",
    "FullBlocker",
    "QGramBlocker",
    "TokenBlocker",
    "DEFAULT_STOPWORDS",
]
