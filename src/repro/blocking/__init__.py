"""Blocking phase: candidate pair generation."""

from .base import (
    Blocker,
    BlockingReport,
    BlockingStats,
    OversizedBlockWarning,
    join_blocks,
)
from .full import FullBlocker
from .qgram import QGramBlocker
from .token import TokenBlocker, DEFAULT_STOPWORDS

__all__ = [
    "Blocker",
    "BlockingReport",
    "BlockingStats",
    "OversizedBlockWarning",
    "join_blocks",
    "FullBlocker",
    "QGramBlocker",
    "TokenBlocker",
    "DEFAULT_STOPWORDS",
]
