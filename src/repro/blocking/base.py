"""Blocking interfaces.

Blocking (Section 2.1 / Figure 2 of the paper) reduces the quadratic
candidate space ``D × D`` to a candidate pair set ``C`` before matching.
Blockers produce *unlabeled* :class:`~repro.data.pairs.RecordPair`
objects; labeling happens downstream from intent definitions.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

import numpy as np

from ..data.pairs import RecordPair
from ..data.records import Dataset

#: Module-level default for the block-join implementation; flipped by
#: :func:`repro.perf.compat.use_reference_implementations` to time the
#: pre-vectorization pair-dict path.
VECTORIZED = True


class Blocker(abc.ABC):
    """Base class for blocking strategies.

    Every concrete blocker is registered in
    :data:`repro.registry.BLOCKERS` under :attr:`spec_type` and
    serializes to a plain-dict spec via :meth:`to_spec`, so blocking
    configurations participate in pipeline fingerprints and round-trip
    through ``registry.create``.
    """

    #: Registry key of the concrete blocker (set by subclasses).
    spec_type: str = ""

    @abc.abstractmethod
    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Return the candidate pairs that survive blocking.

        Implementations must return unique pairs, never pair a record
        with itself, and — when the dataset is partitioned into sources
        (clean-clean resolution) — never pair two records of the same
        source.
        """

    @abc.abstractmethod
    def to_spec(self) -> dict[str, object]:
        """Serialize the blocker into a registry spec (plain dict)."""

    @classmethod
    def from_spec(cls, params: Mapping[str, object]) -> "Blocker":
        """Construct the blocker from the parameters of a spec."""
        return cls(**params)

    @staticmethod
    def allow_pair(dataset: Dataset, left_id: str, right_id: str, cross_source_only: bool) -> bool:
        """Shared pair-admissibility rule used by concrete blockers."""
        if left_id == right_id:
            return False
        if not cross_source_only:
            return True
        left_source = dataset[left_id].source
        right_source = dataset[right_id].source
        if left_source is None or right_source is None:
            return True
        return left_source != right_source


@dataclass(frozen=True)
class BlockingStats:
    """Statistics of one inverted-index blocking run.

    Attributes
    ----------
    num_blocks:
        Total blocks (distinct keys) in the inverted index.
    num_oversized_blocks:
        Blocks skipped by the ``max_block_size`` guard; each skipped
        block also raises an :class:`OversizedBlockWarning`.
    num_block_pairs:
        Pairs generated across all surviving blocks, before the
        ``min_shared`` threshold and admissibility filtering.
    num_candidate_pairs:
        Pairs emitted after filtering.
    """

    num_blocks: int = 0
    num_oversized_blocks: int = 0
    num_block_pairs: int = 0
    num_candidate_pairs: int = 0


class OversizedBlockWarning(UserWarning):
    """A blocking key indexed more records than ``max_block_size`` allows."""


def join_blocks(
    dataset: Dataset,
    blocks: Mapping[str, Iterable[str]],
    min_shared: int,
    cross_source_only: bool,
    max_block_size: int | None,
) -> tuple[list[RecordPair], BlockingStats]:
    """Turn an inverted index into candidate pairs via a sorted-array join.

    The classic implementation materializes a Python dict keyed by every
    co-occurring pair — ``O(Σ |block|²)`` dict operations and tuple
    allocations.  This join instead concatenates the per-block pair
    index arrays (``np.triu_indices`` over records ranked by id),
    counts co-occurrences with one ``np.unique`` over packed 64-bit
    keys, and only materializes :class:`~repro.data.pairs.RecordPair`
    objects for the pairs that survive the ``min_shared`` threshold and
    admissibility filtering.

    Pairs are canonicalized by lexicographic id rank (``left`` is the
    smaller id), matching the reference orientation, and the packed-key
    sort yields the same final ordering as ``pairs.sort()``.

    Each block's members must be distinct (inverted indexes built from
    per-record key *sets* guarantee this); duplicate members within one
    block would inflate its co-occurrence counts.

    Returns the pairs plus a :class:`BlockingStats`; oversized blocks are
    skipped with an :class:`OversizedBlockWarning`.
    """
    record_ids = sorted(record.record_id for record in dataset)
    rank_of = {record_id: rank for rank, record_id in enumerate(record_ids)}
    num_records = len(record_ids)

    member_lists: list[list[str]] = []
    num_blocks = 0
    num_oversized = 0
    for key, members in blocks.items():
        num_blocks += 1
        members = list(members)
        if max_block_size is not None and len(members) > max_block_size:
            num_oversized += 1
            # Attributed to this module (default stacklevel): the call
            # chain varies (block / block_loop / profiled wrappers), so a
            # fixed caller offset would point somewhere misleading; the
            # message itself names the offending blocking key.
            warnings.warn(
                f"blocking key {key!r} indexes {len(members)} records "
                f"(max_block_size={max_block_size}); block skipped",
                OversizedBlockWarning,
            )
            continue
        if len(members) >= 2:
            member_lists.append(members)

    if not member_lists:
        stats = BlockingStats(num_blocks, num_oversized, 0, 0)
        return [], stats

    # CSR-style postings: one flat rank array plus per-block offsets.
    sizes = np.fromiter((len(m) for m in member_lists), dtype=np.int64, count=len(member_lists))
    flat_ranks = np.fromiter(
        (rank_of[rid] for members in member_lists for rid in members),
        dtype=np.int64,
        count=int(sizes.sum()),
    )
    offsets = np.zeros(len(member_lists), dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])

    # Generate each block's pair list with one triu_indices per *block
    # size* rather than per block: all blocks of equal size are stacked
    # into one matrix and expanded together.
    lefts: list[np.ndarray] = []
    rights: list[np.ndarray] = []
    num_block_pairs = 0
    for size in np.unique(sizes).tolist():
        block_rows = np.nonzero(sizes == size)[0]
        gather = offsets[block_rows][:, np.newaxis] + np.arange(size, dtype=np.int64)
        stacked = flat_ranks[gather]
        left_index, right_index = np.triu_indices(size, k=1)
        first = stacked[:, left_index].ravel()
        second = stacked[:, right_index].ravel()
        # Canonical orientation without sorting each block: the smaller
        # rank (lexicographically smaller id) is the left member.
        lefts.append(np.minimum(first, second))
        rights.append(np.maximum(first, second))
        num_block_pairs += first.size

    left_ranks = np.concatenate(lefts)
    right_ranks = np.concatenate(rights)
    # Pack each (left, right) rank pair into one sortable 64-bit key.
    keys, counts = np.unique(left_ranks * num_records + right_ranks, return_counts=True)
    keys = keys[counts >= min_shared]
    left_ranks = keys // num_records
    right_ranks = keys % num_records

    if cross_source_only and keys.size:
        source_names = sorted(
            {record.source for record in dataset if record.source is not None}
        )
        source_code = {name: code for code, name in enumerate(source_names)}
        codes = np.fromiter(
            (
                source_code.get(dataset[record_id].source, -1)
                for record_id in record_ids
            ),
            dtype=np.int64,
            count=num_records,
        )
        left_codes = codes[left_ranks]
        right_codes = codes[right_ranks]
        admissible = (left_codes == -1) | (right_codes == -1) | (left_codes != right_codes)
        left_ranks = left_ranks[admissible]
        right_ranks = right_ranks[admissible]

    pairs = [
        RecordPair(record_ids[left], record_ids[right])
        for left, right in zip(left_ranks.tolist(), right_ranks.tolist())
    ]
    stats = BlockingStats(num_blocks, num_oversized, num_block_pairs, len(pairs))
    return pairs, stats


@dataclass(frozen=True)
class BlockingReport:
    """Summary of a blocking run, used by benchmarks and examples."""

    num_records: int
    num_candidate_pairs: int
    reduction_ratio: float

    @classmethod
    def from_result(cls, dataset: Dataset, pairs: list[RecordPair]) -> "BlockingReport":
        """Compute the report for a blocker output over ``dataset``."""
        n = len(dataset)
        total_pairs = n * (n - 1) // 2
        reduction = 1.0 - (len(pairs) / total_pairs) if total_pairs else 0.0
        return cls(
            num_records=n,
            num_candidate_pairs=len(pairs),
            reduction_ratio=reduction,
        )
