"""Blocking interfaces.

Blocking (Section 2.1 / Figure 2 of the paper) reduces the quadratic
candidate space ``D × D`` to a candidate pair set ``C`` before matching.
Blockers produce *unlabeled* :class:`~repro.data.pairs.RecordPair`
objects; labeling happens downstream from intent definitions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Mapping

from ..data.pairs import RecordPair
from ..data.records import Dataset


class Blocker(abc.ABC):
    """Base class for blocking strategies.

    Every concrete blocker is registered in
    :data:`repro.registry.BLOCKERS` under :attr:`spec_type` and
    serializes to a plain-dict spec via :meth:`to_spec`, so blocking
    configurations participate in pipeline fingerprints and round-trip
    through ``registry.create``.
    """

    #: Registry key of the concrete blocker (set by subclasses).
    spec_type: str = ""

    @abc.abstractmethod
    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Return the candidate pairs that survive blocking.

        Implementations must return unique pairs, never pair a record
        with itself, and — when the dataset is partitioned into sources
        (clean-clean resolution) — never pair two records of the same
        source.
        """

    @abc.abstractmethod
    def to_spec(self) -> dict[str, object]:
        """Serialize the blocker into a registry spec (plain dict)."""

    @classmethod
    def from_spec(cls, params: Mapping[str, object]) -> "Blocker":
        """Construct the blocker from the parameters of a spec."""
        return cls(**params)

    @staticmethod
    def allow_pair(dataset: Dataset, left_id: str, right_id: str, cross_source_only: bool) -> bool:
        """Shared pair-admissibility rule used by concrete blockers."""
        if left_id == right_id:
            return False
        if not cross_source_only:
            return True
        left_source = dataset[left_id].source
        right_source = dataset[right_id].source
        if left_source is None or right_source is None:
            return True
        return left_source != right_source


@dataclass(frozen=True)
class BlockingReport:
    """Summary of a blocking run, used by benchmarks and examples."""

    num_records: int
    num_candidate_pairs: int
    reduction_ratio: float

    @classmethod
    def from_result(cls, dataset: Dataset, pairs: list[RecordPair]) -> "BlockingReport":
        """Compute the report for a blocker output over ``dataset``."""
        n = len(dataset)
        total_pairs = n * (n - 1) // 2
        reduction = 1.0 - (len(pairs) / total_pairs) if total_pairs else 0.0
        return cls(
            num_records=n,
            num_candidate_pairs=len(pairs),
            reduction_ratio=reduction,
        )
