"""Blocking interfaces.

Blocking (Section 2.1 / Figure 2 of the paper) reduces the quadratic
candidate space ``D × D`` to a candidate pair set ``C`` before matching.
Blockers produce *unlabeled* :class:`~repro.data.pairs.RecordPair`
objects; labeling happens downstream from intent definitions.
"""

from __future__ import annotations

import abc
import time
import warnings
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

import numpy as np

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..exec.plan import ShardPlan
from ..exec.stages import _observe_merge

#: Module-level default for the block-join implementation; flipped by
#: :func:`repro.perf.compat.use_reference_implementations` to time the
#: pre-vectorization pair-dict path.
VECTORIZED = True


class Blocker(abc.ABC):
    """Base class for blocking strategies.

    Every concrete blocker is registered in
    :data:`repro.registry.BLOCKERS` under :attr:`spec_type` and
    serializes to a plain-dict spec via :meth:`to_spec`, so blocking
    configurations participate in pipeline fingerprints and round-trip
    through ``registry.create``.
    """

    #: Registry key of the concrete blocker (set by subclasses).
    spec_type: str = ""

    @abc.abstractmethod
    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Return the candidate pairs that survive blocking.

        Implementations must return unique pairs, never pair a record
        with itself, and — when the dataset is partitioned into sources
        (clean-clean resolution) — never pair two records of the same
        source.
        """

    @abc.abstractmethod
    def to_spec(self) -> dict[str, object]:
        """Serialize the blocker into a registry spec (plain dict)."""

    @classmethod
    def from_spec(cls, params: Mapping[str, object]) -> "Blocker":
        """Construct the blocker from the parameters of a spec."""
        return cls(**params)

    @staticmethod
    def allow_pair(dataset: Dataset, left_id: str, right_id: str, cross_source_only: bool) -> bool:
        """Shared pair-admissibility rule used by concrete blockers."""
        if left_id == right_id:
            return False
        if not cross_source_only:
            return True
        left_source = dataset[left_id].source
        right_source = dataset[right_id].source
        if left_source is None or right_source is None:
            return True
        return left_source != right_source


@dataclass(frozen=True)
class BlockingStats:
    """Statistics of one inverted-index blocking run.

    Attributes
    ----------
    num_blocks:
        Total blocks (distinct keys) in the inverted index.
    num_oversized_blocks:
        Blocks skipped by the ``max_block_size`` guard; each skipped
        block also raises an :class:`OversizedBlockWarning`.
    num_block_pairs:
        Pairs generated across all surviving blocks, before the
        ``min_shared`` threshold and admissibility filtering.
    num_candidate_pairs:
        Pairs emitted after filtering.
    """

    num_blocks: int = 0
    num_oversized_blocks: int = 0
    num_block_pairs: int = 0
    num_candidate_pairs: int = 0


class OversizedBlockWarning(UserWarning):
    """A blocking key indexed more records than ``max_block_size`` allows."""


def block_pair_arrays(
    flat_ranks: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Expand CSR-style block postings into canonical pair-rank arrays.

    This is the *map* side of the block join: given the concatenated
    member ranks of a set of blocks (``flat_ranks``) and the per-block
    sizes, it generates each block's pair list with one
    ``np.triu_indices`` per *block size* rather than per block — all
    blocks of equal size are stacked into one matrix and expanded
    together.  Pairs are canonically oriented (smaller rank left).

    The output depends only on the blocks it receives, so any partition
    of an inverted index can be expanded shard by shard and the
    concatenated outputs fed to :func:`reduce_block_pairs`.
    """
    offsets = np.zeros(len(sizes), dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])
    lefts: list[np.ndarray] = []
    rights: list[np.ndarray] = []
    num_block_pairs = 0
    for size in np.unique(sizes).tolist():
        block_rows = np.nonzero(sizes == size)[0]
        gather = offsets[block_rows][:, np.newaxis] + np.arange(size, dtype=np.int64)
        stacked = flat_ranks[gather]
        left_index, right_index = np.triu_indices(size, k=1)
        first = stacked[:, left_index].ravel()
        second = stacked[:, right_index].ravel()
        # Canonical orientation without sorting each block: the smaller
        # rank (lexicographically smaller id) is the left member.
        lefts.append(np.minimum(first, second))
        rights.append(np.maximum(first, second))
        num_block_pairs += first.size
    if not lefts:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, 0
    return np.concatenate(lefts), np.concatenate(rights), num_block_pairs


def _block_pairs_worker(payload):
    """Executor task wrapping :func:`block_pair_arrays` (one key shard)."""
    flat_ranks, sizes = payload
    return block_pair_arrays(flat_ranks, sizes)


def reduce_block_pairs(
    left_ranks: np.ndarray,
    right_ranks: np.ndarray,
    record_ids: list[str],
    dataset: Dataset,
    min_shared: int,
    cross_source_only: bool,
) -> list[RecordPair]:
    """Reduce raw block-pair arrays into the final candidate pair list.

    Counts co-occurrences with one ``np.unique`` over packed 64-bit
    keys, applies the ``min_shared`` threshold and the cross-source
    admissibility rule, and materializes
    :class:`~repro.data.pairs.RecordPair` objects.  ``np.unique`` sorts
    globally, so the result is independent of how the input arrays were
    partitioned or ordered — the key property that makes the sharded
    join bit-identical to the serial one.
    """
    num_records = len(record_ids)
    # Pack each (left, right) rank pair into one sortable 64-bit key.
    keys, counts = np.unique(left_ranks * num_records + right_ranks, return_counts=True)
    keys = keys[counts >= min_shared]
    left_ranks = keys // num_records
    right_ranks = keys % num_records

    if cross_source_only and keys.size:
        source_names = sorted(
            {record.source for record in dataset if record.source is not None}
        )
        source_code = {name: code for code, name in enumerate(source_names)}
        codes = np.fromiter(
            (
                source_code.get(dataset[record_id].source, -1)
                for record_id in record_ids
            ),
            dtype=np.int64,
            count=num_records,
        )
        left_codes = codes[left_ranks]
        right_codes = codes[right_ranks]
        admissible = (left_codes == -1) | (right_codes == -1) | (left_codes != right_codes)
        left_ranks = left_ranks[admissible]
        right_ranks = right_ranks[admissible]

    return [
        RecordPair(record_ids[left], record_ids[right])
        for left, right in zip(left_ranks.tolist(), right_ranks.tolist())
    ]


def join_blocks(
    dataset: Dataset,
    blocks: Mapping[str, Iterable[str]],
    min_shared: int,
    cross_source_only: bool,
    max_block_size: int | None,
    executor=None,
) -> tuple[list[RecordPair], BlockingStats]:
    """Turn an inverted index into candidate pairs via a sorted-array join.

    The classic implementation materializes a Python dict keyed by every
    co-occurring pair — ``O(Σ |block|²)`` dict operations and tuple
    allocations.  This join instead expands per-block pair index arrays
    (:func:`block_pair_arrays`) and reduces them with one ``np.unique``
    over packed keys (:func:`reduce_block_pairs`).

    Pairs are canonicalized by lexicographic id rank (``left`` is the
    smaller id), matching the reference orientation, and the packed-key
    sort yields the same final ordering as ``pairs.sort()``.

    Each block's members must be distinct (inverted indexes built from
    per-record key *sets* guarantee this); duplicate members within one
    block would inflate its co-occurrence counts.

    With a parallel ``executor`` (see :mod:`repro.exec`) the expansion
    fans out over key-group shards balanced by per-block pair count
    (``|block|·(|block|-1)/2``); the reduce step is order-independent,
    so the sharded join is bit-identical to the serial one.

    Returns the pairs plus a :class:`BlockingStats`; oversized blocks are
    skipped with an :class:`OversizedBlockWarning`.
    """
    record_ids = sorted(record.record_id for record in dataset)
    rank_of = {record_id: rank for rank, record_id in enumerate(record_ids)}

    member_lists: list[list[str]] = []
    num_blocks = 0
    num_oversized = 0
    for key, members in blocks.items():
        num_blocks += 1
        members = list(members)
        if max_block_size is not None and len(members) > max_block_size:
            num_oversized += 1
            # Attributed to this module (default stacklevel): the call
            # chain varies (block / block_loop / profiled wrappers), so a
            # fixed caller offset would point somewhere misleading; the
            # message itself names the offending blocking key.
            warnings.warn(
                f"blocking key {key!r} indexes {len(members)} records "
                f"(max_block_size={max_block_size}); block skipped",
                OversizedBlockWarning,
            )
            continue
        if len(members) >= 2:
            member_lists.append(members)

    if not member_lists:
        stats = BlockingStats(num_blocks, num_oversized, 0, 0)
        return [], stats

    # CSR-style postings: one flat rank array plus per-block sizes.
    sizes = np.fromiter((len(m) for m in member_lists), dtype=np.int64, count=len(member_lists))
    flat_ranks = np.fromiter(
        (rank_of[rid] for members in member_lists for rid in members),
        dtype=np.int64,
        count=int(sizes.sum()),
    )

    if executor is not None and getattr(executor, "is_parallel", False) and len(member_lists) > 1:
        # Map: expand each key-group shard independently (shards balance
        # the quadratic per-block pair cost, so one stop-gram-sized block
        # occupies a shard of its own).
        weights = (sizes * (sizes - 1) // 2).tolist()
        plan = ShardPlan.balanced(weights, executor.workers)
        offsets = np.zeros(len(sizes), dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        payloads = []
        for shard in plan.shards:
            positions = np.asarray(shard.items, dtype=np.int64)
            shard_sizes = sizes[positions]
            shard_ranks = np.concatenate(
                [flat_ranks[offsets[p] : offsets[p] + sizes[p]] for p in positions.tolist()]
            )
            payloads.append((shard_ranks, shard_sizes))
        outputs = executor.map(_block_pairs_worker, payloads)
        start = time.perf_counter()
        left_ranks = np.concatenate([out[0] for out in outputs])
        right_ranks = np.concatenate([out[1] for out in outputs])
        num_block_pairs = int(sum(out[2] for out in outputs))
        _observe_merge("block-join", time.perf_counter() - start, items=num_block_pairs)
    else:
        left_ranks, right_ranks, num_block_pairs = block_pair_arrays(flat_ranks, sizes)

    pairs = reduce_block_pairs(
        left_ranks, right_ranks, record_ids, dataset, min_shared, cross_source_only
    )
    stats = BlockingStats(num_blocks, num_oversized, num_block_pairs, len(pairs))
    return pairs, stats


@dataclass(frozen=True)
class BlockingReport:
    """Summary of a blocking run, used by benchmarks and examples."""

    num_records: int
    num_candidate_pairs: int
    reduction_ratio: float

    @classmethod
    def from_result(cls, dataset: Dataset, pairs: list[RecordPair]) -> "BlockingReport":
        """Compute the report for a blocker output over ``dataset``."""
        n = len(dataset)
        total_pairs = n * (n - 1) // 2
        reduction = 1.0 - (len(pairs) / total_pairs) if total_pairs else 0.0
        return cls(
            num_records=n,
            num_candidate_pairs=len(pairs),
            reduction_ratio=reduction,
        )
