"""Token-based blocking.

A standard alternative to the q-gram blocker: records are keyed by word
tokens, and pairs co-occurring in at least ``min_shared`` token blocks are
kept.  Used by the Walmart-Amazon-like generator to assemble candidate
pairs across the two sources.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..exceptions import BlockingError
from ..perf.instrument import profiled
from ..text.memo import TextMemo
from . import base
from .base import Blocker, BlockingStats, join_blocks

#: Tokens too frequent to be discriminative for product titles.
DEFAULT_STOPWORDS = frozenset(
    {"the", "a", "an", "and", "of", "for", "with", "in", "on", "by", "to", "new"}
)


class TokenBlocker(Blocker):
    """Keep pairs of records sharing at least ``min_shared`` word tokens.

    Parameters
    ----------
    min_shared:
        Minimum number of shared (non-stopword) tokens.
    min_token_length:
        Tokens shorter than this are ignored.
    attributes:
        Attributes whose text participates in blocking; defaults to all.
    cross_source_only:
        Restrict pairs to records from different sources (clean-clean).
    max_block_size:
        Tokens indexing more than this many records are skipped.
    stopwords:
        Tokens never used as blocking keys (any iterable of strings).
    """

    spec_type = "token"

    def __init__(
        self,
        min_shared: int = 2,
        min_token_length: int = 3,
        attributes: Iterable[str] | None = None,
        cross_source_only: bool = False,
        max_block_size: int | None = 200,
        stopwords: Iterable[str] = DEFAULT_STOPWORDS,
    ) -> None:
        if min_shared <= 0:
            raise BlockingError("min_shared must be positive")
        if min_token_length <= 0:
            raise BlockingError("min_token_length must be positive")
        self.min_shared = min_shared
        self.min_token_length = min_token_length
        self.attributes = tuple(attributes) if attributes is not None else None
        self.cross_source_only = cross_source_only
        self.max_block_size = max_block_size
        self.stopwords = frozenset(stopwords)
        #: Statistics of the most recent :meth:`block` run.
        self.last_stats = BlockingStats()
        #: Optional :class:`repro.exec.Executor` the co-occurrence join
        #: shards over.  Runtime wiring (attached by the resolver), not
        #: part of the spec: executors never change blocking results.
        self.executor = None

    def to_spec(self) -> dict[str, object]:
        """Serialize the blocker configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "min_shared": self.min_shared,
                "min_token_length": self.min_token_length,
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "cross_source_only": self.cross_source_only,
                "max_block_size": self.max_block_size,
                "stopwords": sorted(self.stopwords),
            },
        }

    def _keys(self, tokens: Iterable[str]) -> set[str]:
        return {
            token
            for token in tokens
            if len(token) >= self.min_token_length and token not in self.stopwords
        }

    def _index(self, dataset: Dataset) -> dict[str, list[str]]:
        """Inverted index from tokens to record ids (tokenized once per record)."""
        memo = TextMemo(dataset, self.attributes)
        index: dict[str, list[str]] = defaultdict(list)
        for record in dataset:
            for key in self._keys(memo.token_set(record.record_id)):
                index[key].append(record.record_id)
        return index

    @profiled("blocking", items_from=lambda self, dataset: len(dataset))
    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Return candidate pairs sharing at least ``min_shared`` tokens.

        The co-occurrence join runs vectorized (see
        :func:`repro.blocking.base.join_blocks`); statistics of the run —
        including blocks skipped by the ``max_block_size`` guard — are
        kept in :attr:`last_stats`.
        """
        if not base.VECTORIZED:
            return self.block_loop(dataset)
        pairs, stats = join_blocks(
            dataset,
            self._index(dataset),
            min_shared=self.min_shared,
            cross_source_only=self.cross_source_only,
            max_block_size=self.max_block_size,
            executor=self.executor,
        )
        self.last_stats = stats
        return pairs

    def block_loop(self, dataset: Dataset) -> list[RecordPair]:
        """Reference implementation materializing the shared-count pair dict."""
        index = self._index(dataset)
        shared_counts: dict[tuple[str, str], int] = defaultdict(int)
        num_oversized = 0
        num_block_pairs = 0
        for _, record_ids in index.items():
            if self.max_block_size is not None and len(record_ids) > self.max_block_size:
                num_oversized += 1
                continue
            record_ids = sorted(set(record_ids))
            for i, left_id in enumerate(record_ids):
                for right_id in record_ids[i + 1 :]:
                    num_block_pairs += 1
                    if not self.allow_pair(dataset, left_id, right_id, self.cross_source_only):
                        continue
                    shared_counts[(left_id, right_id)] += 1

        pairs = [
            RecordPair(left_id, right_id)
            for (left_id, right_id), count in shared_counts.items()
            if count >= self.min_shared
        ]
        pairs.sort()
        self.last_stats = BlockingStats(
            num_blocks=len(index),
            num_oversized_blocks=num_oversized,
            num_block_pairs=num_block_pairs,
            num_candidate_pairs=len(pairs),
        )
        return pairs
