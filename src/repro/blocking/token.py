"""Token-based blocking.

A standard alternative to the q-gram blocker: records are keyed by word
tokens, and pairs co-occurring in at least ``min_shared`` token blocks are
kept.  Used by the Walmart-Amazon-like generator to assemble candidate
pairs across the two sources.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..exceptions import BlockingError
from ..text.tokenize import word_tokens
from .base import Blocker

#: Tokens too frequent to be discriminative for product titles.
DEFAULT_STOPWORDS = frozenset(
    {"the", "a", "an", "and", "of", "for", "with", "in", "on", "by", "to", "new"}
)


class TokenBlocker(Blocker):
    """Keep pairs of records sharing at least ``min_shared`` word tokens.

    Parameters
    ----------
    min_shared:
        Minimum number of shared (non-stopword) tokens.
    min_token_length:
        Tokens shorter than this are ignored.
    attributes:
        Attributes whose text participates in blocking; defaults to all.
    cross_source_only:
        Restrict pairs to records from different sources (clean-clean).
    max_block_size:
        Tokens indexing more than this many records are skipped.
    stopwords:
        Tokens never used as blocking keys (any iterable of strings).
    """

    spec_type = "token"

    def __init__(
        self,
        min_shared: int = 2,
        min_token_length: int = 3,
        attributes: Iterable[str] | None = None,
        cross_source_only: bool = False,
        max_block_size: int | None = 200,
        stopwords: Iterable[str] = DEFAULT_STOPWORDS,
    ) -> None:
        if min_shared <= 0:
            raise BlockingError("min_shared must be positive")
        if min_token_length <= 0:
            raise BlockingError("min_token_length must be positive")
        self.min_shared = min_shared
        self.min_token_length = min_token_length
        self.attributes = tuple(attributes) if attributes is not None else None
        self.cross_source_only = cross_source_only
        self.max_block_size = max_block_size
        self.stopwords = frozenset(stopwords)

    def to_spec(self) -> dict[str, object]:
        """Serialize the blocker configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "min_shared": self.min_shared,
                "min_token_length": self.min_token_length,
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "cross_source_only": self.cross_source_only,
                "max_block_size": self.max_block_size,
                "stopwords": sorted(self.stopwords),
            },
        }

    def _keys(self, text: str) -> set[str]:
        return {
            token
            for token in word_tokens(text)
            if len(token) >= self.min_token_length and token not in self.stopwords
        }

    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Return candidate pairs sharing at least ``min_shared`` tokens."""
        index: dict[str, list[str]] = defaultdict(list)
        for record in dataset:
            for key in self._keys(record.text(self.attributes)):
                index[key].append(record.record_id)

        shared_counts: dict[tuple[str, str], int] = defaultdict(int)
        for key, record_ids in index.items():
            if self.max_block_size is not None and len(record_ids) > self.max_block_size:
                continue
            record_ids = sorted(set(record_ids))
            for i, left_id in enumerate(record_ids):
                for right_id in record_ids[i + 1 :]:
                    if not self.allow_pair(dataset, left_id, right_id, self.cross_source_only):
                        continue
                    shared_counts[(left_id, right_id)] += 1

        pairs = [
            RecordPair(left_id, right_id)
            for (left_id, right_id), count in shared_counts.items()
            if count >= self.min_shared
        ]
        pairs.sort()
        return pairs
