"""Multiplex intent graph (Section 4.1).

The graph has one *layer* per intent and one node per (record pair,
intent).  Node features are the intent-based latent pair representations
produced by the per-intent matchers.  Edges are directional and express
who sends messages to whom during GraphSAGE aggregation:

* **intra-layer** edges connect a node to its ``k`` nearest neighbours
  within the same layer (computed over the initial representations);
* **inter-layer** edges connect each node to its peers — the nodes of the
  same record pair in every other layer.

Node indexing is row-major by layer: node ``layer * num_pairs + pair``.

Edges are stored as an append-ordered edge log (two flat integer
arrays), so bulk insertion (:meth:`MultiplexGraph.add_edges`) and the
edge-list / CSR views (:meth:`MultiplexGraph.edge_arrays`,
:meth:`MultiplexGraph.aggregation_operator`) are vectorized — no
per-node Python loops.  The classic adjacency-list view
(:attr:`MultiplexGraph.in_neighbors`) is materialized lazily for
compatibility and reporting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse as sp

from ..exceptions import GraphConstructionError


def renumber_pair_nodes(
    nodes: np.ndarray | Iterable[int], old_num_pairs: int, new_num_pairs: int
) -> np.ndarray:
    """Translate layer-major node ids after growing the pair axis.

    Node ids encode ``layer * num_pairs + pair``; appending pairs changes
    the stride, so every stored node array (the edge log of a persisted
    graph payload) must be renumbered when the incremental update path
    grows ``num_pairs``.  Vectorized; preserves array order.
    """
    if old_num_pairs <= 0 or new_num_pairs < old_num_pairs:
        raise GraphConstructionError(
            f"cannot renumber nodes from {old_num_pairs} to {new_num_pairs} pairs"
        )
    node_array = np.asarray(nodes, dtype=np.int64)
    layers, pairs = np.divmod(node_array, old_num_pairs)
    return layers * new_num_pairs + pairs


class MultiplexGraph:
    """A multiplex intent graph over candidate record pairs.

    Parameters
    ----------
    intents:
        Ordered intent names; one graph layer per intent.
    num_pairs:
        Number of record pairs (nodes per layer).
    features:
        Node feature matrix of shape ``(num_intents * num_pairs, dim)``.
    in_neighbors:
        Optional initial adjacency: for every node, the list of nodes it
        *receives* messages from (sources of its incoming edges).
    intra_edge_count, inter_edge_count:
        Edge statistics kept for reporting (``|C|·|P|·|k|`` and
        ``|C|·|P|·|P-1|`` in the paper).
    """

    def __init__(
        self,
        intents: Sequence[str],
        num_pairs: int,
        features: np.ndarray,
        in_neighbors: Sequence[Sequence[int]] | None = None,
        intra_edge_count: int = 0,
        inter_edge_count: int = 0,
    ) -> None:
        self.intents = tuple(intents)
        self.num_pairs = int(num_pairs)
        self.features = features
        self.intra_edge_count = int(intra_edge_count)
        self.inter_edge_count = int(inter_edge_count)
        if not self.intents:
            raise GraphConstructionError("the graph needs at least one intent layer")
        if self.num_pairs <= 0:
            raise GraphConstructionError("the graph needs at least one record pair")
        expected_nodes = len(self.intents) * self.num_pairs
        if self.features.shape[0] != expected_nodes:
            raise GraphConstructionError(
                f"features has {self.features.shape[0]} rows, expected {expected_nodes}"
            )
        # Append-ordered edge log; all derived views are computed from it.
        self._edge_sources: list[int] = []
        self._edge_targets: list[int] = []
        self._neighbors_cache: list[tuple[int, ...]] | None = None
        self._operator_cache: dict[str, sp.csr_matrix] = {}
        self._edge_arrays_cache: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        if in_neighbors is not None:
            if len(in_neighbors) != expected_nodes:
                raise GraphConstructionError("in_neighbors must have one entry per node")
            for target, sources in enumerate(in_neighbors):
                for source in sources:
                    self.add_edge(int(source), target)

    # --------------------------------------------------------------- indexing

    @property
    def num_intents(self) -> int:
        """Number of intent layers."""
        return len(self.intents)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes (``|C| · |Π|``)."""
        return self.num_intents * self.num_pairs

    @property
    def feature_dim(self) -> int:
        """Dimensionality of the node features."""
        return int(self.features.shape[1])

    def intent_index(self, intent: str) -> int:
        """Position of ``intent`` among the layers."""
        try:
            return self.intents.index(intent)
        except ValueError:
            raise GraphConstructionError(f"unknown intent layer: {intent!r}") from None

    def node_index(self, intent: str | int, pair_index: int) -> int:
        """Node id of ``pair_index`` in the layer of ``intent``."""
        layer = intent if isinstance(intent, int) else self.intent_index(intent)
        if not 0 <= layer < self.num_intents:
            raise GraphConstructionError(f"layer index out of range: {layer}")
        if not 0 <= pair_index < self.num_pairs:
            raise GraphConstructionError(f"pair index out of range: {pair_index}")
        return layer * self.num_pairs + pair_index

    def layer_nodes(self, intent: str | int) -> np.ndarray:
        """Node ids of every pair in the layer of ``intent``."""
        layer = intent if isinstance(intent, int) else self.intent_index(intent)
        start = layer * self.num_pairs
        return np.arange(start, start + self.num_pairs, dtype=np.int64)

    def node_layer(self, node: int) -> int:
        """Layer index of a node id."""
        return node // self.num_pairs

    def node_pair(self, node: int) -> int:
        """Pair index of a node id."""
        return node % self.num_pairs

    # ------------------------------------------------------------------ edges

    def _invalidate(self) -> None:
        self._neighbors_cache = None
        self._operator_cache.clear()
        self._edge_arrays_cache.clear()

    def add_edge(self, source: int, target: int) -> None:
        """Add a directed edge ``source -> target`` (message flows to target)."""
        if not 0 <= source < self.num_nodes or not 0 <= target < self.num_nodes:
            raise GraphConstructionError("edge endpoints out of range")
        self._edge_sources.append(int(source))
        self._edge_targets.append(int(target))
        self._invalidate()

    def add_edges(
        self, sources: np.ndarray | Iterable[int], targets: np.ndarray | Iterable[int]
    ) -> None:
        """Bulk-append directed edges (vectorized validation, one extend)."""
        source_array = np.asarray(sources, dtype=np.int64).ravel()
        target_array = np.asarray(targets, dtype=np.int64).ravel()
        if source_array.shape != target_array.shape:
            raise GraphConstructionError("sources and targets must have equal length")
        if source_array.size == 0:
            return
        bounds = (
            source_array.min(),
            source_array.max(),
            target_array.min(),
            target_array.max(),
        )
        if (
            bounds[0] < 0
            or bounds[1] >= self.num_nodes
            or bounds[2] < 0
            or bounds[3] >= self.num_nodes
        ):
            raise GraphConstructionError("edge endpoints out of range")
        self._edge_sources.extend(source_array.tolist())
        self._edge_targets.extend(target_array.tolist())
        self._invalidate()

    @property
    def num_edges(self) -> int:
        """Total number of directed edges."""
        return len(self._edge_sources)

    @property
    def in_neighbors(self) -> list[tuple[int, ...]]:
        """Per-node incoming-source adjacency (lazily materialized view).

        A read-only view of the edge log: the inner sequences are tuples,
        so the historical mutation pattern
        (``graph.in_neighbors[target].append(source)``) fails loudly
        instead of silently diverging from the edge log.  Mutate the
        graph through :meth:`add_edge` / :meth:`add_edges`.
        """
        if self._neighbors_cache is None:
            lists: list[list[int]] = [[] for _ in range(self.num_nodes)]
            for source, target in zip(self._edge_sources, self._edge_targets):
                lists[target].append(source)
            self._neighbors_cache = [tuple(sources) for sources in lists]
        return self._neighbors_cache

    def neighbors_of(self, node: int) -> list[int]:
        """Incoming-message neighbours of ``node``."""
        return list(self.in_neighbors[node])

    def edge_arrays(self, mode: str = "mean") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edge-list view ``(sources, targets, weights)`` of the incoming edges.

        With ``mode="mean"`` each target's incoming weights sum to one,
        so scatter-aggregation over these arrays computes the GraphSAGE
        mean aggregation; with ``mode="sum"`` all weights are one.

        Edges are returned grouped by target in ascending order with the
        per-target insertion order preserved (a stable sort of the edge
        log), matching the historical adjacency-list iteration exactly.
        The arrays are cached per mode (callers treat them as read-only)
        so the per-intent GNN trainings over one graph sort only once.
        """
        if mode not in ("mean", "sum"):
            raise GraphConstructionError(f"unsupported aggregation mode: {mode!r}")
        cached = self._edge_arrays_cache.get(mode)
        if cached is not None:
            return cached
        sources = np.asarray(self._edge_sources, dtype=np.int64)
        targets = np.asarray(self._edge_targets, dtype=np.int64)
        order = np.argsort(targets, kind="stable")
        sources = sources[order]
        targets = targets[order]
        if mode == "mean" and targets.size:
            indegree = np.bincount(targets, minlength=self.num_nodes)
            weights = 1.0 / indegree[targets]
        else:
            weights = np.ones(targets.size, dtype=np.float64)
        result = (sources, targets, weights)
        self._edge_arrays_cache[mode] = result
        return result

    def aggregation_operator(self, mode: str = "mean") -> sp.csr_matrix:
        """CSR aggregation operator ``A`` with ``(A H)[v] = AGG(h_u, u ∈ N(v))``.

        Built once per mode and cached until the edge set changes, so the
        per-intent GNN trainings over one graph share the same operator
        instead of re-deriving it.
        """
        cached = self._operator_cache.get(mode)
        if cached is None:
            sources, targets, weights = self.edge_arrays(mode)
            cached = sp.csr_matrix(
                (weights, (targets, sources)), shape=(self.num_nodes, self.num_nodes)
            )
            self._operator_cache[mode] = cached
        return cached

    def layer_adjacency(self, intent: str | int, mode: str = "mean") -> sp.csr_matrix:
        """CSR adjacency of one layer's block of the aggregation operator.

        Rows/columns are the layer's pairs; entries cover only the
        intra-layer edges of that layer (inter-layer edges live in
        off-diagonal blocks of the full operator).
        """
        layer = intent if isinstance(intent, int) else self.intent_index(intent)
        if not 0 <= layer < self.num_intents:
            raise GraphConstructionError(f"layer index out of range: {layer}")
        start = layer * self.num_pairs
        stop = start + self.num_pairs
        return self.aggregation_operator(mode)[start:stop, start:stop].tocsr()

    def aggregation_matrix(self, mode: str = "mean") -> np.ndarray:
        """Dense aggregation operator (see :meth:`aggregation_operator`).

        Kept for analyses and tests on small graphs; large graphs should
        use the CSR operator.
        """
        return self.aggregation_operator(mode).toarray()

    # ------------------------------------------------------------- round-trip

    def to_payload(self) -> dict[str, object]:
        """Serialize the graph into plain arrays (picklable, cacheable).

        The edge log is exported through ``edge_arrays`` — grouped by
        target with per-target insertion order preserved — so
        :meth:`from_payload` rebuilds an edge-for-edge identical graph
        and GNN training over it is byte-identical.  This is the payload
        the process executor ships to per-intent GNN workers and the
        staged pipeline stores as the graph-build artifact.
        """
        sources, targets, _ = self.edge_arrays(mode="sum")
        return {
            "intents": list(self.intents),
            "num_pairs": self.num_pairs,
            "features": self.features,
            "sources": sources,
            "targets": targets,
            "intra_edge_count": self.intra_edge_count,
            "inter_edge_count": self.inter_edge_count,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "MultiplexGraph":
        """Rebuild a graph from :meth:`to_payload` arrays."""
        graph = cls(
            intents=tuple(payload["intents"]),
            num_pairs=int(payload["num_pairs"]),
            features=payload["features"],
        )
        graph.add_edges(payload["sources"], payload["targets"])
        graph.intra_edge_count = int(payload["intra_edge_count"])
        graph.inter_edge_count = int(payload["inter_edge_count"])
        return graph

    def describe(self) -> dict[str, object]:
        """Graph statistics used by reports and run-time benchmarks."""
        return {
            "intents": list(self.intents),
            "num_pairs": self.num_pairs,
            "num_nodes": self.num_nodes,
            "feature_dim": self.feature_dim,
            "num_edges": self.num_edges,
            "intra_edges": self.intra_edge_count,
            "inter_edges": self.inter_edge_count,
        }
