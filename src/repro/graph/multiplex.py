"""Multiplex intent graph (Section 4.1).

The graph has one *layer* per intent and one node per (record pair,
intent).  Node features are the intent-based latent pair representations
produced by the per-intent matchers.  Edges are directional and express
who sends messages to whom during GraphSAGE aggregation:

* **intra-layer** edges connect a node to its ``k`` nearest neighbours
  within the same layer (computed over the initial representations);
* **inter-layer** edges connect each node to its peers — the nodes of the
  same record pair in every other layer.

Node indexing is row-major by layer: node ``layer * num_pairs + pair``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import GraphConstructionError


@dataclass
class MultiplexGraph:
    """A multiplex intent graph over candidate record pairs.

    Attributes
    ----------
    intents:
        Ordered intent names; one graph layer per intent.
    num_pairs:
        Number of record pairs (nodes per layer).
    features:
        Node feature matrix of shape ``(num_intents * num_pairs, dim)``.
    in_neighbors:
        For every node, the list of nodes it *receives* messages from
        (sources of its incoming edges).
    intra_edge_count, inter_edge_count:
        Edge statistics kept for reporting (``|C|·|P|·|k|`` and
        ``|C|·|P|·|P-1|`` in the paper).
    """

    intents: tuple[str, ...]
    num_pairs: int
    features: np.ndarray
    in_neighbors: list[list[int]] = field(default_factory=list)
    intra_edge_count: int = 0
    inter_edge_count: int = 0

    def __post_init__(self) -> None:
        if not self.intents:
            raise GraphConstructionError("the graph needs at least one intent layer")
        if self.num_pairs <= 0:
            raise GraphConstructionError("the graph needs at least one record pair")
        expected_nodes = len(self.intents) * self.num_pairs
        if self.features.shape[0] != expected_nodes:
            raise GraphConstructionError(
                f"features has {self.features.shape[0]} rows, expected {expected_nodes}"
            )
        if not self.in_neighbors:
            self.in_neighbors = [[] for _ in range(expected_nodes)]
        if len(self.in_neighbors) != expected_nodes:
            raise GraphConstructionError("in_neighbors must have one entry per node")

    # --------------------------------------------------------------- indexing

    @property
    def num_intents(self) -> int:
        """Number of intent layers."""
        return len(self.intents)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes (``|C| · |Π|``)."""
        return self.num_intents * self.num_pairs

    @property
    def feature_dim(self) -> int:
        """Dimensionality of the node features."""
        return int(self.features.shape[1])

    def intent_index(self, intent: str) -> int:
        """Position of ``intent`` among the layers."""
        try:
            return self.intents.index(intent)
        except ValueError:
            raise GraphConstructionError(f"unknown intent layer: {intent!r}") from None

    def node_index(self, intent: str | int, pair_index: int) -> int:
        """Node id of ``pair_index`` in the layer of ``intent``."""
        layer = intent if isinstance(intent, int) else self.intent_index(intent)
        if not 0 <= layer < self.num_intents:
            raise GraphConstructionError(f"layer index out of range: {layer}")
        if not 0 <= pair_index < self.num_pairs:
            raise GraphConstructionError(f"pair index out of range: {pair_index}")
        return layer * self.num_pairs + pair_index

    def layer_nodes(self, intent: str | int) -> np.ndarray:
        """Node ids of every pair in the layer of ``intent``."""
        layer = intent if isinstance(intent, int) else self.intent_index(intent)
        start = layer * self.num_pairs
        return np.arange(start, start + self.num_pairs, dtype=np.int64)

    def node_layer(self, node: int) -> int:
        """Layer index of a node id."""
        return node // self.num_pairs

    def node_pair(self, node: int) -> int:
        """Pair index of a node id."""
        return node % self.num_pairs

    # ------------------------------------------------------------------ edges

    def add_edge(self, source: int, target: int) -> None:
        """Add a directed edge ``source -> target`` (message flows to target)."""
        if not 0 <= source < self.num_nodes or not 0 <= target < self.num_nodes:
            raise GraphConstructionError("edge endpoints out of range")
        self.in_neighbors[target].append(source)

    @property
    def num_edges(self) -> int:
        """Total number of directed edges."""
        return sum(len(neighbors) for neighbors in self.in_neighbors)

    def neighbors_of(self, node: int) -> list[int]:
        """Incoming-message neighbours of ``node``."""
        return list(self.in_neighbors[node])

    def edge_arrays(self, mode: str = "mean") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edge-list view ``(sources, targets, weights)`` of the incoming edges.

        With ``mode="mean"`` each target's incoming weights sum to one,
        so scatter-aggregation over these arrays computes the GraphSAGE
        mean aggregation; with ``mode="sum"`` all weights are one.
        """
        if mode not in ("mean", "sum"):
            raise GraphConstructionError(f"unsupported aggregation mode: {mode!r}")
        sources: list[int] = []
        targets: list[int] = []
        weights: list[float] = []
        for target, incoming in enumerate(self.in_neighbors):
            if not incoming:
                continue
            weight = 1.0 / len(incoming) if mode == "mean" else 1.0
            for source in incoming:
                sources.append(source)
                targets.append(target)
                weights.append(weight)
        return (
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.asarray(weights, dtype=np.float64),
        )

    def aggregation_matrix(self, mode: str = "mean") -> np.ndarray:
        """Dense aggregation operator ``A`` with ``(A H)[v] = AGG(h_u, u ∈ N(v))``.

        Parameters
        ----------
        mode:
            ``"mean"`` (row-normalized, the GraphSAGE default) or
            ``"sum"``.
        """
        if mode not in ("mean", "sum"):
            raise GraphConstructionError(f"unsupported aggregation mode: {mode!r}")
        matrix = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        for target, sources in enumerate(self.in_neighbors):
            if not sources:
                continue
            weight = 1.0 / len(sources) if mode == "mean" else 1.0
            for source in sources:
                matrix[target, source] += weight
        return matrix

    def describe(self) -> dict[str, object]:
        """Graph statistics used by reports and run-time benchmarks."""
        return {
            "intents": list(self.intents),
            "num_pairs": self.num_pairs,
            "num_nodes": self.num_nodes,
            "feature_dim": self.feature_dim,
            "num_edges": self.num_edges,
            "intra_edges": self.intra_edge_count,
            "inter_edges": self.inter_edge_count,
        }
