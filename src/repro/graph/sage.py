"""GraphSAGE over the multiplex intent graph (Sections 4.2-4.3).

Message propagation follows Eq. 3-4: each GraphSAGE convolution
aggregates the hidden states of a node's incoming neighbours (mean by
default), concatenates the aggregate with the node's own hidden state,
and applies a linear layer with a ReLU activation (no activation on the
last convolution).  Prediction per intent (Eq. 5) feeds the final hidden
state of a node in the target intent's layer through a fully connected
layer followed by softmax/argmax.

Aggregation runs over the graph's edge list (scatter-add), so one epoch
is linear in the number of edges rather than quadratic in the number of
nodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from ..config import GNNConfig
from ..exceptions import GraphConstructionError, NotFittedError
from scipy import sparse as sp

from ..nn import Adam, Linear, Module, Tensor, cross_entropy, l2_penalty
from ..nn.sparse import sparse_matmul
from .multiplex import MultiplexGraph


class GraphAggregation:
    """A reusable neighbourhood-aggregation operator over a fixed edge list."""

    def __init__(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        num_nodes: int,
        weights: np.ndarray,
        operator: sp.csr_matrix | None = None,
    ) -> None:
        self.sources = np.asarray(sources, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.num_nodes = int(num_nodes)
        if self.sources.shape != self.targets.shape or self.sources.shape != self.weights.shape:
            raise GraphConstructionError("edge arrays must have equal length")
        # The aggregation operator is constant across epochs, so the CSR
        # matrix is built once and reused by every forward/backward pass
        # (or shared outright when the graph has already built it).
        if operator is None:
            operator = sp.csr_matrix(
                (self.weights, (self.targets, self.sources)),
                shape=(self.num_nodes, self.num_nodes),
            )
        self._operator = operator

    @classmethod
    def from_graph(cls, graph: MultiplexGraph, mode: str = "mean") -> "GraphAggregation":
        """Build the aggregation operator of a multiplex graph.

        The CSR operator comes from the graph's cache
        (:meth:`~repro.graph.multiplex.MultiplexGraph.aggregation_operator`),
        so the per-intent GNN trainings over one graph share one matrix.
        """
        sources, targets, weights = graph.edge_arrays(mode)
        return cls(
            sources,
            targets,
            graph.num_nodes,
            weights,
            operator=graph.aggregation_operator(mode),
        )

    @classmethod
    def self_loops(cls, num_nodes: int) -> "GraphAggregation":
        """An identity aggregation (each node aggregates only itself)."""
        indices = np.arange(num_nodes, dtype=np.int64)
        return cls(indices, indices, num_nodes, np.ones(num_nodes))

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the operator."""
        return int(self.sources.shape[0])

    def __call__(self, hidden: Tensor) -> Tensor:
        """Aggregate neighbour hidden states into each node's neighbourhood vector."""
        return sparse_matmul(self._operator, hidden)


class SAGEConvolution(Module):
    """A single GraphSAGE convolution: ``h' = act(W · concat(h, AGG(h_N)))``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
    ) -> None:
        super().__init__()
        self.linear = Linear(2 * in_dim, out_dim, rng=rng, init="he")
        self.activation = activation

    def forward(self, hidden: Tensor, aggregation: GraphAggregation) -> Tensor:
        neighborhood = aggregation(hidden)
        combined = Tensor.concat([hidden, neighborhood], axis=1)
        out = self.linear(combined)
        return out.relu() if self.activation else out


class GraphSAGE(Module):
    """Stack of GraphSAGE convolutions plus a per-intent prediction head."""

    def __init__(self, in_dim: int, config: GNNConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        dims = self._layer_dims(in_dim, config)
        self._convolutions: list[SAGEConvolution] = []
        for index in range(len(dims) - 1):
            is_last = index == len(dims) - 2
            convolution = SAGEConvolution(
                dims[index], dims[index + 1], rng=rng, activation=not is_last
            )
            setattr(self, f"conv{index}", convolution)
            self._convolutions.append(convolution)
        self.head = Linear(dims[-1], 2, rng=rng)

    @staticmethod
    def _layer_dims(in_dim: int, config: GNNConfig) -> list[int]:
        """Hidden dims: two layers use ``h1``; three layers use ``h1`` then ``h1/2``."""
        if config.num_layers == 2:
            return [in_dim, config.hidden_dim, config.hidden_dim]
        half = max(config.hidden_dim // 2, 2)
        return [in_dim, config.hidden_dim, half, half]

    @property
    def num_convolutions(self) -> int:
        """Number of stacked GraphSAGE convolutions."""
        return len(self._convolutions)

    def node_embeddings(self, features: Tensor, aggregation: GraphAggregation) -> Tensor:
        """Final hidden state of every node after message propagation."""
        hidden = features
        for convolution in self._convolutions:
            hidden = convolution(hidden, aggregation)
        return hidden

    def hidden_states(
        self, features: Tensor, aggregation: GraphAggregation
    ) -> list[np.ndarray]:
        """Per-convolution hidden states ``[h^1, ..., h^L]`` as arrays.

        ``h^l`` is the output of convolution ``l``; the input level
        ``h^0`` is the feature matrix itself.  The intermediate levels
        are what :class:`FrozenSAGE` aggregates when new nodes are
        attached for online inference, so a fitted model persists them
        alongside its weights.
        """
        states: list[np.ndarray] = []
        hidden = features
        for convolution in self._convolutions:
            hidden = convolution(hidden, aggregation)
            states.append(hidden.numpy())
        return states

    def forward(self, features: Tensor, aggregation: GraphAggregation) -> Tensor:
        """Class logits for every node."""
        return self.head(self.node_embeddings(features, aggregation))


class FrozenSAGE:
    """Numpy-only forward pass of a trained GraphSAGE state (serving path).

    A :class:`GraphSAGE` module owns autodiff tensors; the online query
    path only needs the *inference* arithmetic — per-convolution
    ``act(concat(h, agg) @ W + b)`` and the prediction head — applied to
    a handful of newly attached nodes whose neighbour hidden states are
    already known.  This class wraps a ``state_dict`` so a persisted
    model can run that arithmetic without constructing modules or
    aggregation operators.
    """

    def __init__(self, state: Mapping[str, np.ndarray], config: GNNConfig) -> None:
        self.config = config
        self._conv_weights: list[tuple[np.ndarray, np.ndarray]] = []
        index = 0
        while f"conv{index}.linear.weight" in state:
            self._conv_weights.append(
                (
                    np.asarray(state[f"conv{index}.linear.weight"], dtype=np.float64),
                    np.asarray(state[f"conv{index}.linear.bias"], dtype=np.float64),
                )
            )
            index += 1
        if not self._conv_weights or "head.weight" not in state:
            raise GraphConstructionError(
                "state dict does not describe a trained GraphSAGE model"
            )
        self._head = (
            np.asarray(state["head.weight"], dtype=np.float64),
            np.asarray(state["head.bias"], dtype=np.float64),
        )

    @property
    def num_convolutions(self) -> int:
        """Number of stacked convolutions in the frozen state."""
        return len(self._conv_weights)

    def convolve(self, level: int, hidden: np.ndarray, aggregated: np.ndarray) -> np.ndarray:
        """Apply convolution ``level`` to own/neighbourhood hidden states."""
        weight, bias = self._conv_weights[level]
        out = np.concatenate([hidden, aggregated], axis=1) @ weight + bias
        if level < len(self._conv_weights) - 1:
            out = np.maximum(out, 0.0)
        return out

    def probabilities(self, hidden: np.ndarray) -> np.ndarray:
        """Positive-class probability of each row of final hidden states."""
        weight, bias = self._head
        logits = hidden @ weight + bias
        shifted = logits - logits.max(axis=1, keepdims=True)
        exponents = np.exp(shifted)
        return (exponents / exponents.sum(axis=1, keepdims=True))[:, 1]


@dataclass
class GNNTrainingResult:
    """Outcome of training an intent-specific GraphSAGE model."""

    intent: str
    losses: list[float]
    best_validation_f1: float
    probabilities: np.ndarray

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch."""
        return self.losses[-1] if self.losses else float("nan")


def _binary_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """F1 of the positive class (used only for model selection here)."""
    true_positive = int(((predictions == 1) & (labels == 1)).sum())
    predicted_positive = int((predictions == 1).sum())
    actual_positive = int((labels == 1).sum())
    if predicted_positive == 0 or actual_positive == 0:
        return 0.0
    precision = true_positive / predicted_positive
    recall = true_positive / actual_positive
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


class IntentNodeClassifier:
    """Train GraphSAGE for one target intent and score all of its layer nodes.

    FlexER trains one model per intent over the same multiplex graph
    (Section 4.3).  Supervision uses the training pairs of the target
    intent; the best model over the validation pairs is kept and applied
    to every pair of the layer.
    """

    spec_type = "graphsage"

    def __init__(self, config: GNNConfig | None = None) -> None:
        self.config = config or GNNConfig()
        self._model: GraphSAGE | None = None
        self.result: GNNTrainingResult | None = None

    def to_spec(self) -> dict[str, object]:
        """Serialize the classifier into a registry spec.

        The GNN hyper-parameters live in the shared
        :class:`~repro.config.GNNConfig` (creation-time context), so the
        spec only names the classifier family.
        """
        return {"type": self.spec_type, "params": {}}

    @classmethod
    def from_spec(
        cls, params: Mapping[str, object], *, config: GNNConfig | None = None
    ) -> "IntentNodeClassifier":
        """Construct the classifier from a spec plus the shared GNN config."""
        return cls(config=config, **params)

    def fit_predict(
        self,
        graph: MultiplexGraph,
        target_intent: str,
        train_index: np.ndarray,
        train_labels: np.ndarray,
        valid_index: np.ndarray | None = None,
        valid_labels: np.ndarray | None = None,
    ) -> GNNTrainingResult:
        """Train on the target layer and return likelihoods for all its pairs.

        Parameters
        ----------
        graph:
            The multiplex intent graph over all candidate pairs.
        target_intent:
            The intent whose layer provides supervision and predictions.
        train_index, train_labels:
            Pair indices (within the candidate order used to build the
            graph) and binary labels used for the cross-entropy loss.
        valid_index, valid_labels:
            Optional validation pairs for best-epoch selection.
        """
        train_index = np.asarray(train_index, dtype=np.int64)
        train_labels = np.asarray(train_labels, dtype=np.int64)
        if train_index.shape[0] != train_labels.shape[0]:
            raise GraphConstructionError("train_index and train_labels must align")
        if train_index.size == 0:
            raise GraphConstructionError("training requires at least one labeled pair")

        layer_nodes = graph.layer_nodes(target_intent)
        train_nodes = layer_nodes[train_index]
        valid_nodes = (
            layer_nodes[np.asarray(valid_index, dtype=np.int64)]
            if valid_index is not None and len(valid_index) > 0
            else None
        )

        features = Tensor(graph.features)
        aggregation = GraphAggregation.from_graph(graph, mode=self.config.aggregator)
        model = GraphSAGE(graph.feature_dim, self.config)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)

        losses: list[float] = []
        best_f1 = -1.0
        best_state = model.state_dict()
        for _ in range(self.config.epochs):
            model.train()
            logits = model(features, aggregation)
            train_logits = logits.index_select(train_nodes)
            loss = cross_entropy(train_logits, train_labels)
            if self.config.weight_decay:
                loss = loss + l2_penalty(list(model.parameters()), self.config.weight_decay)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())

            if valid_nodes is not None and valid_labels is not None:
                model.eval()
                with_probabilities = model(features, aggregation).softmax(axis=1).numpy()
                valid_predictions = (with_probabilities[valid_nodes, 1] >= 0.5).astype(np.int64)
                f1 = _binary_f1(valid_predictions, np.asarray(valid_labels, dtype=np.int64))
                if f1 > best_f1:
                    best_f1 = f1
                    best_state = model.state_dict()

        if valid_nodes is not None and valid_labels is not None and best_f1 >= 0:
            model.load_state_dict(best_state)

        model.eval()
        probabilities = model(features, aggregation).softmax(axis=1).numpy()
        layer_probabilities = probabilities[layer_nodes, 1]
        self._model = model
        self.result = GNNTrainingResult(
            intent=target_intent,
            losses=losses,
            best_validation_f1=max(best_f1, 0.0),
            probabilities=layer_probabilities,
        )
        return self.result

    def predict(self, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions for every pair of the target layer."""
        if self.result is None:
            raise NotFittedError("fit_predict must be called before predict")
        return (self.result.probabilities >= threshold).astype(np.int64)

    def model_state(self) -> dict[str, np.ndarray]:
        """Parameters of the trained GraphSAGE model (best epoch restored).

        This is what a :class:`~repro.model.ResolverModel` persists per
        intent so the online query path can run frozen inference.
        """
        if self._model is None:
            raise NotFittedError("fit_predict must be called before model_state")
        return self._model.state_dict()

    def hidden_states(self, graph: MultiplexGraph) -> list[np.ndarray]:
        """Per-convolution hidden states of the trained model over ``graph``."""
        if self._model is None:
            raise NotFittedError("fit_predict must be called before hidden_states")
        aggregation = GraphAggregation.from_graph(graph, mode=self.config.aggregator)
        self._model.eval()
        return self._model.hidden_states(Tensor(graph.features), aggregation)


# ----------------------------------------------------------- sharded execution


@dataclass(frozen=True)
class ClassifierJob:
    """The per-intent supervision of one GNN training task.

    Jobs carry only plain arrays and the intent name, so the process
    executor ships them (alongside a graph payload) to workers without
    any shared state.
    """

    intent: str
    train_index: np.ndarray
    train_labels: np.ndarray
    valid_index: np.ndarray | None = None
    valid_labels: np.ndarray | None = None


def run_classifier_job(
    graph_payload: dict[str, object],
    classifier_spec: dict[str, object],
    config: GNNConfig,
    job: ClassifierJob,
) -> tuple[np.ndarray, float, float, dict[str, np.ndarray]]:
    """Train one per-intent classifier from shipped inputs (executor task).

    Rebuilds the multiplex graph from its
    :meth:`~repro.graph.multiplex.MultiplexGraph.to_payload` arrays,
    constructs the classifier through the registry, and returns
    ``(layer_probabilities, best_validation_f1, elapsed_seconds,
    model_state)`` — the trained parameter arrays ride along so the
    pipeline can persist them in the model artifact.  Training is fully
    seeded by ``config``, so the result is bit-identical wherever the
    job runs — the basis of the serial / thread / process executor
    equivalence guarantee.
    """
    # Imported lazily: the registry imports this module at start-up.
    from ..registry import INTENT_CLASSIFIERS
    from .multiplex import MultiplexGraph

    graph = MultiplexGraph.from_payload(graph_payload)
    start = time.perf_counter()
    classifier = INTENT_CLASSIFIERS.create(classifier_spec, config=config)
    result = classifier.fit_predict(
        graph,
        target_intent=job.intent,
        train_index=job.train_index,
        train_labels=job.train_labels,
        valid_index=job.valid_index,
        valid_labels=job.valid_labels,
    )
    elapsed = time.perf_counter() - start
    state = classifier.model_state() if hasattr(classifier, "model_state") else {}
    return result.probabilities, result.best_validation_f1, elapsed, state
