"""Intent graph construction (Section 4.1).

The builder turns per-intent pair representations into a
:class:`~repro.graph.multiplex.MultiplexGraph`:

1. every layer is initialized with the intent-based representations of
   all candidate pairs (``|C| · |Π|`` nodes in total);
2. intra-layer edges connect each node to its ``k`` nearest neighbours
   within its layer (L2 distance over the initial representations, exact
   search — the Faiss substitute), with edges *incoming* from the
   neighbours;
3. inter-layer edges connect each node to its peers (same record pair)
   in every other layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..ann.knn import ExactNearestNeighbors
from ..config import GraphConfig
from ..exceptions import GraphConstructionError
from ..perf.instrument import profiled
from .multiplex import MultiplexGraph

#: Module-level default for the edge-construction implementation; flipped
#: by :func:`repro.perf.compat.use_reference_implementations`.
VECTORIZED = True


@dataclass(frozen=True)
class GraphBuildReport:
    """Timing-free construction statistics returned next to the graph."""

    num_pairs: int
    num_intents: int
    intra_edges: int
    inter_edges: int


class IntentGraphBuilder:
    """Build multiplex intent graphs from per-intent representations.

    Registered in :data:`repro.registry.GRAPH_BUILDERS` under
    ``"intent_graph"``.  The builder has no parameters beyond the shared
    :class:`~repro.config.GraphConfig`, which is creation-time context
    (``create(spec, config=...)``) rather than part of the spec — graph
    hyper-parameters already participate in stage fingerprints through
    ``FlexERConfig.graph``.
    """

    spec_type = "intent_graph"

    def __init__(self, config: GraphConfig | None = None) -> None:
        self.config = config or GraphConfig()

    def to_spec(self) -> dict[str, object]:
        """Serialize the builder into a registry spec."""
        return {"type": self.spec_type, "params": {}}

    @classmethod
    def from_spec(
        cls, params: Mapping[str, object], *, config: GraphConfig | None = None
    ) -> "IntentGraphBuilder":
        """Construct the builder from a spec plus the shared graph config."""
        return cls(config=config, **params)

    @profiled("graph-build")
    def build(
        self,
        representations: Mapping[str, np.ndarray],
        intents: Sequence[str] | None = None,
    ) -> MultiplexGraph:
        """Construct the graph.

        Parameters
        ----------
        representations:
            Mapping from intent name to the ``(|C|, d)`` representation
            matrix of all candidate pairs under that intent.  All
            matrices must agree on both dimensions.
        intents:
            Optional ordered subset of intents to include (used by the
            Figure 6 intent-subset analysis); defaults to every key of
            ``representations`` in insertion order.
        """
        if not representations:
            raise GraphConstructionError("representations must not be empty")
        intent_names = tuple(intents) if intents is not None else tuple(representations)
        missing = [name for name in intent_names if name not in representations]
        if missing:
            raise GraphConstructionError(f"missing representations for intents: {missing}")

        matrices = [np.asarray(representations[name], dtype=np.float64) for name in intent_names]
        num_pairs = matrices[0].shape[0]
        dim = matrices[0].shape[1]
        for name, matrix in zip(intent_names, matrices):
            if matrix.ndim != 2 or matrix.shape != (num_pairs, dim):
                raise GraphConstructionError(
                    f"representation of intent {name!r} has shape {matrix.shape}, "
                    f"expected {(num_pairs, dim)}"
                )
        if num_pairs == 0:
            raise GraphConstructionError("cannot build a graph over zero pairs")

        features = np.concatenate(matrices, axis=0)
        graph = MultiplexGraph(
            intents=intent_names,
            num_pairs=num_pairs,
            features=features,
        )

        intra_edges = self._add_intra_layer_edges(graph, matrices)
        inter_edges = self._add_inter_layer_edges(graph) if self.config.include_inter_layer else 0
        graph.intra_edge_count = intra_edges
        graph.inter_edge_count = inter_edges
        return graph

    # ------------------------------------------------------------- internals

    def _add_intra_layer_edges(
        self, graph: MultiplexGraph, matrices: list[np.ndarray]
    ) -> int:
        """Connect every node to its k nearest neighbours within its layer."""
        k = self.config.k_neighbors
        if k == 0:
            return 0
        if not VECTORIZED:
            return self._add_intra_layer_edges_loop(graph, matrices)
        count = 0
        num_pairs = graph.num_pairs
        for layer, matrix in enumerate(matrices):
            if num_pairs < 2:
                continue
            index = ExactNearestNeighbors(metric=self.config.metric).fit(matrix)
            result = index.search(matrix, k, exclude_self=True)
            neighbor_indices = np.asarray(result.indices, dtype=np.int64)
            effective_k = neighbor_indices.shape[1]
            if effective_k == 0:
                continue
            layer_start = layer * num_pairs
            # Row-major ravel matches the loop order exactly: pair index
            # outer, neighbour rank inner.
            sources = layer_start + neighbor_indices.ravel()
            targets = layer_start + np.repeat(
                np.arange(num_pairs, dtype=np.int64), effective_k
            )
            graph.add_edges(sources, targets)
            count += int(sources.size)
        return count

    def _add_intra_layer_edges_loop(
        self, graph: MultiplexGraph, matrices: list[np.ndarray]
    ) -> int:
        """Reference (per-edge loop) implementation of the intra-layer pass."""
        k = self.config.k_neighbors
        count = 0
        for layer, matrix in enumerate(matrices):
            if graph.num_pairs < 2:
                continue
            index = ExactNearestNeighbors(metric=self.config.metric).fit(matrix)
            result = index.search(matrix, k, exclude_self=True)
            neighbor_rows = result.neighbor_lists()
            for pair_index in range(graph.num_pairs):
                target = graph.node_index(layer, pair_index)
                for neighbor_pair in neighbor_rows[pair_index]:
                    source = graph.node_index(layer, int(neighbor_pair))
                    graph.add_edge(source, target)
                    count += 1
        return count

    def _add_inter_layer_edges(self, graph: MultiplexGraph) -> int:
        """Connect each node to its peers (same pair) in every other layer."""
        num_layers = graph.num_intents
        if num_layers < 2:
            return 0
        if not VECTORIZED:
            return self._add_inter_layer_edges_loop(graph)
        num_pairs = graph.num_pairs
        layers = np.arange(num_layers, dtype=np.int64)
        # Off-diagonal (target_layer, source_layer) combinations in the
        # loop's row-major order: target outer, source inner.
        target_layers = np.repeat(layers, num_layers)
        source_layers = np.tile(layers, num_layers)
        off_diagonal = target_layers != source_layers
        target_layers = target_layers[off_diagonal]
        source_layers = source_layers[off_diagonal]
        pair_indices = np.arange(num_pairs, dtype=np.int64)[:, np.newaxis]
        targets = (pair_indices + num_pairs * target_layers[np.newaxis, :]).ravel()
        sources = (pair_indices + num_pairs * source_layers[np.newaxis, :]).ravel()
        graph.add_edges(sources, targets)
        return int(sources.size)

    def _add_inter_layer_edges_loop(self, graph: MultiplexGraph) -> int:
        """Reference (per-edge loop) implementation of the inter-layer pass."""
        count = 0
        num_layers = graph.num_intents
        for pair_index in range(graph.num_pairs):
            nodes = [graph.node_index(layer, pair_index) for layer in range(num_layers)]
            for target in nodes:
                for source in nodes:
                    if source == target:
                        continue
                    graph.add_edge(source, target)
                    count += 1
        return count

    def report(self, graph: MultiplexGraph) -> GraphBuildReport:
        """Summarize a built graph."""
        return GraphBuildReport(
            num_pairs=graph.num_pairs,
            num_intents=graph.num_intents,
            intra_edges=graph.intra_edge_count,
            inter_edges=graph.inter_edge_count,
        )
