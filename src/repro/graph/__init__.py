"""Multiplex intent graph and GraphSAGE GNN."""

from .multiplex import MultiplexGraph
from .builder import IntentGraphBuilder, GraphBuildReport
from .sage import (
    GraphAggregation,
    SAGEConvolution,
    GraphSAGE,
    IntentNodeClassifier,
    GNNTrainingResult,
)

__all__ = [
    "MultiplexGraph",
    "IntentGraphBuilder",
    "GraphBuildReport",
    "GraphAggregation",
    "SAGEConvolution",
    "GraphSAGE",
    "IntentNodeClassifier",
    "GNNTrainingResult",
]
