"""Optimizers: SGD (with momentum) and Adam.

The paper fine-tunes matchers and trains the GNN with Adam (Kingma & Ba),
optionally with decoupled weight decay; both are provided here.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..exceptions import ConfigurationError
from .layers import Parameter


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update using the accumulated gradients."""
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                self._velocity[index] = (
                    self.momentum * self._velocity[index] - self.lr * gradient
                )
                parameter.data = parameter.data + self._velocity[index]
            else:
                parameter.data = parameter.data - self.lr * gradient


class Adam(Optimizer):
    """Adam optimizer with decoupled weight decay (AdamW-style)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ConfigurationError("betas must be in [0, 1)")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step += 1
        beta1, beta2 = self.betas
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            self._m[index] = beta1 * self._m[index] + (1.0 - beta1) * gradient
            self._v[index] = beta2 * self._v[index] + (1.0 - beta2) * gradient * gradient
            m_hat = self._m[index] / (1.0 - beta1**self._step)
            v_hat = self._v[index] / (1.0 - beta2**self._step)
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * parameter.data
            parameter.data = parameter.data - self.lr * update
