"""Numpy-based neural-network substrate (autodiff, layers, losses, optimizers)."""

from .tensor import Tensor
from .layers import (
    Parameter,
    Module,
    Linear,
    ReLU,
    Tanh,
    Sigmoid,
    Dropout,
    Sequential,
    MLP,
)
from .losses import (
    cross_entropy,
    binary_cross_entropy_with_logits,
    multilabel_weighted_bce,
    l2_penalty,
)
from .optim import Optimizer, SGD, Adam
from .init import xavier_uniform, he_uniform, zeros

__all__ = [
    "Tensor",
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Sequential",
    "MLP",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "multilabel_weighted_bce",
    "l2_penalty",
    "Optimizer",
    "SGD",
    "Adam",
    "xavier_uniform",
    "he_uniform",
    "zeros",
]
