"""Loss functions.

Implements the cross-entropy loss of Eq. 1 (binary classification over
two logits, as used to fine-tune per-intent matchers), the weighted
multi-label binary cross-entropy of Eq. 2 (the multi-label baseline), and
plain binary cross-entropy with logits.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import EvaluationError
from .tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray | Sequence[int]) -> Tensor:
    """Mean cross-entropy of class ``logits`` against integer ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(n, num_classes)``.
    targets:
        Integer class indices of shape ``(n,)``.
    """
    target_array = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise EvaluationError("cross_entropy expects 2-D logits")
    if target_array.shape[0] != logits.shape[0]:
        raise EvaluationError("logits and targets must agree on the batch dimension")
    n, num_classes = logits.shape
    one_hot = np.zeros((n, num_classes), dtype=np.float64)
    one_hot[np.arange(n), target_array] = 1.0
    log_probs = logits.log_softmax(axis=1)
    negative_log_likelihood = -(log_probs * Tensor(one_hot)).sum(axis=1)
    return negative_log_likelihood.mean()


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray | Sequence[float],
    pos_weight: float = 1.0,
) -> Tensor:
    """Mean binary cross-entropy of sigmoid ``logits`` against 0/1 ``targets``.

    Uses the numerically stable formulation
    ``max(x, 0) - x*y + log(1 + exp(-|x|))`` expressed through autodiff
    primitives via the sigmoid/log pair with clipping.
    """
    target_array = np.asarray(targets, dtype=np.float64)
    if target_array.shape != logits.shape:
        target_array = target_array.reshape(logits.shape)
    probabilities = logits.sigmoid()
    target_tensor = Tensor(target_array)
    positive_term = target_tensor * probabilities.log() * pos_weight
    negative_term = (Tensor(1.0) - target_tensor) * (Tensor(1.0) - probabilities).log()
    return -(positive_term + negative_term).mean()


def multilabel_weighted_bce(
    logits: Tensor,
    targets: np.ndarray,
    intent_weights: np.ndarray | Sequence[float] | None = None,
) -> Tensor:
    """Weighted multi-label binary cross-entropy (Eq. 2 of the paper).

    Parameters
    ----------
    logits:
        Tensor of shape ``(n, P)``: one raw score per intent.
    targets:
        Binary matrix of shape ``(n, P)``.
    intent_weights:
        Per-intent weights ``w_p``; defaults to equal weights (the
        configuration used in the paper after preliminary experiments).
    """
    target_array = np.asarray(targets, dtype=np.float64)
    if logits.ndim != 2 or target_array.shape != logits.shape:
        raise EvaluationError("multilabel_weighted_bce expects matching (n, P) shapes")
    _, num_intents = logits.shape
    if intent_weights is None:
        weights = np.ones(num_intents, dtype=np.float64)
    else:
        weights = np.asarray(intent_weights, dtype=np.float64)
        if weights.shape != (num_intents,):
            raise EvaluationError("intent_weights must have one weight per intent")
    probabilities = logits.sigmoid()
    target_tensor = Tensor(target_array)
    weight_tensor = Tensor(weights.reshape(1, num_intents))
    per_element = -(
        target_tensor * probabilities.log()
        + (Tensor(1.0) - target_tensor) * (Tensor(1.0) - probabilities).log()
    )
    weighted = per_element * weight_tensor
    # Average over intents (1/P) then over the batch, matching Eq. 2.
    return weighted.mean(axis=1).mean()


def l2_penalty(parameters: Sequence[Tensor], weight: float) -> Tensor:
    """Sum of squared parameter norms scaled by ``weight`` (explicit L2)."""
    total: Tensor | None = None
    for parameter in parameters:
        term = (parameter * parameter).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * weight
