"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a weight matrix."""
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization (suited to ReLU activations)."""
    fan_in, _ = shape
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
