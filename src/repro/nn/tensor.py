"""A small reverse-mode automatic differentiation engine over numpy.

This module is the reproduction's substitute for PyTorch.  A
:class:`Tensor` wraps a numpy array, records the operations that produced
it, and :meth:`Tensor.backward` propagates gradients through the recorded
graph in reverse topological order.  Only the operations needed by the
matchers and the GraphSAGE model are implemented, but they are implemented
with full broadcasting support so models can be written naturally.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

ArrayLike = np.ndarray | float | int | Sequence


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` over broadcast dimensions so it matches ``shape``."""
    if gradient.shape == shape:
        return gradient
    # One reduction pass instead of one ``sum`` per broadcast axis:
    # leading extra dimensions plus every dimension expanded from size 1.
    extra = gradient.ndim - len(shape)
    axes = tuple(range(extra)) + tuple(
        extra + axis
        for axis, size in enumerate(shape)
        if size == 1 and gradient.shape[extra + axis] != 1
    )
    if axes:
        gradient = gradient.sum(axis=axes, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array content; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] = lambda: None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------ utils

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a one-element tensor."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        # The gradient buffer is privately owned (allocated above or by a
        # copy in ``backward``), so accumulation is in-place — one fused
        # add instead of an allocation per contribution.  ``gradient``
        # may be any view broadcastable to the buffer's shape.
        self.grad += gradient

    @staticmethod
    def _lift(value: "Tensor" | ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------- arithmetic

    def __add__(self, other: "Tensor" | ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data + other.data, self.requires_grad or other.requires_grad)
        out._parents = (self, other)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(-out.grad)

        out._backward = _backward
        return out

    def __sub__(self, other: "Tensor" | ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: "Tensor" | ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: "Tensor" | ArrayLike) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data * other.data, self.requires_grad or other.requires_grad)
        out._parents = (self, other)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor" | ArrayLike) -> "Tensor":
        other = self._lift(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other: "Tensor" | ArrayLike) -> "Tensor":
        return self._lift(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Element-wise power with a constant exponent."""
        out = Tensor(np.power(self.data, exponent), self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1.0))

        out._backward = _backward
        return out

    def matmul(self, other: "Tensor" | ArrayLike) -> "Tensor":
        """Matrix product ``self @ other`` for 2-D operands."""
        other = self._lift(other)
        out = Tensor(self.data @ other.data, self.requires_grad or other.requires_grad)
        out._parents = (self, other)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad @ other.data.T)
            other._accumulate(self.data.T @ out.grad)

        out._backward = _backward
        return out

    __matmul__ = matmul

    # -------------------------------------------------------------- reshaping

    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view participating in the graph."""
        out = Tensor(self.data.reshape(*shape), self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self) -> "Tensor":
        """Transpose of a 2-D tensor."""
        out = Tensor(self.data.T, self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad.T)

        out._backward = _backward
        return out

    def index_select(self, indices: np.ndarray | Sequence[int]) -> "Tensor":
        """Select rows of a 2-D tensor (gather); gradients scatter-add back."""
        index_array = np.asarray(indices, dtype=np.int64)
        out = Tensor(self.data[index_array], self.requires_grad)
        out._parents = (self,)
        # Distinct indices (the common case: supervision rows) scatter
        # with direct assignment; ``np.add.at`` — an order of magnitude
        # slower — is only needed when rows repeat.
        has_duplicates = (
            index_array.size > 1 and np.unique(index_array).size < index_array.size
        )

        def _backward() -> None:
            assert out.grad is not None
            gradient = np.zeros_like(self.data)
            if has_duplicates:
                np.add.at(gradient, index_array, out.grad)
            else:
                gradient[index_array] = out.grad
            self._accumulate(gradient)

        out._backward = _backward
        return out

    # ------------------------------------------------------------- reductions

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or all elements)."""
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            gradient = out.grad
            if axis is not None and not keepdims:
                gradient = np.expand_dims(gradient, axis=axis)
            # Broadcasting happens inside the in-place accumulation; no
            # materialized copy of the expanded gradient is needed.
            self._accumulate(np.broadcast_to(gradient, self.shape))

        out._backward = _backward
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (or all elements)."""
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max over ``axis``; gradient flows to the (first) argmax entries."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            gradient = out.grad if keepdims else np.expand_dims(out.grad, axis=axis)
            self._accumulate(mask * gradient)

        out._backward = _backward
        return out

    # ------------------------------------------------------------ activations

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        out = Tensor(np.maximum(self.data, 0.0), self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad * (self.data > 0.0))

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        value = np.tanh(self.data)
        out = Tensor(value, self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad * (1.0 - value * value))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        """Numerically stable logistic sigmoid."""
        value = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )
        out = Tensor(value, self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad * value * (1.0 - value))

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        """Natural logarithm (inputs are clipped away from zero)."""
        clipped = np.clip(self.data, 1e-12, None)
        out = Tensor(np.log(clipped), self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad / clipped)

        out._backward = _backward
        return out

    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        value = np.exp(np.clip(self.data, -500, 500))
        out = Tensor(value, self.requires_grad)
        out._parents = (self,)

        def _backward() -> None:
            assert out.grad is not None
            self._accumulate(out.grad * value)

        out._backward = _backward
        return out

    # ------------------------------------------------------------- composites

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 1) -> "Tensor":
        """Concatenate tensors along ``axis`` (the CONC operator of Eq. 4)."""
        data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
        requires_grad = any(tensor.requires_grad for tensor in tensors)
        out = Tensor(data, requires_grad)
        out._parents = tuple(tensors)
        sizes = [tensor.data.shape[axis] for tensor in tensors]

        def _backward() -> None:
            assert out.grad is not None
            start = 0
            for tensor, size in zip(tensors, sizes):
                indexer: list[slice] = [slice(None)] * out.grad.ndim
                indexer[axis] = slice(start, start + size)
                tensor._accumulate(out.grad[tuple(indexer)])
                start += size

        out._backward = _backward
        return out

    def log_softmax(self, axis: int = 1) -> "Tensor":
        """Log-softmax along ``axis`` implemented via stable primitives."""
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        log_sum = shifted.exp().sum(axis=axis, keepdims=True).log()
        return shifted - log_sum

    def softmax(self, axis: int = 1) -> "Tensor":
        """Softmax along ``axis``."""
        return self.log_softmax(axis=axis).exp()

    # --------------------------------------------------------------- backward

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        gradient:
            Seed gradient; defaults to 1 for scalar tensors.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            gradient = np.ones_like(self.data)
        # Copy the seed: gradient buffers are accumulated in-place, so the
        # caller's array must never be aliased.
        self.grad = np.array(gradient, dtype=np.float64).reshape(self.data.shape)

        ordered: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            ordered.append(node)

        visit(self)
        for node in reversed(ordered):
            # Nodes that do not require gradients never receive one from
            # their children; their backward step has nothing to propagate.
            if node.grad is not None:
                node._backward()
