"""Neural-network modules built on the autodiff :class:`~repro.nn.tensor.Tensor`.

The module system intentionally mirrors a slim subset of ``torch.nn``:
modules own named parameters, compose hierarchically, and expose
``parameters()`` for the optimizers.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .init import he_uniform, xavier_uniform, zeros
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module tree."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        """Switch this module tree to training mode."""
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        """Switch this module tree to evaluation mode."""
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(parameter.data.size for parameter in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        for name, value in state.items():
            if name not in own:
                raise KeyError(f"unexpected parameter in state dict: {name!r}")
            if own[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{own[name].data.shape} vs {value.shape}"
                )
            own[name].data = value.copy()

    def forward(self, *inputs: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *inputs: Tensor) -> Tensor:
        return self.forward(*inputs)


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        init: str = "xavier",
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if init == "he":
            weight = he_uniform((in_features, out_features), rng)
        else:
            weight = xavier_uniform((in_features, out_features), rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight)
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return inputs
        mask = (self._rng.random(inputs.shape) >= self.p) / (1.0 - self.p)
        return inputs * Tensor(mask)


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: list[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs
        for module in self._ordered:
            out = module(out)
        return out


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between hidden layers.

    The layer before the final projection exposes its activations via
    :meth:`hidden_representation`, which is how matchers extract latent
    pair representations (the ``[CLS]`` analogue).
    """

    def __init__(
        self,
        in_features: int,
        hidden_dims: tuple[int, ...],
        out_features: int,
        rng: np.random.Generator | None = None,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        dims = [in_features, *hidden_dims]
        hidden_layers: list[Module] = []
        for index in range(len(dims) - 1):
            hidden_layers.append(Linear(dims[index], dims[index + 1], rng=rng, init="he"))
            hidden_layers.append(ReLU())
            if dropout > 0:
                hidden_layers.append(Dropout(dropout, seed=int(rng.integers(1 << 31))))
        self.hidden = Sequential(*hidden_layers)
        self.head = Linear(dims[-1], out_features, rng=rng)

    def hidden_representation(self, inputs: Tensor) -> Tensor:
        """Activations of the last hidden layer (the latent representation)."""
        return self.hidden(inputs)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.head(self.hidden(inputs))
