"""Sparse (edge-list) neighbourhood aggregation for graph neural networks.

Dense aggregation multiplies the node-feature matrix by an ``n × n``
adjacency operator, which is quadratic in the number of nodes.  The
multiplex intent graph is sparse — every node has ``k`` intra-layer and
``|Π| - 1`` inter-layer incoming edges — so aggregation is implemented as
a scatter-add over the edge list instead, with a matching backward pass
(gather from the target gradients back to the source nodes).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from ..exceptions import GraphConstructionError
from .tensor import Tensor


def scatter_aggregate(
    hidden: Tensor,
    sources: np.ndarray,
    targets: np.ndarray,
    num_nodes: int,
    weights: np.ndarray,
) -> Tensor:
    """Aggregate neighbour states along directed edges.

    Computes ``out[t] = Σ_{(s, t) ∈ E} w_{s,t} · hidden[s]`` for every
    target node ``t`` — mean aggregation when the weights of a target's
    incoming edges sum to one, sum aggregation when they are all one.

    Parameters
    ----------
    hidden:
        Node states of shape ``(num_nodes, d)``.
    sources, targets:
        Edge endpoint index arrays of equal length (messages flow from
        ``sources[i]`` to ``targets[i]``).
    num_nodes:
        Number of nodes (rows of the output).
    weights:
        Per-edge weights of the same length as the edge arrays.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if sources.shape != targets.shape or sources.shape != weights.shape:
        raise GraphConstructionError("sources, targets, and weights must have equal length")
    if hidden.ndim != 2 or hidden.shape[0] != num_nodes:
        raise GraphConstructionError(
            f"hidden has shape {hidden.shape}, expected ({num_nodes}, d)"
        )

    operator = sp.csr_matrix(
        (weights, (targets, sources)), shape=(num_nodes, num_nodes)
    )
    return sparse_matmul(operator, hidden)


def sparse_matmul(operator: sp.spmatrix, hidden: Tensor) -> Tensor:
    """Multiply a constant sparse operator by a dense autodiff tensor.

    Forward: ``out = A @ hidden``; backward: ``grad_hidden = Aᵀ @ grad_out``.
    The operator is treated as a constant (no gradient flows into it).
    """
    if hidden.ndim != 2 or operator.shape[1] != hidden.shape[0]:
        raise GraphConstructionError(
            f"operator shape {operator.shape} does not match hidden shape {hidden.shape}"
        )
    csr = operator.tocsr()
    out = Tensor(csr @ hidden.data, requires_grad=hidden.requires_grad)
    out._parents = (hidden,)

    def _backward() -> None:
        assert out.grad is not None
        hidden._accumulate(csr.T @ out.grad)

    out._backward = _backward
    return out
