"""Switch the library between vectorized and reference implementations.

The vectorization sweep kept every pre-existing loop implementation as a
reference oracle (``encode_loop``, ``block_loop``, the builder's
per-edge passes).  :func:`use_reference_implementations` re-routes the
default entry points onto those loops for the duration of a ``with``
block, so the perf CLI can measure the same end-to-end workload under
both implementations and report the speedup honestly.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator

from ..blocking import base as blocking_base
from ..graph import builder as graph_builder
from ..matching import features as matching_features
from ..text import vectorizers as text_vectorizers

#: (module, attribute) pairs flipped by the context manager.
_FLAGS = (
    (matching_features, "VECTORIZED"),
    (blocking_base, "VECTORIZED"),
    (graph_builder, "VECTORIZED"),
    (text_vectorizers, "CACHE_BUCKETS"),
)


def vectorization_enabled() -> dict[str, bool]:
    """Current state of every implementation flag (for reports)."""
    return {
        f"{module.__name__}.{attribute}": bool(getattr(module, attribute))
        for module, attribute in _FLAGS
    }


@contextmanager
def use_reference_implementations() -> Iterator[None]:
    """Run the enclosed block with the scalar/loop reference paths."""
    saved = [(module, attribute, getattr(module, attribute)) for module, attribute in _FLAGS]
    try:
        for module, attribute in _FLAGS:
            setattr(module, attribute, False)
        yield
    finally:
        for module, attribute, value in saved:
            setattr(module, attribute, value)
