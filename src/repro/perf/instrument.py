"""Timer and memory instrumentation for the performance subsystem.

A :class:`PerfSession` collects :class:`StageRecord` entries — wall-clock
plus resident-set-size readings — for named stages of a run.  Library hot
paths are annotated with the :func:`profiled` decorator: when no session
is active the decorator adds one dictionary lookup of overhead; inside a
``with PerfSession().activate():`` block every call is timed and recorded.

The module is dependency-free (stdlib only) so any layer of the library
can import it without cycles.
"""

from __future__ import annotations

import functools
import resource
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

__all__ = [
    "StageRecord",
    "PerfSession",
    "active_session",
    "observe",
    "profiled",
    "rss_bytes",
]


def rss_bytes() -> int:
    """Peak resident set size of this process in bytes.

    ``ru_maxrss`` is reported in kilobytes on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


@dataclass(frozen=True)
class StageRecord:
    """One timed stage: wall seconds, peak RSS around the stage, items."""

    name: str
    wall_seconds: float
    rss_before_bytes: int = 0
    rss_after_bytes: int = 0
    items: int | None = None

    @property
    def throughput_items_per_second(self) -> float | None:
        """Items processed per wall second (``None`` without an item count)."""
        if self.items is None or self.wall_seconds <= 0:
            return None
        return self.items / self.wall_seconds

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable view used by the ``BENCH_perf.json`` report."""
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "rss_before_bytes": self.rss_before_bytes,
            "rss_after_bytes": self.rss_after_bytes,
            "items": self.items,
            "throughput_items_per_second": self.throughput_items_per_second,
        }


@dataclass
class PerfSession:
    """A collection of stage records for one profiled run."""

    records: list[StageRecord] = field(default_factory=list)

    def record(self, name: str, wall_seconds: float, items: int | None = None) -> StageRecord:
        """Append an externally timed stage (RSS sampled at call time)."""
        rss = rss_bytes()
        entry = StageRecord(
            name=name,
            wall_seconds=wall_seconds,
            rss_before_bytes=rss,
            rss_after_bytes=rss,
            items=items,
        )
        self.records.append(entry)
        return entry

    @contextmanager
    def stage(self, name: str, items: int | None = None) -> Iterator[None]:
        """Time a ``with`` block as one stage of this session."""
        before = rss_bytes()
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.records.append(
                StageRecord(
                    name=name,
                    wall_seconds=elapsed,
                    rss_before_bytes=before,
                    rss_after_bytes=rss_bytes(),
                    items=items,
                )
            )

    @contextmanager
    def activate(self) -> Iterator["PerfSession"]:
        """Make this session the target of :func:`profiled` hooks."""
        _SESSIONS.append(self)
        try:
            yield self
        finally:
            _SESSIONS.remove(self)

    def total_seconds(self, name: str | None = None) -> float:
        """Sum of recorded wall seconds, optionally for one stage name."""
        return float(
            sum(r.wall_seconds for r in self.records if name is None or r.name == name)
        )

    def stage_names(self) -> list[str]:
        """Distinct stage names in first-recorded order."""
        return list(dict.fromkeys(record.name for record in self.records))

    def as_dicts(self) -> list[dict[str, object]]:
        """All records as JSON-serializable dictionaries."""
        return [record.as_dict() for record in self.records]


#: Stack of active sessions; :func:`profiled` reports to the innermost.
_SESSIONS: list[PerfSession] = []


def active_session() -> PerfSession | None:
    """The innermost active session, or ``None`` outside any session."""
    return _SESSIONS[-1] if _SESSIONS else None


def observe(name: str, wall_seconds: float, items: int | None = None) -> None:
    """Report an externally timed stage to the active session (if any).

    This is the hook :class:`~repro.core.flexer.FlexERTimings` and the
    staged pipeline use to surface their phase timings to a profiling
    session without depending on this package being active.
    """
    session = active_session()
    if session is not None:
        session.record(name, wall_seconds, items=items)


def profiled(name: str, items_from: Callable[..., int] | None = None):
    """Decorate a function so active sessions record its calls.

    Parameters
    ----------
    name:
        Stage name under which calls are recorded.
    items_from:
        Optional callable receiving the wrapped function's arguments and
        returning an item count for throughput reporting.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            session = active_session()
            if session is None:
                return fn(*args, **kwargs)
            items = items_from(*args, **kwargs) if items_from is not None else None
            before = rss_bytes()
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                session.records.append(
                    StageRecord(
                        name=name,
                        wall_seconds=elapsed,
                        rss_before_bytes=before,
                        rss_after_bytes=rss_bytes(),
                        items=items,
                    )
                )

        return wrapper

    return decorate
