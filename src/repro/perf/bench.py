"""The pinned performance workload matrix and the ``BENCH_perf.json`` report.

Every entry point here is deterministic and pinned: a
:class:`PerfWorkload` fixes the dataset, its scale, and every training
hyper-parameter, so two runs of the same repository state measure the
same computation.  The suite runs each workload end-to-end — blocking
plus the staged :class:`~repro.pipeline.PipelineRunner` on a cold
artifact cache, then a warm re-run — twice: once with the vectorized hot
paths and once with the retained loop reference implementations
(:mod:`repro.perf.compat`), and reports the per-stage breakdown plus the
end-to-end speedup.  Kernel-level micro-benchmarks (feature encoding,
block joins, graph edge construction, batched Levenshtein) accompany the
end-to-end numbers so a regression can be localized.

The JSON report is schema-versioned (:data:`SCHEMA_VERSION`);
:func:`check_regression` compares a fresh run against a committed
baseline and flags end-to-end wall-time regressions beyond a threshold.
"""

from __future__ import annotations

import datetime as _datetime
import json
import platform
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from ..blocking import QGramBlocker
from ..config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from ..exec import MERGE_STAGE_PREFIX, available_cpus, executor_spec, make_executor
from ..graph.builder import IntentGraphBuilder
from ..matching.features import PairFeatureConfig, PairFeatureEncoder
from ..pipeline import ArtifactCache, PipelineRunner
from ..text.similarity import levenshtein_similarities_batch, levenshtein_similarity
from .compat import use_reference_implementations, vectorization_enabled
from .instrument import PerfSession, rss_bytes

#: Version of the ``BENCH_perf.json`` document layout.
SCHEMA_VERSION = 1

#: Document kind marker (guards against comparing unrelated JSON files).
REPORT_KIND = "repro-perf"


@dataclass(frozen=True)
class PerfWorkload:
    """One pinned benchmark configuration.

    The smoke workload mirrors the ``bench_table9_runtime`` smoke scale
    (:meth:`BenchSettings.make_smoke` in ``benchmarks/_harness.py``) so
    the CI perf job and the Table 9 harness measure the same computation.
    """

    name: str
    dataset: str
    num_pairs: int
    products_per_domain: int
    matcher_epochs: int
    gnn_epochs: int
    k_neighbors: int = 6
    seed: int = 42

    def flexer_config(self) -> FlexERConfig:
        """The FlexER configuration of this workload (harness-compatible)."""
        return FlexERConfig(
            matcher=MatcherConfig(
                hidden_dims=(64, 32),
                n_features=256,
                epochs=self.matcher_epochs,
                seed=self.seed,
            ),
            graph=GraphConfig(k_neighbors=self.k_neighbors),
            gnn=GNNConfig(hidden_dim=48, epochs=self.gnn_epochs, seed=self.seed),
        )


#: The Table 9 smoke workload: tiny sizes, single training epochs.
SMOKE_WORKLOADS = (
    PerfWorkload(
        name="table9_smoke_amazon_mi",
        dataset="amazon_mi",
        num_pairs=120,
        products_per_domain=10,
        matcher_epochs=1,
        gnn_epochs=1,
    ),
)

#: The default matrix: every paper dataset at moderate harness scale.
FULL_WORKLOADS = (
    PerfWorkload(
        name="table9_amazon_mi",
        dataset="amazon_mi",
        num_pairs=240,
        products_per_domain=20,
        matcher_epochs=5,
        gnn_epochs=20,
    ),
    PerfWorkload(
        name="table9_walmart_amazon",
        dataset="walmart_amazon",
        num_pairs=240,
        products_per_domain=20,
        matcher_epochs=5,
        gnn_epochs=20,
    ),
    PerfWorkload(
        name="table9_wdc",
        dataset="wdc",
        num_pairs=240,
        products_per_domain=20,
        matcher_epochs=5,
        gnn_epochs=20,
    ),
)


def _load_benchmark(workload: PerfWorkload):
    # Imported lazily: the dataset generators pull in the full data layer.
    from ..datasets import load_benchmark

    return load_benchmark(
        workload.dataset,
        num_pairs=workload.num_pairs,
        products_per_domain=workload.products_per_domain,
        seed=workload.seed,
    )


def run_workload(workload: PerfWorkload, reference: bool = False) -> dict[str, object]:
    """Run one workload end-to-end on a cold cache, then a warm re-run.

    Returns the JSON-serializable measurement: per-stage records from the
    profiling session, the FlexER stage breakdown, end-to-end wall time,
    candidate-pair throughput, and peak RSS.
    """
    benchmark = _load_benchmark(workload)
    config = workload.flexer_config()
    blocker = QGramBlocker(q=4)

    session = PerfSession()
    cache = ArtifactCache()
    runner = PipelineRunner(cache=cache)
    with use_reference_implementations() if reference else _null_context():
        with session.activate():
            start = time.perf_counter()
            with session.stage("blocking-end-to-end", items=len(benchmark.dataset)):
                candidate_pairs = blocker.block(benchmark.dataset)
            with session.stage("pipeline-cold", items=len(benchmark.candidates)):
                result = runner.run(benchmark.split, benchmark.intents, config=config)
            end_to_end = time.perf_counter() - start
            with session.stage("pipeline-warm", items=len(benchmark.candidates)):
                warm = runner.run(benchmark.split, benchmark.intents, config=config)

    num_pairs = len(benchmark.candidates)
    return {
        "implementation": "reference-loops" if reference else "vectorized",
        "end_to_end_wall_seconds": end_to_end,
        "throughput_pairs_per_second": (num_pairs / end_to_end) if end_to_end > 0 else None,
        "num_candidate_pairs": num_pairs,
        "num_blocking_pairs": len(candidate_pairs),
        "rss_peak_bytes": rss_bytes(),
        "stages": session.as_dicts(),
        "flexer_timings": result.timings.as_dict(),
        "warm_cached_stages": list(warm.cached_stages),
        "warm_wall_seconds": session.total_seconds("pipeline-warm"),
    }


def kernel_benchmarks(workload: PerfWorkload) -> list[dict[str, object]]:
    """Vectorized-vs-loop micro-benchmarks of the four swept kernels."""
    benchmark = _load_benchmark(workload)
    dataset = benchmark.dataset
    pairs = list(benchmark.candidates.pairs)
    results: list[dict[str, object]] = []

    def measure(name: str, items: int, loop_fn, vectorized_fn) -> None:
        start = time.perf_counter()
        loop_value = loop_fn()
        loop_seconds = time.perf_counter() - start
        start = time.perf_counter()
        vectorized_value = vectorized_fn()
        vectorized_seconds = time.perf_counter() - start
        equivalent = _results_match(loop_value, vectorized_value)
        results.append(
            {
                "name": name,
                "items": items,
                "loop_seconds": loop_seconds,
                "vectorized_seconds": vectorized_seconds,
                "speedup": (loop_seconds / vectorized_seconds)
                if vectorized_seconds > 0
                else None,
                "equivalent": equivalent,
            }
        )

    # 1. Pair feature encoding (fresh encoders so both start cache-cold).
    feature_config = PairFeatureConfig(n_features=256)
    measure(
        "pair-feature-encode",
        len(pairs),
        lambda: PairFeatureEncoder(feature_config).encode_loop(dataset, pairs),
        lambda: PairFeatureEncoder(feature_config).encode_batch(dataset, pairs),
    )

    # 2. Blocking join.
    measure(
        "qgram-block-join",
        len(dataset),
        lambda: QGramBlocker(q=4).block_loop(dataset),
        lambda: QGramBlocker(q=4).block(dataset),
    )

    # 3. Multiplex graph edge construction over synthetic representations.
    rng = np.random.default_rng(workload.seed)
    representations = {
        intent: rng.normal(size=(len(pairs), 16)) for intent in benchmark.intents
    }
    builder = IntentGraphBuilder(GraphConfig(k_neighbors=workload.k_neighbors))

    def build_graph_edges(use_vectorized: bool):
        if use_vectorized:
            graph = builder.build(representations)
        else:
            with use_reference_implementations():
                graph = builder.build(representations)
        return graph.edge_arrays("mean")

    measure(
        "graph-edge-construction",
        len(pairs) * len(benchmark.intents),
        lambda: build_graph_edges(False),
        lambda: build_graph_edges(True),
    )

    # 4. Batched Levenshtein over the candidate pair texts.
    lefts = [dataset[pair.left_id].text() for pair in pairs]
    rights = [dataset[pair.right_id].text() for pair in pairs]
    measure(
        "levenshtein-batch",
        len(pairs),
        lambda: np.array(
            [levenshtein_similarity(a, b) for a, b in zip(lefts, rights)]
        ),
        lambda: levenshtein_similarities_batch(lefts, rights),
    )
    return results


#: Worker counts measured by the scaling-curve section.
SCALING_WORKER_COUNTS = (1, 2, 4)

#: Micro-batch sizes measured by the query-latency section.
QUERY_BATCH_SIZES = (1, 4, 16)


def _fit_query_model(workload: PerfWorkload, holdout: int):
    """Fit a servable model on the workload minus a holdout tail.

    Shared by :func:`query_latency` and :func:`serve_load_profile`.
    Returns ``(model, held_out_records, fit_seconds, corpus_size)``.
    """
    from ..data.records import Dataset
    from ..datasets import BENCHMARK_LABELERS
    from ..resolver import Resolver

    benchmark = _load_benchmark(workload)
    labeler = BENCHMARK_LABELERS[workload.dataset]
    products = benchmark.record_products

    def record_labeler(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    records = list(benchmark.dataset.records)
    holdout = min(holdout, max(len(records) // 4, 1))
    corpus = Dataset(
        records=records[:-holdout],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    held_out = records[-holdout:]

    resolver = Resolver(config=workload.flexer_config())
    start = time.perf_counter()
    model = resolver.fit(
        corpus,
        intents=labeler.intent_names,
        labeler=record_labeler,
        split_seed=workload.seed,
    )
    fit_seconds = time.perf_counter() - start
    return model, held_out, fit_seconds, len(corpus)


def query_latency(
    workload: PerfWorkload,
    batch_sizes: tuple[int, ...] = QUERY_BATCH_SIZES,
    repeats: int = 12,
    holdout: int = 24,
    k: int = 5,
    prefit: tuple | None = None,
) -> dict[str, object]:
    """Measure the online serve path of the fit/query lifecycle.

    Fits a :class:`~repro.model.ResolverModel` once on the workload's
    records minus a ``holdout`` tail, then times ``repeats`` online
    ``query()`` micro-batches per batch size through one
    :class:`~repro.model.QuerySession` (records cycle through the
    holdout, so batches differ while staying deterministic).  Reports
    p50/p95/mean wall seconds per micro-batch and per record, plus the
    one-off fit and session warm-up costs — the numbers that tell you
    what serving traffic from this model actually costs, as opposed to
    the full re-resolve that the one-shot API would pay per batch.

    ``prefit`` optionally reuses a :func:`_fit_query_model` result so a
    suite measuring both query latency and serve load fits each
    workload's model once.
    """
    model, held_out, fit_seconds, corpus_size = prefit or _fit_query_model(
        workload, holdout
    )
    holdout = len(held_out)

    session = model.session()
    # Warm-up: the first query builds the per-layer ANN indexes and the
    # frozen per-intent states; serving latency excludes that one-off.
    start = time.perf_counter()
    session.query(held_out[:1], k=k, mode="online")
    warmup_seconds = time.perf_counter() - start

    entries: list[dict[str, object]] = []
    for batch_size in batch_sizes:
        batch_size = min(batch_size, holdout)
        walls: list[float] = []
        pairs_scored = 0
        for repeat in range(repeats):
            offset = (repeat * batch_size) % holdout
            batch = [held_out[(offset + i) % holdout] for i in range(batch_size)]
            start = time.perf_counter()
            result = session.query(batch, k=k, mode="online")
            walls.append(time.perf_counter() - start)
            pairs_scored += len(result)
        wall_array = np.asarray(walls)
        entries.append(
            {
                "batch_size": int(batch_size),
                "repeats": int(repeats),
                "p50_seconds": float(np.percentile(wall_array, 50)),
                "p95_seconds": float(np.percentile(wall_array, 95)),
                "mean_seconds": float(wall_array.mean()),
                "mean_seconds_per_record": float(wall_array.mean() / batch_size),
                "pairs_scored": int(pairs_scored),
            }
        )
    return {
        "mode": "online",
        "k": int(k),
        "holdout_records": int(holdout),
        "corpus_records": corpus_size,
        "fit_seconds": fit_seconds,
        "session_warmup_seconds": warmup_seconds,
        "batches": entries,
    }


#: Closed-loop concurrency levels of :func:`serve_load_profile`.
SERVE_CONCURRENCY_LEVELS = (1, 4, 16)


def serve_load_profile(
    workload: PerfWorkload,
    concurrency_levels: tuple[int, ...] = SERVE_CONCURRENCY_LEVELS,
    requests_per_level: int = 48,
    holdout: int = 24,
    k: int = 5,
    open_loop_fraction: float = 0.7,
    prefit: tuple | None = None,
) -> dict[str, object]:
    """Load-test the :mod:`repro.serve` micro-batching layer.

    Fits a model once, stands up an in-process
    :class:`~repro.serve.AsyncResolverServer` (no TCP — this profiles
    the batching scheduler and session execution, not socket I/O), and
    drives it two ways:

    * **closed loop** — at each concurrency level, keep exactly that
      many single-record requests in flight until
      ``requests_per_level`` complete; record per-request p50/p95/p99
      latency and the completion rate (QPS).  ``max_sustained_qps`` is
      the best completion rate across levels.
    * **open loop** — offer requests at a fixed rate
      (``open_loop_fraction`` × max sustained QPS) regardless of
      completions, the arrival pattern real traffic has; record the
      same latency percentiles plus any rejections/timeouts.

    The returned section lands in ``BENCH_perf.json`` under
    ``serve_load`` and is gated (via ``max_sustained_qps``) by
    :func:`check_regression`.  ``prefit`` optionally reuses a
    :func:`_fit_query_model` result to skip the fit.
    """
    import asyncio

    from ..serve import AsyncResolverServer, ServeConfig

    model, held_out, fit_seconds, corpus_size = prefit or _fit_query_model(
        workload, holdout
    )
    config = ServeConfig(max_queue=max(64, 4 * max(concurrency_levels)))
    percentile_names = ("p50_ms", "p95_ms", "p99_ms")

    def percentiles(latencies: list[float]) -> dict[str, float]:
        array = np.asarray(latencies if latencies else [0.0]) * 1e3
        return {
            name: float(np.percentile(array, q))
            for name, q in zip(percentile_names, (50, 95, 99))
        }

    async def profile() -> dict[str, object]:
        async with AsyncResolverServer(model, config) as server:
            # Warm-up builds the frozen states outside the measurements.
            await server.query(held_out[:1], k=k)

            closed_entries: list[dict[str, object]] = []
            for concurrency in concurrency_levels:
                latencies: list[float] = []
                gate = asyncio.Semaphore(concurrency)

                async def one(index: int) -> None:
                    async with gate:
                        record = held_out[index % len(held_out)]
                        start = time.perf_counter()
                        await server.query([record], k=k)
                        latencies.append(time.perf_counter() - start)

                level_start = time.perf_counter()
                await asyncio.gather(
                    *(one(index) for index in range(requests_per_level))
                )
                elapsed = time.perf_counter() - level_start
                closed_entries.append(
                    {
                        "concurrency": int(concurrency),
                        "requests": int(requests_per_level),
                        "qps": float(requests_per_level / elapsed),
                        **percentiles(latencies),
                    }
                )

            max_sustained_qps = max(entry["qps"] for entry in closed_entries)

            target_qps = max(open_loop_fraction * max_sustained_qps, 1e-6)
            interval = 1.0 / target_qps
            latencies = []
            errors = {"rejected": 0, "timed_out": 0}

            async def offered(index: int) -> None:
                record = held_out[index % len(held_out)]
                start = time.perf_counter()
                try:
                    await server.query([record], k=k)
                except Exception as error:  # noqa: BLE001 - tallied below
                    name = type(error).__name__
                    if name == "ServerOverloadedError":
                        errors["rejected"] += 1
                    elif name == "QueryTimeoutError":
                        errors["timed_out"] += 1
                    else:
                        raise
                else:
                    latencies.append(time.perf_counter() - start)

            open_start = time.perf_counter()
            tasks = []
            for index in range(requests_per_level):
                tasks.append(asyncio.ensure_future(offered(index)))
                await asyncio.sleep(interval)
            await asyncio.gather(*tasks)
            open_elapsed = time.perf_counter() - open_start
            open_entry = {
                "target_qps": float(target_qps),
                "offered_fraction": float(open_loop_fraction),
                "requests": int(requests_per_level),
                "achieved_qps": float(len(latencies) / open_elapsed),
                "rejected": errors["rejected"],
                "timed_out": errors["timed_out"],
                **percentiles(latencies),
            }
            stats = server.stats.snapshot()
        return {
            "mode": "online",
            "k": int(k),
            "holdout_records": len(held_out),
            "corpus_records": corpus_size,
            "fit_seconds": fit_seconds,
            "closed_loop": closed_entries,
            "max_sustained_qps": float(max_sustained_qps),
            "open_loop": open_entry,
            "serve_stats": stats,
            "serve_config": {
                "max_batch_size": config.max_batch_size,
                "max_wait_us": config.max_wait_us,
                "min_wait_us": config.min_wait_us,
                "max_queue": config.max_queue,
            },
        }

    return asyncio.run(profile())


def scaling_curve(
    workload: PerfWorkload,
    worker_counts: tuple[int, ...] = SCALING_WORKER_COUNTS,
    executor_type: str = "processes",
) -> dict[str, object]:
    """Measure the sharded-execution scaling of one workload.

    Runs the workload end-to-end — blocking plus a cold staged pipeline
    — once per worker count: one worker uses the ``serial`` executor
    (the scaling baseline), higher counts shard the embarrassingly
    parallel stages (blocking join, pair encoding, per-intent matcher
    and GNN training) over ``executor_type``.  Every run starts from a
    fresh cache, and all runs produce bit-identical results, so the
    entries measure pure execution cost.

    Each entry reports end-to-end wall time, the per-stage FlexER
    breakdown, the merge overhead (wall time spent combining shard
    outputs, from the ``exec:merge:*`` perf records), and speedups
    relative to the one-worker entry (end-to-end and per stage).
    ``available_cpus`` is recorded alongside: speedups saturate at the
    machine's core count, so a 4-worker entry on a 2-core runner is
    expected to sit near 2x.

    ``worker_counts`` is normalized to sorted unique values and a
    one-worker serial entry is prepended when absent, so the reported
    speedups are always anchored to the serial baseline.
    """
    counts = sorted({int(workers) for workers in worker_counts})
    if not counts:
        raise ValueError("scaling_curve requires at least one worker count")
    if counts[0] > 1:
        counts.insert(0, 1)
    benchmark = _load_benchmark(workload)
    entries: list[dict[str, object]] = []
    for workers in counts:
        spec = (
            executor_spec("serial")
            if workers <= 1
            else executor_spec(executor_type, workers=workers)
        )
        config = replace(workload.flexer_config(), executor=spec)
        blocker = QGramBlocker(q=4)
        executor = make_executor(spec)
        if executor.is_parallel:
            blocker.executor = executor
        # The runner shares the blocker's executor instance, so each
        # entry runs over exactly one worker pool (started outside any
        # per-stage timing but inside the end-to-end window only once).
        runner = PipelineRunner(cache=ArtifactCache(), executor=executor)
        session = PerfSession()
        with session.activate():
            start = time.perf_counter()
            with session.stage("blocking-end-to-end", items=len(benchmark.dataset)):
                blocker.block(benchmark.dataset)
            result = runner.run(benchmark.split, benchmark.intents, config=config)
            end_to_end = time.perf_counter() - start
        merge_overhead = float(
            sum(
                record.wall_seconds
                for record in session.records
                if record.name.startswith(MERGE_STAGE_PREFIX)
            )
        )
        timings = result.timings.as_dict()
        entries.append(
            {
                "workers": int(workers),
                "executor": str(spec["type"]),
                "end_to_end_wall_seconds": end_to_end,
                "blocking_wall_seconds": session.total_seconds("blocking-end-to-end"),
                "stages": {
                    "matcher-fit": timings["matcher_training_seconds"],
                    "representation": timings["representation_seconds"],
                    "graph-build": timings["graph_build_seconds"],
                    "gnn-total": timings["gnn_total_seconds"],
                },
                "merge_overhead_seconds": merge_overhead,
            }
        )

    baseline = entries[0]
    for entry in entries:
        wall = entry["end_to_end_wall_seconds"]
        entry["end_to_end_speedup"] = (
            baseline["end_to_end_wall_seconds"] / wall if wall > 0 else None
        )
        entry["stage_speedups"] = {
            stage: (baseline["stages"][stage] / seconds) if seconds > 0 else None
            for stage, seconds in entry["stages"].items()
        }
    return {
        "executor": executor_type,
        "worker_counts": counts,
        "available_cpus": available_cpus(),
        "entries": entries,
    }


#: Corpus sizes of the full retrieval-scale curve (10k / 100k / 1M).
RETRIEVAL_SCALE_SIZES: tuple[int, ...] = (10_000, 100_000, 1_000_000)

#: Corpus sizes of the CI smoke variant of the curve.
RETRIEVAL_SCALE_SMOKE_SIZES: tuple[int, ...] = (1_000, 4_000)


RETRIEVAL_SCALE_PARAMS: dict[str, dict[str, object]] = {"hnsw": {"ef_descent": 64}}
"""Scale-tuned retriever overrides for the retrieval bench.

The constructor defaults target the paper-scale corpora (10^3-10^4
records).  On the clustered scale workload a query's true neighbours
all sit inside one small entity cluster, so hnsw recall is decided
while *descending* the upper layers — land in the wrong cluster and no
bottom-layer beam width recovers (recall saturates near 0.86 at 10^6
records even at ``ef_search=384``).  Widening the descent beam to
``ef_descent=64`` lifts recall@10 to ~0.94 at ~16 ms p50 — still two
orders of magnitude below the exact scan; the dial trades a constant
factor, not the growth rate.
"""


def retrieval_scale_profile(
    sizes: tuple[int, ...] = RETRIEVAL_SCALE_SIZES,
    retrievers: tuple[str, ...] = ("hnsw", "lsh"),
    num_queries: int = 100,
    k: int = 10,
    n_features: int = 64,
    seed: int = 0,
    retriever_params: dict[str, dict[str, object]] | None = None,
) -> dict[str, object]:
    """Measure sub-linear retriever scaling against the exact oracle.

    For every corpus size a seeded synthetic workload
    (:func:`~repro.datasets.scale.make_scale_workload`) is generated and
    vectorized **once**; the exact ``ann_knn`` oracle and every
    approximate retriever are then built over the *same* vector matrix
    (via the vectors-only ``load_state`` path), so recall@k compares
    pure index behaviour, not text encoding.  Per size and retriever
    the entry reports build time, per-query latency (p50/p95 over
    ``num_queries`` individually timed queries), recall@1/@k and
    candidate overlap vs the oracle, and the process RSS after the
    build; ``lsh`` entries add the mean bucket-probe candidate count.

    The trailing ``growth`` section divides the largest size's p50 by
    the smallest's for each retriever and for the exact baseline — the
    sub-linearity evidence the acceptance bar asks for: the exact
    factor tracks the corpus-size factor, the approximate factors must
    sit far below it.

    ``retriever_params`` maps retriever keys to extra constructor
    params; it defaults to :data:`RETRIEVAL_SCALE_PARAMS` (the
    scale-tuned overrides) and is echoed in the returned section so a
    recorded curve documents the specs that produced it.
    """
    from ..datasets.scale import ScaleWorkloadConfig, make_scale_workload
    from ..evaluation.retrieval import evaluate_candidates
    from ..registry import CANDIDATE_RETRIEVERS
    from ..retrieval import AnnKnnRetriever, LshRetriever

    sizes = tuple(sorted({int(size) for size in sizes}))
    if not sizes or sizes[0] <= 0:
        raise ValueError("retrieval_scale_profile requires positive corpus sizes")
    if retriever_params is None:
        retriever_params = RETRIEVAL_SCALE_PARAMS

    def timed_queries(retriever, queries) -> dict[str, float]:
        latencies: list[float] = []
        for record in queries:
            start = time.perf_counter()
            retriever.retrieve([record], k)
            latencies.append(time.perf_counter() - start)
        ordered = sorted(latencies)
        return {
            "query_p50_ms": ordered[len(ordered) // 2] * 1000.0,
            "query_p95_ms": ordered[min(int(len(ordered) * 0.95), len(ordered) - 1)] * 1000.0,
            "query_mean_ms": sum(latencies) / len(latencies) * 1000.0,
        }

    entries: list[dict[str, object]] = []
    for size in sizes:
        start = time.perf_counter()
        workload = make_scale_workload(
            ScaleWorkloadConfig(num_records=size, num_queries=num_queries, seed=seed)
        )
        generate_seconds = time.perf_counter() - start
        queries = list(workload.queries)

        start = time.perf_counter()
        oracle = AnnKnnRetriever(n_features=n_features).fit(workload.corpus)
        vectorize_seconds = time.perf_counter() - start
        vectors = oracle.state_arrays()["vectors"]

        entry: dict[str, object] = {
            "num_records": int(size),
            "num_clusters": workload.num_clusters,
            "generate_seconds": generate_seconds,
            "vectorize_seconds": vectorize_seconds,
            "exact": timed_queries(oracle, queries),
            "retrievers": {},
        }
        for name in retrievers:
            retriever = CANDIDATE_RETRIEVERS.create(
                {
                    "type": name,
                    "params": {"n_features": n_features, **retriever_params.get(name, {})},
                }
            )
            start = time.perf_counter()
            retriever.load_state({"vectors": vectors}, workload.corpus)
            build_seconds = time.perf_counter() - start
            stats: dict[str, object] = {"build_seconds": build_seconds}
            stats.update(timed_queries(retriever, queries))
            quality = evaluate_candidates(retriever, oracle, queries, ks=(1, k))
            stats.update(quality.summary())
            exact_p50 = entry["exact"]["query_p50_ms"]
            stats["speedup_vs_exact_p50"] = (
                exact_p50 / stats["query_p50_ms"] if stats["query_p50_ms"] > 0 else None
            )
            if isinstance(retriever, LshRetriever):
                counts = retriever.candidate_counts(queries)
                stats["mean_candidates_per_query"] = sum(counts) / len(counts)
            entry["retrievers"][name] = stats
        entry["rss_bytes"] = rss_bytes()
        entries.append(entry)

    growth: dict[str, object] = {}
    if len(entries) >= 2:
        first, last = entries[0], entries[-1]
        size_factor = last["num_records"] / first["num_records"]
        growth["size_factor"] = size_factor
        exact_first = first["exact"]["query_p50_ms"]
        growth["exact_query_p50_factor"] = (
            last["exact"]["query_p50_ms"] / exact_first if exact_first > 0 else None
        )
        for name in retrievers:
            p50_first = first["retrievers"][name]["query_p50_ms"]
            growth[f"{name}_query_p50_factor"] = (
                last["retrievers"][name]["query_p50_ms"] / p50_first
                if p50_first > 0
                else None
            )
    return {
        "sizes": list(sizes),
        "retrievers": list(retrievers),
        "num_queries": int(num_queries),
        "k": int(k),
        "n_features": int(n_features),
        "seed": int(seed),
        "retriever_params": {name: dict(params) for name, params in retriever_params.items()},
        "entries": entries,
        "growth": growth,
    }


def scenario_matrix_profile(
    names: tuple[str, ...] | None = None, seed: int = 0
) -> dict[str, object]:
    """Run named workload scenarios and collect their quality×latency matrices.

    Runs each preset of :data:`repro.scenarios.HEADLINE_SCENARIOS` (or
    the given ``names``) at ``seed`` and returns a section mapping the
    scenario name to its full report document — the deterministic
    quality matrix and summary plus the wall-clock ``timings`` — along
    with a ``headline_macro_f1`` (the mean ``macro_f1`` over matrix
    rows) and the scenario's total wall seconds, the two numbers
    :func:`check_regression` gates.
    """
    from ..scenarios import HEADLINE_SCENARIOS, named_scenario

    selected = tuple(names) if names else HEADLINE_SCENARIOS
    section: dict[str, object] = {"seed": int(seed), "scenarios": {}}
    for name in selected:
        scenario = named_scenario(name)
        start = time.perf_counter()
        report = scenario.run(seed=seed, name=name)
        wall = time.perf_counter() - start
        macros = [
            float(row["macro_f1"]) for row in report.matrix if "macro_f1" in row
        ]
        section["scenarios"][name] = {
            "report": report.to_document(include_timings=True),
            "headline_macro_f1": float(np.mean(macros)) if macros else None,
            "wall_seconds": float(wall),
        }
    return section


def _results_match(loop_value, vectorized_value) -> bool:
    """Equivalence verdict for a kernel pair (arrays, edge tuples, pair lists)."""
    if isinstance(loop_value, np.ndarray):
        return bool(np.array_equal(loop_value, np.asarray(vectorized_value)))
    if isinstance(loop_value, tuple):
        return all(_results_match(a, b) for a, b in zip(loop_value, vectorized_value))
    return bool(loop_value == vectorized_value)


def run_perf_suite(
    smoke: bool = False,
    compare_reference: bool = True,
    workloads: tuple[PerfWorkload, ...] | None = None,
    scaling_workers: tuple[int, ...] | None = None,
    scaling_executor: str = "processes",
    measure_query_latency: bool = False,
    measure_serve_load: bool = False,
    retrieval_scale_sizes: tuple[int, ...] | None = None,
    scenario_names: tuple[str, ...] | None = None,
) -> dict[str, object]:
    """Run the workload matrix and assemble the ``BENCH_perf.json`` document.

    With ``scaling_workers`` (e.g. ``(1, 2, 4)``) each workload entry
    additionally carries a ``scaling`` section — the
    :func:`scaling_curve` of the workload over the given worker counts.
    With ``measure_query_latency`` each entry carries a
    ``query_latency`` section — the online-serving micro-batch p50/p95
    profile of :func:`query_latency`.  With ``measure_serve_load`` each
    entry carries a ``serve_load`` section — the closed/open-loop
    latency and throughput profile of :func:`serve_load_profile`.
    With ``retrieval_scale_sizes`` the report carries a top-level
    ``retrieval_scale`` section — the sub-linear retriever scaling
    curve of :func:`retrieval_scale_profile` over those corpus sizes
    (independent of the workload matrix).  With ``scenario_names`` the
    report carries a top-level ``scenarios`` section — the
    quality×latency matrices of :func:`scenario_matrix_profile` for the
    named workload scenarios, gated on wall time and headline macro F1
    by :func:`check_regression`.
    """
    selected = (
        workloads if workloads is not None else (SMOKE_WORKLOADS if smoke else FULL_WORKLOADS)
    )
    entries: list[dict[str, object]] = []
    for workload in selected:
        entry: dict[str, object] = {
            "workload": asdict(workload),
            "vectorized": run_workload(workload, reference=False),
            "kernels": kernel_benchmarks(workload),
        }
        if compare_reference:
            entry["reference"] = run_workload(workload, reference=True)
            vectorized_wall = entry["vectorized"]["end_to_end_wall_seconds"]
            reference_wall = entry["reference"]["end_to_end_wall_seconds"]
            entry["end_to_end_speedup"] = (
                reference_wall / vectorized_wall if vectorized_wall > 0 else None
            )
        if scaling_workers:
            entry["scaling"] = scaling_curve(
                workload, worker_counts=scaling_workers, executor_type=scaling_executor
            )
        prefit = None
        if measure_query_latency and measure_serve_load:
            # Both sections serve the same fitted model; fit it once.
            prefit = _fit_query_model(workload, holdout=24)
        if measure_query_latency:
            entry["query_latency"] = query_latency(workload, prefit=prefit)
        if measure_serve_load:
            entry["serve_load"] = serve_load_profile(workload, prefit=prefit)
        entries.append(entry)

    retrieval_scale = None
    if retrieval_scale_sizes:
        retrieval_scale = retrieval_scale_profile(sizes=retrieval_scale_sizes)

    scenarios_section = None
    if scenario_names:
        scenarios_section = scenario_matrix_profile(names=tuple(scenario_names))

    total_wall = float(
        sum(entry["vectorized"]["end_to_end_wall_seconds"] for entry in entries)
    )
    speedups = [
        entry["end_to_end_speedup"]
        for entry in entries
        if entry.get("end_to_end_speedup") is not None
    ]
    report: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "created_at": _datetime.datetime.now(_datetime.timezone.utc).isoformat(),
        "smoke": smoke,
        "environment": _environment(),
        "vectorization": vectorization_enabled(),
        "workloads": entries,
        "summary": {
            "num_workloads": len(entries),
            "end_to_end_wall_seconds": total_wall,
            "end_to_end_speedup_min": min(speedups) if speedups else None,
            "end_to_end_speedup_max": max(speedups) if speedups else None,
        },
    }
    if retrieval_scale is not None:
        report["retrieval_scale"] = retrieval_scale
    if scenarios_section is not None:
        report["scenarios"] = scenarios_section
    return report


def _environment() -> dict[str, object]:
    import scipy

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "available_cpus": available_cpus(),
    }


def write_report(report: dict[str, object], path: str | Path) -> Path:
    """Write the report as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict[str, object]:
    """Load a ``BENCH_perf.json`` document, validating kind and schema."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("kind") != REPORT_KIND:
        raise ValueError(f"{path} is not a {REPORT_KIND} report")
    return document


def check_regression(
    current: dict[str, object],
    baseline: dict[str, object],
    max_regression: float = 0.5,
) -> list[str]:
    """Compare a fresh report against a baseline; return regression messages.

    Workloads are matched by name and compared on end-to-end wall time:
    the current wall may exceed the baseline wall by at most
    ``max_regression`` (fractional, e.g. 0.5 allows +50%).  Workloads
    present in only one report are ignored, so a smoke run checks
    cleanly against a baseline that contains the smoke workload.

    When both reports carry a ``serve_load`` section for a workload,
    its ``max_sustained_qps`` is gated symmetrically: the current
    throughput may fall below the baseline by at most the same
    fraction.
    """
    problems: list[str] = []
    if current.get("schema_version") != baseline.get("schema_version"):
        problems.append(
            "schema version changed "
            f"({baseline.get('schema_version')} -> {current.get('schema_version')}); "
            "re-record the baseline"
        )
        return problems

    def walls(report: dict[str, object]) -> dict[str, float]:
        return {
            entry["workload"]["name"]: float(
                entry["vectorized"]["end_to_end_wall_seconds"]
            )
            for entry in report["workloads"]
        }

    current_walls = walls(current)
    baseline_walls = walls(baseline)
    shared = sorted(set(current_walls) & set(baseline_walls))
    if not shared:
        problems.append(
            "no workloads in common with the baseline "
            f"(current: {sorted(current_walls)}, baseline: {sorted(baseline_walls)})"
        )
        return problems
    for name in shared:
        limit = baseline_walls[name] * (1.0 + max_regression)
        if current_walls[name] > limit:
            problems.append(
                f"[{name}] end-to-end wall time regressed: "
                f"{current_walls[name]:.3f}s vs baseline {baseline_walls[name]:.3f}s "
                f"(limit {limit:.3f}s at +{max_regression:.0%})"
            )

    def serve_qps(report: dict[str, object]) -> dict[str, float]:
        return {
            entry["workload"]["name"]: float(entry["serve_load"]["max_sustained_qps"])
            for entry in report["workloads"]
            if entry.get("serve_load")
        }

    current_qps = serve_qps(current)
    baseline_qps = serve_qps(baseline)
    for name in sorted(set(current_qps) & set(baseline_qps)):
        floor = baseline_qps[name] * (1.0 - max_regression)
        if current_qps[name] < floor:
            problems.append(
                f"[{name}] serve throughput regressed: "
                f"{current_qps[name]:.1f} QPS vs baseline {baseline_qps[name]:.1f} QPS "
                f"(floor {floor:.1f} at -{max_regression:.0%})"
            )

    def scenario_entries(report: dict[str, object]) -> dict[str, dict[str, object]]:
        section = report.get("scenarios") or {}
        entries = section.get("scenarios", {}) if isinstance(section, dict) else {}
        return entries if isinstance(entries, dict) else {}

    current_scenarios = scenario_entries(current)
    baseline_scenarios = scenario_entries(baseline)
    for name in sorted(set(current_scenarios) & set(baseline_scenarios)):
        current_entry = current_scenarios[name]
        baseline_entry = baseline_scenarios[name]
        baseline_wall = float(baseline_entry.get("wall_seconds") or 0.0)
        current_wall = float(current_entry.get("wall_seconds") or 0.0)
        limit = baseline_wall * (1.0 + max_regression)
        if baseline_wall > 0 and current_wall > limit:
            problems.append(
                f"[scenario {name}] wall time regressed: "
                f"{current_wall:.3f}s vs baseline {baseline_wall:.3f}s "
                f"(limit {limit:.3f}s at +{max_regression:.0%})"
            )
        baseline_macro = baseline_entry.get("headline_macro_f1")
        current_macro = current_entry.get("headline_macro_f1")
        if baseline_macro is not None and current_macro is not None:
            floor = float(baseline_macro) * (1.0 - max_regression)
            if float(current_macro) < floor:
                problems.append(
                    f"[scenario {name}] headline macro F1 regressed: "
                    f"{float(current_macro):.4f} vs baseline "
                    f"{float(baseline_macro):.4f} "
                    f"(floor {floor:.4f} at -{max_regression:.0%})"
                )
    return problems


def _null_context():
    from contextlib import nullcontext

    return nullcontext()
