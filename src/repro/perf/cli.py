"""``python -m repro.perf`` — run the performance suite and track the trajectory.

Examples
--------
Run the smoke matrix and write the report::

    python -m repro.perf --smoke --output BENCH_perf.json

Check a fresh smoke run against the committed baseline (exit code 2 on a
regression beyond the threshold)::

    python -m repro.perf --smoke --check-against BENCH_perf.json

Skip the loop-reference comparison (halves the runtime)::

    python -m repro.perf --smoke --no-reference
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .bench import (
    RETRIEVAL_SCALE_SIZES,
    RETRIEVAL_SCALE_SMOKE_SIZES,
    SCHEMA_VERSION,
    check_regression,
    load_report,
    run_perf_suite,
    write_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the pinned performance workload matrix and emit BENCH_perf.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the tiny Table 9 smoke workload instead of the full matrix",
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf.json",
        help="path of the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the loop-reference comparison run",
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE",
        default=None,
        help="compare against a committed BENCH_perf.json; exit 2 on regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.5,
        help="allowed fractional end-to-end wall-time regression (default: %(default)s)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="add the sharded-execution scaling-curve section per workload",
    )
    parser.add_argument(
        "--scaling-workers",
        default="1,2,4",
        help="comma-separated worker counts of the scaling curve (default: %(default)s)",
    )
    parser.add_argument(
        "--scaling-executor",
        default="processes",
        choices=("threads", "processes"),
        help="executor the scaling curve shards over (default: %(default)s)",
    )
    parser.add_argument(
        "--query-latency",
        action="store_true",
        help=(
            "add the query-latency section per workload: fit a ResolverModel "
            "once, then profile online query() micro-batches (p50/p95)"
        ),
    )
    parser.add_argument(
        "--retrieval-scale",
        action="store_true",
        help=(
            "add the retrieval-scale section: build the hnsw/lsh sub-linear "
            "retrievers over seeded synthetic corpora and report build time, "
            "query p50/p95, RSS, and recall@k vs the exact ann_knn oracle"
        ),
    )
    parser.add_argument(
        "--retrieval-scale-sizes",
        default=None,
        metavar="SIZES",
        help=(
            "comma-separated corpus sizes of the retrieval-scale curve "
            "(default: 10000,100000,1000000; 1000,4000 with --smoke)"
        ),
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        metavar="NAMES",
        help=(
            "add the workload-scenario section: run the comma-separated "
            "named scenarios (or 'headline' for the gated smoke set) and "
            "record their quality x latency matrices"
        ),
    )
    parser.add_argument(
        "--serve-load",
        action="store_true",
        help=(
            "add the serve-load section per workload: closed/open-loop load "
            "generation against the repro.serve micro-batching server "
            "(p50/p95/p99 latency + max sustained QPS)"
        ),
    )
    return parser


def _print_summary(report: dict[str, object]) -> None:
    summary = report["summary"]
    print(f"repro.perf report (schema v{SCHEMA_VERSION})")
    print(f"  workloads:            {summary['num_workloads']}")
    print(f"  end-to-end wall:      {summary['end_to_end_wall_seconds']:.3f}s")
    if summary.get("end_to_end_speedup_min") is not None:
        print(
            "  vectorized speedup:   "
            f"{summary['end_to_end_speedup_min']:.2f}x - "
            f"{summary['end_to_end_speedup_max']:.2f}x vs loop reference"
        )
    for entry in report["workloads"]:
        workload = entry["workload"]
        vectorized = entry["vectorized"]
        line = (
            f"  [{workload['name']}] {vectorized['end_to_end_wall_seconds']:.3f}s, "
            f"{vectorized['num_candidate_pairs']} pairs"
        )
        if entry.get("end_to_end_speedup") is not None:
            line += f", {entry['end_to_end_speedup']:.2f}x vs loops"
        print(line)
        for kernel in entry["kernels"]:
            speedup = kernel["speedup"]
            speedup_text = f"{speedup:.2f}x" if speedup is not None else "n/a"
            marker = "" if kernel["equivalent"] else "  [NOT EQUIVALENT]"
            print(
                f"      kernel {kernel['name']}: {speedup_text} "
                f"({kernel['loop_seconds']:.4f}s -> {kernel['vectorized_seconds']:.4f}s)"
                f"{marker}"
            )
        latency = entry.get("query_latency")
        if latency:
            print(
                f"      query latency [online, k={latency['k']}] "
                f"(fit once: {latency['fit_seconds']:.3f}s, "
                f"warm-up {latency['session_warmup_seconds']:.4f}s):"
            )
            for batch in latency["batches"]:
                print(
                    f"        batch={batch['batch_size']}: "
                    f"p50 {batch['p50_seconds'] * 1000:.1f}ms, "
                    f"p95 {batch['p95_seconds'] * 1000:.1f}ms "
                    f"({batch['mean_seconds_per_record'] * 1000:.1f}ms/record)"
                )
        serve_load = entry.get("serve_load")
        if serve_load:
            print(
                f"      serve load [online, k={serve_load['k']}] "
                f"(max sustained {serve_load['max_sustained_qps']:.1f} QPS):"
            )
            for level in serve_load["closed_loop"]:
                print(
                    f"        closed c={level['concurrency']}: "
                    f"{level['qps']:.1f} QPS, p50 {level['p50_ms']:.1f}ms, "
                    f"p95 {level['p95_ms']:.1f}ms, p99 {level['p99_ms']:.1f}ms"
                )
            open_loop = serve_load["open_loop"]
            print(
                f"        open @{open_loop['target_qps']:.1f} QPS: "
                f"achieved {open_loop['achieved_qps']:.1f}, "
                f"p50 {open_loop['p50_ms']:.1f}ms, p99 {open_loop['p99_ms']:.1f}ms, "
                f"rejected {open_loop['rejected']}, "
                f"timed out {open_loop['timed_out']}"
            )
        scaling = entry.get("scaling")
        if scaling:
            print(
                f"      scaling [{scaling['executor']}] "
                f"({scaling['available_cpus']} CPUs available):"
            )
            for point in scaling["entries"]:
                speedup = point.get("end_to_end_speedup")
                speedup_text = f"{speedup:.2f}x" if speedup is not None else "n/a"
                print(
                    f"        {point['workers']} worker(s): "
                    f"{point['end_to_end_wall_seconds']:.3f}s ({speedup_text}, "
                    f"merge {point['merge_overhead_seconds']:.4f}s)"
                )


def _print_retrieval_scale(section: dict[str, object]) -> None:
    print(
        f"  retrieval scale [k={section['k']}, n_features={section['n_features']}, "
        f"{section['num_queries']} queries/size]:"
    )
    for entry in section["entries"]:
        exact = entry["exact"]
        print(
            f"    n={entry['num_records']}: exact p50 {exact['query_p50_ms']:.2f}ms, "
            f"vectorize {entry['vectorize_seconds']:.1f}s, "
            f"rss {entry['rss_bytes'] / (1 << 20):.0f}MiB"
        )
        for name, stats in entry["retrievers"].items():
            extras = ""
            if "mean_candidates_per_query" in stats:
                extras = f", {stats['mean_candidates_per_query']:.0f} cands/q"
            print(
                f"      {name}: build {stats['build_seconds']:.1f}s, "
                f"p50 {stats['query_p50_ms']:.2f}ms, p95 {stats['query_p95_ms']:.2f}ms, "
                f"recall@{section['k']} {stats['recall@' + str(section['k'])]:.3f}, "
                f"{stats['speedup_vs_exact_p50']:.1f}x vs exact{extras}"
            )
    growth = section.get("growth") or {}
    if growth:
        factors = ", ".join(
            f"{key.removesuffix('_query_p50_factor')} {value:.1f}x"
            for key, value in growth.items()
            if key.endswith("_query_p50_factor") and value is not None
        )
        print(
            f"    growth over {growth['size_factor']:.0f}x corpus: "
            f"query p50 {factors}"
        )


def _print_scenarios(section: dict[str, object]) -> None:
    print(f"  workload scenarios (seed {section['seed']}):")
    for name, entry in sorted(section["scenarios"].items()):
        macro = entry.get("headline_macro_f1")
        macro_text = f"{macro:.4f}" if macro is not None else "n/a"
        cells = len(entry["report"].get("matrix", []))
        print(
            f"    [{name}] {cells} cells, headline macro F1 {macro_text}, "
            f"{entry['wall_seconds']:.1f}s"
        )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scaling_workers = None
    if args.scaling:
        scaling_workers = tuple(
            int(value) for value in args.scaling_workers.split(",") if value.strip()
        )
    retrieval_scale_sizes = None
    if args.retrieval_scale:
        if args.retrieval_scale_sizes:
            retrieval_scale_sizes = tuple(
                int(value) for value in args.retrieval_scale_sizes.split(",") if value.strip()
            )
        else:
            retrieval_scale_sizes = (
                RETRIEVAL_SCALE_SMOKE_SIZES if args.smoke else RETRIEVAL_SCALE_SIZES
            )
    scenario_names = None
    if args.scenarios:
        if args.scenarios.strip() == "headline":
            from ..scenarios import HEADLINE_SCENARIOS

            scenario_names = HEADLINE_SCENARIOS
        else:
            scenario_names = tuple(
                value.strip() for value in args.scenarios.split(",") if value.strip()
            )
    report = run_perf_suite(
        smoke=args.smoke,
        compare_reference=not args.no_reference,
        scaling_workers=scaling_workers,
        scaling_executor=args.scaling_executor,
        measure_query_latency=args.query_latency,
        measure_serve_load=args.serve_load,
        retrieval_scale_sizes=retrieval_scale_sizes,
        scenario_names=scenario_names,
    )
    path = write_report(report, args.output)
    _print_summary(report)
    if report.get("retrieval_scale"):
        _print_retrieval_scale(report["retrieval_scale"])
    if report.get("scenarios"):
        _print_scenarios(report["scenarios"])
    print(f"report written to {path}")

    kernels_broken = [
        kernel["name"]
        for entry in report["workloads"]
        for kernel in entry["kernels"]
        if not kernel["equivalent"]
    ]
    if kernels_broken:
        print(f"ERROR: kernels diverged from the loop reference: {kernels_broken}")
        return 3

    if args.check_against:
        baseline = load_report(args.check_against)
        problems = check_regression(report, baseline, max_regression=args.max_regression)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 2
        print(
            f"no regression vs {args.check_against} "
            f"(threshold +{args.max_regression:.0%})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
