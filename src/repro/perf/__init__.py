"""Benchmarking, profiling, and performance-trajectory tracking.

The subsystem has three parts:

* :mod:`repro.perf.instrument` — wall-clock + RSS instrumentation
  (:class:`PerfSession`, the :func:`profiled` stage decorator, and the
  :func:`observe` hook the pipeline timings report through);
* :mod:`repro.perf.bench` — the pinned workload matrix executed through
  the staged :class:`~repro.pipeline.PipelineRunner`, kernel-level
  vectorized-vs-loop micro-benchmarks, and the schema-versioned
  ``BENCH_perf.json`` report with regression checking;
* :mod:`repro.perf.cli` — the ``python -m repro.perf`` entry point.

Only the dependency-free instrumentation layer is imported eagerly; the
benchmark runner (which imports the pipeline) loads lazily so low-level
modules can use :func:`profiled` without import cycles.
"""

from __future__ import annotations

from .instrument import PerfSession, StageRecord, active_session, observe, profiled, rss_bytes

__all__ = [
    "PerfSession",
    "StageRecord",
    "active_session",
    "observe",
    "profiled",
    "rss_bytes",
    "run_perf_suite",
    "scaling_curve",
    "scenario_matrix_profile",
    "write_report",
    "check_regression",
    "use_reference_implementations",
    "SCALING_WORKER_COUNTS",
    "SCHEMA_VERSION",
]

_LAZY = {
    "run_perf_suite": "bench",
    "scaling_curve": "bench",
    "scenario_matrix_profile": "bench",
    "write_report": "bench",
    "check_regression": "bench",
    "SCALING_WORKER_COUNTS": "bench",
    "SCHEMA_VERSION": "bench",
    "use_reference_implementations": "compat",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
