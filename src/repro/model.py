"""The persistable fit artifact and the online query path.

The one-shot API (:func:`repro.resolve`) fits and predicts in a single
call, so every new record costs a full re-run.  This module provides the
production lifecycle split:

1. **fit** — :meth:`repro.Resolver.fit` (or
   :meth:`~repro.pipeline.PipelineRunner.fit_model`) trains the staged
   pipeline once over a corpus and returns a :class:`ResolverModel` — a
   self-contained, versioned artifact bundling the fitted per-intent
   matcher ``state_dict``s, the corpus representations, the multiplex
   graph payload, per-intent trained GNN parameters (plus their corpus
   hidden states), a fitted candidate retriever, and the originating
   :class:`~repro.config.FlexERConfig`;
2. **persist** — :meth:`ResolverModel.save` / :meth:`ResolverModel.load`
   round-trip the model through the fingerprinted artifact format of
   :mod:`repro.data.serialization`;
3. **serve** — :meth:`ResolverModel.query` (or a reusable
   :class:`QuerySession` for repeated micro-batches) resolves *new*
   records against the fitted corpus without refitting any component,
   using a :data:`repro.registry.CANDIDATE_RETRIEVERS` component instead
   of full-corpus blocking.

Two query modes trade parity for latency:

``"exact"`` (default)
    Replays the transductive pipeline over the corpus plus the query
    pairs with every *fitted* component restored from the model (the
    matcher-fit stage is a seeded cache hit — never a re-fit).  The
    output is bit-identical to a full ``repro.resolve()`` re-run whose
    candidate set includes the query pairs.
``"online"``
    Frozen inference: only the new pairs are encoded, the new graph
    nodes attach to their nearest corpus neighbours (corpus topology
    unchanged), and the persisted GraphSAGE weights propagate messages
    through the touched subgraph only.  Per-pair independent, so
    micro-batches shard bit-identically across executors
    (:func:`repro.exec.query_records_sharded`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Mapping, Sequence

import numpy as np

from . import __version__ as _library_version
from .config import FlexERConfig
from .core.flexer import compute_representations
from .data.pairs import CandidateSet, LabeledPair, RecordPair
from .data.records import Dataset, Record
from .data.serialization import (
    artifact_base_path,
    clear_segment_paths,
    list_segment_paths,
    read_artifact,
    read_artifact_lazy,
    segment_path,
    serialize_record,
    write_artifact,
)
from .data.splits import DatasetSplit
from .exceptions import IntentError, ModelError, QueryError, SchemaError, UpdateError
from .graph.multiplex import MultiplexGraph
from .graph.sage import FrozenSAGE, GraphAggregation, GraphSAGE
from .ann.knn import ExactNearestNeighbors
from .matching.features import PairFeatureConfig
from .nn import Tensor
from .pipeline.cache import ArtifactCache
from .pipeline.fingerprint import digest, fingerprint_array
from .pipeline.runner import STAGE_MATCHER_FIT, PipelineResult, PipelineRunner, StageEvent
from .registry import CANDIDATE_RETRIEVERS, MODELS, SOLVERS
from .retrieval.candidates import record_content_key

#: Version of the ResolverModel payload layout.  Bumped when the bundled
#: components change incompatibly; :meth:`ResolverModel.load` rejects
#: newer payloads with a clear error.
MODEL_SCHEMA_VERSION = 1

#: Document kind marker of persisted models.
MODEL_KIND = "resolver-model"

#: Separator of namespaced array keys inside the model payload.
_KEY_SEP = "::"


def fingerprint_corpus(dataset: Dataset) -> str:
    """Content fingerprint of a corpus dataset (records, schema, sources)."""
    return digest(
        "corpus",
        dataset.name,
        list(dataset.attributes or ()),
        [
            (record.record_id, record.source, serialize_record(record))
            for record in dataset
        ],
    )


def _json_plain(value: object) -> object:
    """Round-trip a document through JSON so tuples/np-scalars normalize."""
    return json.loads(json.dumps(value, sort_keys=True))


def _pairs_to_array(pairs: Sequence[RecordPair]) -> np.ndarray:
    if not pairs:
        return np.zeros((0, 2), dtype=np.str_)
    return np.array([list(pair.as_tuple()) for pair in pairs], dtype=np.str_)


@dataclass
class QueryResult:
    """Outcome of one :meth:`ResolverModel.query` micro-batch.

    Attributes
    ----------
    pairs:
        The scored (query record, corpus record) candidate pairs, in
        query-record order with each record's candidates ranked by the
        retriever.
    record_ids:
        The query record ids, in input order.
    intents:
        The intents that were predicted.
    probabilities, predictions:
        Per-intent positive-class likelihoods and binary predictions
        aligned with ``pairs``.
    candidates_per_record:
        Retrieval provenance: the ranked corpus ids of each query record.
    mode:
        ``"exact"`` or ``"online"``.
    events:
        Stage events of the exact-mode pipeline replay (``None`` for
        online inference).
    elapsed_seconds:
        Wall time of the query call.
    """

    pairs: list[RecordPair]
    record_ids: tuple[str, ...]
    intents: tuple[str, ...]
    probabilities: dict[str, np.ndarray]
    predictions: dict[str, np.ndarray]
    candidates_per_record: dict[str, list[str]]
    mode: str
    events: list[StageEvent] | None = None
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.pairs)

    def matches(self, intent: str, threshold: float | None = None) -> list[RecordPair]:
        """The pairs predicted positive for ``intent``."""
        if intent not in self.intents:
            raise IntentError(f"intent {intent!r} was not predicted by this query")
        if threshold is None:
            mask = self.predictions[intent] == 1
        else:
            mask = self.probabilities[intent] >= threshold
        return [pair for pair, keep in zip(self.pairs, mask.tolist()) if keep]

    def pairs_for(self, record_id: str) -> list[RecordPair]:
        """The scored pairs of one query record."""
        if record_id not in self.record_ids:
            raise QueryError(f"record {record_id!r} was not part of this query")
        return [pair for pair in self.pairs if record_id in pair.as_tuple()]

    def as_arrays(self) -> tuple[dict[str, np.ndarray], dict[str, object]]:
        """Deterministic ``(arrays, metadata)`` view for result artifacts.

        Only result content is included — never timings or stage events
        — so two runs that predict identically dump byte-identical
        artifacts (the basis of the ``query-smoke`` CI comparison).
        """
        arrays: dict[str, np.ndarray] = {"pairs": _pairs_to_array(self.pairs)}
        for intent in self.intents:
            arrays[f"probabilities::{intent}"] = self.probabilities[intent]
            arrays[f"predictions::{intent}"] = self.predictions[intent]
        metadata = {
            "intents": list(self.intents),
            "mode": self.mode,
            "num_pairs": len(self.pairs),
            "record_ids": list(self.record_ids),
            "candidates_per_record": {
                record_id: list(ids)
                for record_id, ids in self.candidates_per_record.items()
            },
        }
        return arrays, metadata


class ResolverModel:
    """A fitted, persistable FlexER resolution model.

    Instances are produced by :meth:`repro.Resolver.fit` /
    :meth:`~repro.pipeline.PipelineRunner.fit_model` or restored with
    :meth:`load`; the constructor wires already-fitted components
    together and is not meant to be called with unfitted parts.
    """

    #: Registry key in :data:`repro.registry.MODELS`.
    spec_type = "flexer"

    def __init__(
        self,
        *,
        config: FlexERConfig,
        intents: tuple[str, ...],
        corpus: Dataset,
        split: DatasetSplit,
        solver: object,
        representations: Mapping[str, np.ndarray],
        graph_payload: Mapping[str, object],
        gnn_states: Mapping[str, Mapping[str, np.ndarray]],
        gnn_hiddens: Mapping[str, Sequence[np.ndarray]],
        retriever: object,
        retriever_spec: Mapping[str, object],
        augment_with_scores: bool = True,
        feature_config: PairFeatureConfig | None = None,
    ) -> None:
        if not intents:
            raise ModelError("a resolver model needs at least one intent")
        missing = [intent for intent in intents if intent not in gnn_states]
        if missing:
            raise ModelError(f"model is missing trained GNN state for intents {missing}")
        self.config = config
        self.intents = tuple(intents)
        self.corpus = corpus
        self.split = split
        self.solver = solver
        self.representations = {
            intent: np.asarray(matrix) for intent, matrix in representations.items()
        }
        self.graph_payload = dict(graph_payload)
        self.gnn_states = {
            intent: dict(state) for intent, state in gnn_states.items()
        }
        self.gnn_hiddens = {
            intent: [np.asarray(h) for h in hiddens]
            for intent, hiddens in gnn_hiddens.items()
        }
        self.retriever = retriever
        self.retriever_spec = dict(retriever_spec)
        self.augment_with_scores = bool(augment_with_scores)
        self.feature_config = feature_config
        #: The corpus :class:`~repro.resolver.ResolverResult` of the fit
        #: that produced this model (``None`` on a loaded model).
        self.fit_result = None
        self._default_session: QuerySession | None = None
        # The fingerprint — a hash over every payload array — is
        # memoized; incremental updates (the only mutation path) reset
        # it along with every other derived cache.
        self._fingerprint: str | None = None
        # ----- incremental-update state (see repro.update) -----
        #: Deleted record ids still occupying corpus/index rows.
        self.tombstones: set[str] = set()
        #: Pairs appended by updates, after the canonical split order.
        self.update_pairs: list[RecordPair] = []
        #: Fingerprint-chained deltas applied since the last full save
        #: (or load); ``save()`` persists the yet-unwritten suffix.
        self.update_segments: list = []
        self._touched_ids: set[str] = set()
        self._stale_supervision = 0
        self._update_generation = 0
        #: Fingerprint of the base artifact the segment chain anchors to
        #: (set by ``load()``/full ``save()``; captured lazily on the
        #: first ``update()`` of a never-saved model).
        self._base_fingerprint: str | None = None
        #: How many of ``update_segments`` already exist on disk.
        self._persisted_segments = 0
        #: Set by compaction: the next ``save()`` must write a full
        #: artifact (and clear stale sidecar segments) instead of
        #: appending.
        self._rebased = False

    # ------------------------------------------------------------ construction

    @classmethod
    def from_fit(
        cls,
        *,
        config: FlexERConfig,
        intents: tuple[str, ...],
        split: DatasetSplit,
        solver: object,
        representations: Mapping[str, np.ndarray],
        graph: MultiplexGraph,
        gnn_states: Mapping[str, Mapping[str, np.ndarray]],
        retriever_spec: Mapping[str, object],
        augment_with_scores: bool = True,
        feature_config: PairFeatureConfig | None = None,
    ) -> "ResolverModel":
        """Assemble a model from the internals of a staged pipeline run.

        Besides bundling the fitted state, this computes what the frozen
        online path needs ahead of time: the per-convolution corpus
        hidden states of every intent's trained GraphSAGE, and a fitted
        candidate retriever over the corpus.
        """
        corpus = split.train.dataset
        aggregation = GraphAggregation.from_graph(graph, mode=config.gnn.aggregator)
        features = Tensor(graph.features)
        hiddens: dict[str, list[np.ndarray]] = {}
        for intent in intents:
            sage = GraphSAGE(graph.feature_dim, config.gnn)
            sage.load_state_dict(dict(gnn_states[intent]))
            sage.eval()
            # The last level feeds only the prediction head; aggregation
            # during online attachment needs levels 0..L-1 (level 0 is
            # the feature matrix, stored with the graph payload).
            hiddens[intent] = sage.hidden_states(features, aggregation)[:-1]
        retriever = CANDIDATE_RETRIEVERS.create(retriever_spec)
        retriever.fit(corpus)
        return cls(
            config=config,
            intents=tuple(intents),
            corpus=corpus,
            split=split,
            solver=solver,
            representations=representations,
            graph_payload=graph.to_payload(),
            gnn_states=gnn_states,
            gnn_hiddens=hiddens,
            retriever=retriever,
            retriever_spec=CANDIDATE_RETRIEVERS.normalize(retriever_spec),
            augment_with_scores=augment_with_scores,
            feature_config=feature_config,
        )

    # -------------------------------------------------------------- payload

    def _document(self) -> dict[str, object]:
        """The JSON-plain model document (everything but the arrays)."""
        feature_doc = None
        if self.feature_config is not None:
            feature_doc = {
                "n_features": self.feature_config.n_features,
                "use_interaction_features": self.feature_config.use_interaction_features,
                "use_similarity_features": self.feature_config.use_similarity_features,
                "attributes": (
                    list(self.feature_config.attributes)
                    if self.feature_config.attributes is not None
                    else None
                ),
            }
        return _json_plain(
            {
                "schema_version": MODEL_SCHEMA_VERSION,
                "library_version": _library_version,
                "config": self.config.to_dict(),
                "intents": list(self.intents),
                "augment_with_scores": self.augment_with_scores,
                "feature_config": feature_doc,
                "retriever": self.retriever_spec,
                "corpus": {
                    "name": self.corpus.name,
                    "attributes": list(self.corpus.attributes or ()),
                    "records": [
                        {
                            "record_id": record.record_id,
                            "source": record.source,
                            "values": dict(record.values),
                        }
                        for record in self.corpus
                    ],
                },
                "graph": {
                    "num_pairs": int(self.graph_payload["num_pairs"]),
                    "intra_edge_count": int(self.graph_payload["intra_edge_count"]),
                    "inter_edge_count": int(self.graph_payload["inter_edge_count"]),
                },
                "gnn_hidden_levels": {
                    intent: len(hiddens) for intent, hiddens in self.gnn_hiddens.items()
                },
                "update": {
                    "tombstones": sorted(self.tombstones),
                    "pairs": [list(pair.as_tuple()) for pair in self.update_pairs],
                    "touched": sorted(self._touched_ids),
                    "stale_supervision": int(self._stale_supervision),
                    "generation": int(self._update_generation),
                },
            }
        )

    def payload_arrays(self) -> dict[str, np.ndarray]:
        """Every persisted array of the model, under namespaced keys."""
        arrays: dict[str, np.ndarray] = {}
        for name, array in self.solver.state_dict().items():
            arrays[f"solver{_KEY_SEP}{name}"] = array
        for intent in self.intents:
            arrays[f"repr{_KEY_SEP}{intent}"] = self.representations[intent]
            for name, array in self.gnn_states[intent].items():
                arrays[f"gnn{_KEY_SEP}{intent}{_KEY_SEP}{name}"] = array
            for level, hidden in enumerate(self.gnn_hiddens[intent], start=1):
                arrays[f"hidden{_KEY_SEP}{intent}{_KEY_SEP}{level}"] = hidden
        arrays["graph::features"] = np.asarray(self.graph_payload["features"])
        arrays["graph::sources"] = np.asarray(self.graph_payload["sources"])
        arrays["graph::targets"] = np.asarray(self.graph_payload["targets"])
        for part_name, part in (
            ("train", self.split.train),
            ("valid", self.split.valid),
            ("test", self.split.test),
        ):
            arrays[f"split{_KEY_SEP}{part_name}{_KEY_SEP}pairs"] = _pairs_to_array(part.pairs)
            arrays[f"split{_KEY_SEP}{part_name}{_KEY_SEP}labels"] = part.label_matrix(
                self.intents
            )
        for name, array in self.retriever.state_arrays().items():
            arrays[f"retriever{_KEY_SEP}{name}"] = array
        return arrays

    @staticmethod
    def _fingerprint_of(
        document: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> str:
        return digest(
            "resolver-model",
            document,
            sorted((key, fingerprint_array(array)) for key, array in arrays.items()),
        )

    def fingerprint(self) -> str:
        """Content fingerprint of the model (document + every array).

        Memoized: the model is immutable after construction and hashing
        every payload array is the dominant cost of persisting it, so
        ``save()`` followed by ``describe()`` pays it once.
        """
        if self._fingerprint is None:
            self._fingerprint = self._fingerprint_of(
                self._document(), self.payload_arrays()
            )
        return self._fingerprint

    def to_payload(self) -> tuple[dict[str, np.ndarray], dict[str, object]]:
        """The ``(arrays, metadata)`` pair persisted by :meth:`save`."""
        metadata = {
            "kind": MODEL_KIND,
            "model": self._document(),
            "fingerprint": self.fingerprint(),
        }
        return self.payload_arrays(), metadata

    def to_spec(self) -> dict[str, object]:
        """Registry spec of the model: its JSON document as parameters.

        Together with :meth:`payload_arrays` this is the full model;
        ``MODELS.create(model.to_spec(), arrays=model.payload_arrays())``
        rebuilds an equivalent instance.
        """
        return {"type": self.spec_type, "params": {"document": self._document()}}

    @classmethod
    def from_spec(
        cls, params: Mapping[str, object], *, arrays: Mapping[str, np.ndarray]
    ) -> "ResolverModel":
        """Rebuild the model from its spec document plus payload arrays."""
        return cls._restore(dict(params["document"]), dict(arrays))

    # ------------------------------------------------------------- persistence

    def save(self, path: str | Path) -> Path:
        """Persist the model as a fingerprinted ``.npz`` artifact.

        A model that has absorbed incremental updates since it was
        loaded from (or fully saved to) ``path`` does **not** rewrite
        the base artifact: the pending
        :class:`~repro.update.UpdateSegment`\\ s are appended as tiny
        ``<stem>.upd-NNNN.npz`` sidecar files instead, leaving the base
        bytes untouched.  :meth:`load` replays the chain
        deterministically, so the round-trip is bit-identical to the
        in-memory state.  A full artifact is written whenever appending
        is not provably safe — new path, missing/mismatched base, a
        compaction rebase — and stale sidecars are cleared.
        """
        base = artifact_base_path(path)
        if self._can_append_segments(base):
            for segment in self.update_segments[self._persisted_segments :]:
                write_artifact(segment_path(base, segment.index), {}, segment.to_metadata())
            self._persisted_segments = len(self.update_segments)
            return base
        arrays, metadata = self.to_payload()
        result = write_artifact(base, arrays, metadata)
        clear_segment_paths(base)
        # The written artifact *contains* every applied delta, so the
        # chain restarts from this file as the new base.
        self._base_fingerprint = str(metadata["fingerprint"])
        self.update_segments = []
        self._persisted_segments = 0
        self._rebased = False
        return result

    def _can_append_segments(self, base: Path) -> bool:
        """Whether ``save(base)`` may append segments instead of rewriting.

        Requires an un-rebased model whose known base fingerprint
        matches the artifact on disk, with the on-disk segment chain
        exactly matching the already-persisted prefix of
        ``update_segments`` — anything else falls back to a full write.
        """
        if self._rebased or self._base_fingerprint is None:
            return False
        if not base.exists():
            return False
        try:
            _, metadata = read_artifact_lazy(base)
        except Exception:
            return False
        if metadata.get("fingerprint") != self._base_fingerprint:
            return False
        on_disk = list_segment_paths(base)
        if len(on_disk) != self._persisted_segments:
            return False
        for position, segment_file in enumerate(on_disk):
            try:
                _, segment_meta = read_artifact(segment_file)
            except Exception:
                return False
            if segment_meta.get("fingerprint") != self.update_segments[position].fingerprint:
                return False
        return True

    @classmethod
    def load(
        cls, path: str | Path, mmap: bool = False, verify: bool | None = None
    ) -> "ResolverModel":
        """Load a model persisted by :meth:`save`.

        Raises :class:`~repro.exceptions.ModelError` with a clear message
        when the file is not a resolver model, was written by a newer
        model schema, or fails fingerprint verification.

        Parameters
        ----------
        path:
            The ``.npz`` artifact written by :meth:`save`.
        mmap:
            Load the payload arrays as read-only memory maps instead of
            materializing them (``np.savez`` members are stored
            uncompressed, so they map in place).  Pages are faulted in
            on demand and stay evictable, which keeps resident memory
            bounded when many models are co-resident — the mode the
            :class:`repro.serve.ModelRegistry` uses.  Query outputs are
            byte-identical to an eager load (asserted in tests).
        verify:
            Whether to recompute and check the content fingerprint.
            Defaults to ``not mmap``: verification must read every
            payload byte, which would defeat lazy mapping.

        Example
        -------
        >>> model = ResolverModel.load("resolver_model.npz")  # doctest: +SKIP
        >>> served = ResolverModel.load("resolver_model.npz", mmap=True)  # doctest: +SKIP
        """
        if mmap:
            arrays, metadata = read_artifact_lazy(path)
        else:
            arrays, metadata = read_artifact(path)
        if verify is None:
            verify = not mmap
        if metadata.get("kind") != MODEL_KIND:
            raise ModelError(f"{path} is not a resolver model artifact")
        # Schema compatibility is reported before fingerprint integrity:
        # a newer release may legitimately fingerprint its payload
        # differently, and "upgrade the library" is the actionable error.
        document = metadata.get("model")
        if isinstance(document, Mapping):
            version = document.get("schema_version")
            if not isinstance(version, int) or version > MODEL_SCHEMA_VERSION:
                raise ModelError(
                    f"model {path} was written with schema version {version!r}, "
                    f"but this build reads versions up to {MODEL_SCHEMA_VERSION}; "
                    f"upgrade the repro library (or re-fit the model) to use it"
                )
        expected = metadata.get("fingerprint")
        if expected is None:
            # Every save() stamps a fingerprint; its absence is itself
            # evidence the artifact was modified.
            raise ModelError(
                f"model artifact {path} carries no fingerprint; the file was "
                f"modified after saving"
            )
        if verify:
            # Verify the *stored* document and arrays exactly as persisted —
            # recomputing from a restored model would re-stamp the current
            # library version and spuriously reject artifacts saved by an
            # older (schema-compatible) release.
            actual = (
                cls._fingerprint_of(document, arrays)
                if isinstance(document, Mapping)
                else "<no document>"
            )
            if expected != actual:
                raise ModelError(
                    f"model artifact {path} failed fingerprint verification "
                    f"(stored {str(expected)[:12]}…, recomputed {actual[:12]}…); "
                    f"the file is corrupt or was modified after saving"
                )
        model = cls.from_payload(arrays, metadata, source=str(path))
        model._base_fingerprint = str(expected)
        model._replay_segments(artifact_base_path(path))
        return model

    def _replay_segments(self, base: Path) -> None:
        """Replay the on-disk update-segment chain over the base state.

        Each sidecar is fingerprint-verified and must anchor to this
        base and chain to its predecessor; the recorded deltas are then
        re-applied through the deterministic update engine, so the
        restored model is bit-identical to the one that wrote the
        segments.  Legacy artifacts (no sidecars) skip this entirely.

        A torn *trailing* segment — a crash mid-append left a truncated
        file — is quarantined by :func:`repro.update.read_segment_chain`
        and the chain recovers at its last valid link (with a
        :class:`~repro.update.TornSegmentWarning`) instead of failing
        the load; tampered or out-of-order segments still raise.
        """
        from .update.delta import read_segment_chain
        from .update.engine import apply_delta_to_model

        chain, _recovered = read_segment_chain(base)
        previous = self._base_fingerprint
        for position, (segment_file, segment) in enumerate(chain, start=1):
            if segment.index != position:
                raise ModelError(
                    f"update segment {segment_file} carries index {segment.index}, "
                    f"expected {position}"
                )
            if segment.base_fingerprint != self._base_fingerprint:
                raise ModelError(
                    f"update segment {segment_file} anchors to base "
                    f"{segment.base_fingerprint[:12]}…, but {base} has fingerprint "
                    f"{str(self._base_fingerprint)[:12]}…"
                )
            if segment.parent_fingerprint != previous:
                raise ModelError(
                    f"update segment {segment_file} does not chain to its "
                    f"predecessor (expected parent {str(previous)[:12]}…, found "
                    f"{segment.parent_fingerprint[:12]}…)"
                )
            apply_delta_to_model(self, segment.delta)
            self.update_segments.append(segment)
            previous = segment.fingerprint
        self._persisted_segments = len(chain)

    @classmethod
    def from_payload(
        cls,
        arrays: Mapping[str, np.ndarray],
        metadata: Mapping[str, object],
        source: str = "<payload>",
    ) -> "ResolverModel":
        """Rebuild a model from ``(arrays, metadata)`` (no fingerprint check)."""
        document = metadata.get("model")
        if not isinstance(document, Mapping):
            raise ModelError(f"{source} carries no model document")
        version = document.get("schema_version")
        if not isinstance(version, int) or version > MODEL_SCHEMA_VERSION:
            raise ModelError(
                f"model {source} was written with schema version {version!r}, but "
                f"this build reads versions up to {MODEL_SCHEMA_VERSION}; upgrade "
                f"the repro library (or re-fit the model) to use it"
            )
        return cls._restore(dict(document), dict(arrays))

    @classmethod
    def _restore(
        cls, document: dict[str, object], arrays: dict[str, np.ndarray]
    ) -> "ResolverModel":
        config = FlexERConfig.from_dict(document["config"])
        intents = tuple(document["intents"])
        corpus_doc = document["corpus"]
        corpus = Dataset(
            records=[
                Record(
                    record_id=entry["record_id"],
                    values=entry["values"],
                    source=entry["source"],
                )
                for entry in corpus_doc["records"]
            ],
            name=corpus_doc["name"],
            attributes=tuple(corpus_doc["attributes"]) or None,
        )
        feature_doc = document.get("feature_config")
        feature_config = None
        if feature_doc is not None:
            feature_config = PairFeatureConfig(
                n_features=feature_doc["n_features"],
                use_interaction_features=feature_doc["use_interaction_features"],
                use_similarity_features=feature_doc["use_similarity_features"],
                attributes=(
                    tuple(feature_doc["attributes"])
                    if feature_doc["attributes"] is not None
                    else None
                ),
            )

        def part(name: str) -> CandidateSet:
            """Rebuild one labeled split part from its serialized arrays."""
            pair_array = arrays[f"split{_KEY_SEP}{name}{_KEY_SEP}pairs"]
            label_array = arrays[f"split{_KEY_SEP}{name}{_KEY_SEP}labels"]
            candidates = CandidateSet(corpus, intents=intents)
            for row in range(pair_array.shape[0]):
                labels = {
                    intent: int(label_array[row, column])
                    for column, intent in enumerate(intents)
                }
                candidates.add(
                    LabeledPair(
                        pair=RecordPair(str(pair_array[row, 0]), str(pair_array[row, 1])),
                        labels=labels,
                    )
                )
            return candidates

        split = DatasetSplit(train=part("train"), valid=part("valid"), test=part("test"))

        solver = SOLVERS.create(
            config.solver,
            intents=intents,
            matcher_config=config.matcher,
            feature_config=feature_config,
        )
        solver_state = {
            key[len(f"solver{_KEY_SEP}") :]: array
            for key, array in arrays.items()
            if key.startswith(f"solver{_KEY_SEP}")
        }
        if not solver_state:
            raise ModelError("model payload carries no fitted solver state")
        solver.load_state_dict(solver_state)

        representations = {
            intent: arrays[f"repr{_KEY_SEP}{intent}"] for intent in intents
        }
        graph_doc = document["graph"]
        graph_payload = {
            "intents": list(intents),
            "num_pairs": int(graph_doc["num_pairs"]),
            "features": arrays["graph::features"],
            "sources": arrays["graph::sources"],
            "targets": arrays["graph::targets"],
            "intra_edge_count": int(graph_doc["intra_edge_count"]),
            "inter_edge_count": int(graph_doc["inter_edge_count"]),
        }
        gnn_states = {
            intent: {
                key[len(f"gnn{_KEY_SEP}{intent}{_KEY_SEP}") :]: array
                for key, array in arrays.items()
                if key.startswith(f"gnn{_KEY_SEP}{intent}{_KEY_SEP}")
            }
            for intent in intents
        }
        hidden_levels = document.get("gnn_hidden_levels", {})
        gnn_hiddens = {
            intent: [
                arrays[f"hidden{_KEY_SEP}{intent}{_KEY_SEP}{level}"]
                for level in range(1, int(hidden_levels.get(intent, 0)) + 1)
            ]
            for intent in intents
        }
        retriever_spec = CANDIDATE_RETRIEVERS.normalize(document["retriever"])
        retriever = CANDIDATE_RETRIEVERS.create(retriever_spec)
        retriever.load_state(
            {
                key[len(f"retriever{_KEY_SEP}") :]: array
                for key, array in arrays.items()
                if key.startswith(f"retriever{_KEY_SEP}")
            },
            corpus,
        )
        # Incremental-update state (absent on legacy artifacts).
        update_doc = document.get("update") or {}
        tombstones = set(update_doc.get("tombstones", ()))
        if tombstones:
            retriever.set_tombstones(tombstones)
        model = cls(
            config=config,
            intents=intents,
            corpus=corpus,
            split=split,
            solver=solver,
            representations=representations,
            graph_payload=graph_payload,
            gnn_states=gnn_states,
            gnn_hiddens=gnn_hiddens,
            retriever=retriever,
            retriever_spec=retriever_spec,
            augment_with_scores=bool(document["augment_with_scores"]),
            feature_config=feature_config,
        )
        model.tombstones = tombstones
        model.update_pairs = [
            RecordPair(str(left), str(right))
            for left, right in update_doc.get("pairs", ())
        ]
        model._touched_ids = set(update_doc.get("touched", ()))
        model._stale_supervision = int(update_doc.get("stale_supervision", 0))
        model._update_generation = int(update_doc.get("generation", 0))
        return model

    # ------------------------------------------------------------------ query

    def session(self, executor: object = None) -> "QuerySession":
        """A reusable query session (shared caches across micro-batches)."""
        return QuerySession(self, executor=executor)

    def query(
        self,
        records: Sequence[Record],
        intents: Sequence[str] | None = None,
        k: int = 5,
        mode: str = "exact",
        executor: object = None,
    ) -> QueryResult:
        """Resolve new ``records`` against the fitted corpus.

        See :meth:`QuerySession.query`; repeated micro-batches should go
        through one :meth:`session` — this convenience keeps a default
        session alive behind the scenes.
        """
        if self._default_session is None:
            self._default_session = self.session()
        return self._default_session.query(
            records, intents=intents, k=k, mode=mode, executor=executor
        )

    # ----------------------------------------------------------------- update

    def drift_metrics(self):
        """Current :class:`~repro.update.DriftMetrics` snapshot."""
        # Imported lazily: repro.update reaches back into the pipeline
        # (and hence this module) at import time.
        from .update import DriftMetrics

        return DriftMetrics(
            corpus_records=len(self.corpus),
            tombstone_records=len(self.tombstones),
            touched_records=len(self._touched_ids),
            update_generations=self._update_generation,
            stale_supervision=self._stale_supervision,
        )

    def update(
        self,
        upserts: Sequence[Record] = (),
        deletes: Sequence[str] = (),
        *,
        policy=None,
        compact: str = "auto",
    ):
        """Absorb corpus upserts and deletes without refitting.

        Modified records are re-encoded in place, new records are
        indexed and paired against the corpus (their pairs join the
        multiplex graph), deleted records become tombstones filtered
        from retrieval, and the per-intent GraphSAGE hidden states are
        refreshed only for the touched neighbourhoods.  Each applied
        delta is recorded as a fingerprint-chained segment so
        :meth:`save` can append it next to the unchanged base artifact.

        Parameters
        ----------
        upserts:
            Records to insert (new ids) or replace (existing ids).
        deletes:
            Existing record ids to delete.
        policy:
            :class:`~repro.update.CompactionPolicy` deciding when
            accumulated drift triggers a full refit; ``None`` uses the
            default thresholds.
        compact:
            ``"auto"`` (refit when the policy says so), ``"never"``
            (only incremental maintenance), or ``"force"`` (refit after
            applying this delta regardless of drift).

        Returns the :class:`~repro.update.UpdateResult` of the applied
        delta.  Raises :class:`~repro.exceptions.UpdateError` for
        invalid deltas (unknown deletes, duplicate ids, schema
        violations, ...).
        """
        from .update import CompactionPolicy, UpdateSegment, build_delta
        from .update.engine import apply_delta_to_model, compact_model

        if compact not in ("auto", "never", "force"):
            raise UpdateError(f"unknown compact setting: {compact!r}")
        delta = build_delta(self.corpus, self.tombstones, upserts=upserts, deletes=deletes)
        if self._base_fingerprint is None:
            # Never persisted: anchor the chain to the pre-update state
            # (what save() would have stamped before this delta).
            self._base_fingerprint = self.fingerprint()
        parent = (
            self.update_segments[-1].fingerprint
            if self.update_segments
            else self._base_fingerprint
        )
        index = len(self.update_segments) + 1
        result = apply_delta_to_model(self, delta)
        self.update_segments.append(
            UpdateSegment.build(index, delta, self._base_fingerprint, parent)
        )
        if compact != "never":
            effective_policy = policy if policy is not None else CompactionPolicy()
            reasons = (
                ["forced"]
                if compact == "force"
                else effective_policy.reasons(result.drift)
            )
            if reasons:
                compact_model(self)
                result.compacted = True
                result.compaction_reasons = reasons
                result.drift = self.drift_metrics()
        return result

    def compact(self) -> None:
        """Refit over the live corpus, discarding all incremental state.

        See :func:`repro.update.compact_model`; the next :meth:`save`
        writes a full (rebased) artifact.
        """
        from .update.engine import compact_model

        compact_model(self)

    def describe(self) -> dict[str, object]:
        """Summary of the fitted model (sizes, components, update state)."""
        drift = self.drift_metrics()
        return {
            "intents": list(self.intents),
            "corpus_records": len(self.corpus),
            "corpus_live_records": drift.live_records,
            "corpus_pairs": {
                "train": len(self.split.train),
                "valid": len(self.split.valid),
                "test": len(self.split.test),
            },
            "update_pairs": len(self.update_pairs),
            "solver": str(SOLVERS.normalize(self.config.solver)["type"]),
            "retriever": str(self.retriever_spec["type"]),
            "graph_nodes": int(self.graph_payload["num_pairs"]) * len(self.intents),
            "schema_version": MODEL_SCHEMA_VERSION,
            "fingerprint": self.fingerprint(),
            "base_fingerprint": self._base_fingerprint,
            "update_generations": drift.update_generations,
            "tombstone_ratio": drift.tombstone_ratio,
            "stale_supervision": drift.stale_supervision,
        }


MODELS.register(ResolverModel.spec_type, ResolverModel)


class QuerySession:
    """Serve repeated query micro-batches from one fitted model.

    The session owns the state that should persist *across* queries: the
    exact-mode pipeline runner (whose artifact cache is seeded with the
    model's matcher state, so the matcher-fit stage always hits), the
    per-layer nearest-neighbour indexes over the corpus representations,
    and the frozen per-intent GraphSAGE states.

    Parameters
    ----------
    model:
        The fitted model to serve.
    executor:
        Optional :mod:`repro.exec` executor (or registry spec) used to
        shard the *stages* of exact-mode replays.  Online micro-batches
        shard across records instead — see
        :func:`repro.exec.query_records_sharded`.
    """

    #: In-memory artifact bound of the exact-mode replay cache.  Each
    #: distinct micro-batch leaves representation/graph/GNN artifacts
    #: behind (that is what makes *repeated* batches cache hits); once
    #: the cache exceeds this many artifacts it is pruned back to the
    #: seeded matcher state so a long-lived session cannot grow without
    #: bound.
    EXACT_CACHE_MAX_ARTIFACTS = 64

    def __init__(self, model: ResolverModel, executor: object = None) -> None:
        self.model = model
        self._executor = executor
        self._runner: PipelineRunner | None = None
        self._layer_indexes: dict[str, ExactNearestNeighbors] = {}
        self._frozen: dict[str, FrozenSAGE] = {}
        self._model_generation = model._update_generation

    # -------------------------------------------------------------- plumbing

    def _sync_generation(self) -> None:
        """Drop caches derived from model state an update has replaced.

        Incremental updates (and compaction refits) mutate the model in
        place and bump its generation counter; a long-lived session must
        then rebuild its seeded exact-mode runner, per-layer kNN
        indexes, and frozen GNN states from the current state.  In-flight
        queries are unaffected — they hold references to the arrays they
        started with.
        """
        if self._model_generation != self.model._update_generation:
            self._runner = None
            self._layer_indexes.clear()
            self._frozen.clear()
            self._model_generation = self.model._update_generation

    def _exact_runner(self) -> PipelineRunner:
        """The seeded pipeline runner of the exact replay path."""
        if self._runner is None:
            model = self.model
            runner = PipelineRunner(
                cache=ArtifactCache(),
                augment_with_scores=model.augment_with_scores,
                feature_config=model.feature_config,
                executor=self._executor if self._executor is not None else "serial",
            )
            runner.seed_matcher_artifact(
                model.split.train,
                model.intents,
                model.config,
                model.solver.state_dict(),
            )
            self._runner = runner
        return self._runner

    def _layer_index(self, intent: str) -> ExactNearestNeighbors:
        index = self._layer_indexes.get(intent)
        if index is None:
            index = ExactNearestNeighbors(metric=self.model.config.graph.metric)
            index.fit(self.model.representations[intent])
            self._layer_indexes[intent] = index
        return index

    def _frozen_sage(self, intent: str) -> FrozenSAGE:
        frozen = self._frozen.get(intent)
        if frozen is None:
            frozen = FrozenSAGE(self.model.gnn_states[intent], self.model.config.gnn)
            self._frozen[intent] = frozen
        return frozen

    def validate(
        self, records: Sequence[Record], intents: Sequence[str] | None = None
    ) -> list[Record]:
        """Validate a query batch without running it.

        Used by :func:`repro.exec.query_records_sharded` so an invalid
        batch fails identically whether it is served serially or
        sharded (per-shard validation cannot see cross-shard
        duplicates).
        """
        records = self._validate_records(records)
        self._resolve_intents(intents)
        return records

    def _validate_records(self, records: Sequence[Record]) -> list[Record]:
        records = list(records)
        if not records:
            raise QueryError("query requires at least one record")
        seen: set[str] = set()
        for record in records:
            if not isinstance(record, Record):
                raise QueryError(
                    f"query accepts Record objects, got {type(record).__name__}"
                )
            if record.record_id in seen:
                raise QueryError(f"duplicate query record id: {record.record_id!r}")
            if record.record_id in self.model.corpus:
                raise QueryError(
                    f"record {record.record_id!r} is already part of the fitted "
                    f"corpus; query() resolves *new* records"
                )
            seen.add(record.record_id)
        return records

    def _resolve_intents(self, intents: Sequence[str] | None) -> tuple[str, ...]:
        if intents is None:
            return self.model.intents
        unknown = set(intents) - set(self.model.intents)
        if unknown:
            raise IntentError(
                f"requested intents {sorted(unknown)} are not part of the model "
                f"(available: {sorted(self.model.intents)})"
            )
        return tuple(intents)

    def _extended_dataset(self, records: Sequence[Record]) -> Dataset:
        corpus = self.model.corpus
        try:
            return Dataset(
                records=list(corpus.records) + list(records),
                name=corpus.name,
                attributes=corpus.attributes,
            )
        except SchemaError as error:
            raise QueryError(
                f"query records do not conform to the corpus schema: {error}"
            ) from error

    def _retrieve(
        self, records: Sequence[Record], k: int
    ) -> tuple[list[RecordPair], dict[str, list[str]]]:
        # Retrieval ranks by record *content* only, so duplicate records
        # inside one batch (common under high-QPS serving where many
        # clients ask about the same entity) share one ranking instead of
        # being re-ranked per occurrence.
        unique_records: list[Record] = []
        slot_by_content: dict[tuple, int] = {}
        slots: list[int] = []
        for record in records:
            key = record_content_key(record)
            slot = slot_by_content.get(key)
            if slot is None:
                slot = len(unique_records)
                slot_by_content[key] = slot
                unique_records.append(record)
            slots.append(slot)
        candidates = self.model.retriever.retrieve(unique_records, k)
        pairs: list[RecordPair] = []
        per_record: dict[str, list[str]] = {}
        for record, slot in zip(records, slots):
            corpus_ids = candidates[slot]
            per_record[record.record_id] = list(corpus_ids)
            for corpus_id in corpus_ids:
                pairs.append(RecordPair(record.record_id, corpus_id))
        return pairs, per_record

    def _query_candidates(
        self, extended: Dataset, pairs: Sequence[RecordPair]
    ) -> CandidateSet:
        """Query pairs as a zero-labeled candidate set (labels unused)."""
        zeros = {intent: 0 for intent in self.model.intents}
        candidates = CandidateSet(extended, intents=self.model.intents)
        for pair in pairs:
            candidates.add(LabeledPair(pair=pair, labels=zeros))
        return candidates

    def _empty_result(
        self,
        records: Sequence[Record],
        intents: tuple[str, ...],
        per_record: dict[str, list[str]],
        mode: str,
        start: float,
    ) -> QueryResult:
        empty = np.zeros(0, dtype=np.float64)
        return QueryResult(
            pairs=[],
            record_ids=tuple(record.record_id for record in records),
            intents=intents,
            probabilities={intent: empty.copy() for intent in intents},
            predictions={intent: empty.astype(np.int64) for intent in intents},
            candidates_per_record=per_record,
            mode=mode,
            elapsed_seconds=time.perf_counter() - start,
        )

    # ----------------------------------------------------------------- query

    def query(
        self,
        records: Sequence[Record],
        intents: Sequence[str] | None = None,
        k: int = 5,
        mode: str = "exact",
        executor: object = None,
    ) -> QueryResult:
        """Resolve a micro-batch of new records against the corpus.

        Parameters
        ----------
        records:
            New records (ids must not collide with corpus record ids).
        intents:
            Intents to predict; defaults to every model intent.
        k:
            Candidate corpus records retrieved per query record.
        mode:
            ``"exact"`` (transductive replay, bit-identical to a full
            re-run including these pairs) or ``"online"`` (frozen-GNN
            incremental inference over the touched subgraph).
        executor:
            Online-mode only: a parallel executor shards the records
            into micro-shards via
            :func:`repro.exec.query_records_sharded` (bit-identical to
            the serial call).
        """
        if mode not in ("exact", "online"):
            raise QueryError(f"unknown query mode: {mode!r}")
        start = time.perf_counter()
        self._sync_generation()
        records = self._validate_records(records)
        requested = self._resolve_intents(intents)
        if executor is not None and mode == "online":
            from .exec import query_records_sharded

            return query_records_sharded(
                self.model, records, executor, intents=intents, k=k
            )
        pairs, per_record = self._retrieve(records, k)
        if not pairs:
            return self._empty_result(records, requested, per_record, mode, start)
        extended = self._extended_dataset(records)
        query_candidates = self._query_candidates(extended, pairs)
        if mode == "exact":
            probabilities, events = self._query_exact(
                extended, query_candidates, requested
            )
        else:
            probabilities = self._query_online(query_candidates, requested)
            events = None
        return QueryResult(
            pairs=pairs,
            record_ids=tuple(record.record_id for record in records),
            intents=requested,
            probabilities=probabilities,
            predictions={
                intent: (probabilities[intent] >= 0.5).astype(np.int64)
                for intent in requested
            },
            candidates_per_record=per_record,
            mode=mode,
            events=events,
            elapsed_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------ exact mode

    def _query_exact(
        self,
        extended: Dataset,
        query_candidates: CandidateSet,
        requested: tuple[str, ...],
    ) -> tuple[dict[str, np.ndarray], list[StageEvent]]:
        """Replay the transductive pipeline over corpus + query pairs.

        The corpus split is rebuilt over the extended dataset (same
        pairs, same labels — fingerprints are unchanged), the query
        pairs are appended to the test part, and the staged pipeline
        runs with the matcher-fit stage seeded from the model's solver
        state.  The stage hit is asserted: the exact path must *restore*
        matchers, never re-fit them.
        """
        model = self.model
        runner = self._exact_runner()
        if runner.cache.memory_artifacts > self.EXACT_CACHE_MAX_ARTIFACTS:
            runner.cache.prune_memory(keep_stages=(STAGE_MATCHER_FIT,))

        def rebuilt(part: CandidateSet) -> CandidateSet:
            """Re-anchor a split part onto the query-extended corpus."""
            return CandidateSet(extended, pairs=list(part), intents=model.intents)

        test = rebuilt(model.split.test)
        for labeled in query_candidates:
            test.add(labeled)
        split = DatasetSplit(
            train=rebuilt(model.split.train),
            valid=rebuilt(model.split.valid),
            test=test,
        )
        result: PipelineResult = runner.run(
            split, model.intents, config=model.config, target_intents=requested
        )
        matcher_event = result.event(STAGE_MATCHER_FIT)
        if not matcher_event.cached:
            raise ModelError(
                "exact query replay re-fitted the matchers instead of restoring "
                "them from the model (stage fingerprint drift) — this is a bug"
            )
        num_query = len(query_candidates)
        probabilities = {
            intent: result.solution.probabilities[intent][-num_query:]
            for intent in requested
        }
        return probabilities, result.events

    # ----------------------------------------------------------- online mode

    def _query_online(
        self,
        query_candidates: CandidateSet,
        requested: tuple[str, ...],
    ) -> dict[str, np.ndarray]:
        """Frozen inference over the touched subgraph only.

        Each new pair is encoded with the fitted matchers, its per-layer
        nodes attach to their ``k_neighbors`` nearest corpus nodes
        (corpus topology unchanged — corpus hidden states stay exactly
        as persisted), and the stored GraphSAGE weights propagate
        messages through the touched subgraph alone.

        Every pair is computed *independently* — one encode, one kNN
        probe, and one tiny per-pair forward — so a record's prediction
        does not depend on what else is in the micro-batch (BLAS matmul
        results vary in the last bit with batch row counts).  This is
        what makes repeated queries reproducible and sharded batches
        (:func:`repro.exec.query_records_sharded`) bit-identical to
        serial ones.
        """
        model = self.model
        config = model.config
        num_query = len(query_candidates)
        num_corpus = int(model.graph_payload["num_pairs"])
        num_layers = len(model.intents)
        inter = config.graph.include_inter_layer and num_layers > 1
        k_graph = min(config.graph.k_neighbors, num_corpus)
        mean_aggregation = config.gnn.aggregator == "mean"
        corpus_features = np.asarray(model.graph_payload["features"], dtype=np.float64)

        probabilities: dict[str, np.ndarray] = {
            intent: np.zeros(num_query, dtype=np.float64) for intent in requested
        }
        for row in range(num_query):
            pair_set = query_candidates.subset([row])
            features = compute_representations(
                model.solver, pair_set, model.augment_with_scores
            )
            # One (P, d) hidden block per pair: row ℓ is the pair's node
            # in layer ℓ.
            hidden0 = np.stack(
                [
                    np.asarray(features[intent][0], dtype=np.float64)
                    for intent in model.intents
                ]
            )
            if k_graph > 0:
                neighbors = np.stack(
                    [
                        layer * num_corpus
                        + self._layer_index(intent)
                        .search(hidden0[layer : layer + 1], k_graph)
                        .indices[0]
                        for layer, intent in enumerate(model.intents)
                    ]
                )
            else:
                neighbors = np.zeros((num_layers, 0), dtype=np.int64)
            degree = neighbors.shape[1] + (num_layers - 1 if inter else 0)

            for target in requested:
                frozen = self._frozen_sage(target)
                corpus_levels = [corpus_features] + list(model.gnn_hiddens[target])
                if len(corpus_levels) < frozen.num_convolutions:
                    raise ModelError(
                        f"model stores {len(corpus_levels) - 1} hidden levels for "
                        f"intent {target!r} but its GNN has "
                        f"{frozen.num_convolutions} convolutions"
                    )
                hidden = hidden0
                for level in range(frozen.num_convolutions):
                    if degree > 0:
                        aggregated = np.zeros_like(hidden)
                        if neighbors.shape[1] > 0:
                            aggregated += corpus_levels[level][neighbors].sum(axis=1)
                        if inter:
                            aggregated += hidden.sum(axis=0) - hidden
                        # Match the trained aggregation semantics: "sum"
                        # models saw unnormalized neighbourhood sums.
                        if mean_aggregation:
                            aggregated /= degree
                    else:
                        aggregated = np.zeros_like(hidden)
                    hidden = frozen.convolve(level, hidden, aggregated)
                target_layer = model.intents.index(target)
                probabilities[target][row] = frozen.probabilities(
                    hidden[target_layer : target_layer + 1]
                )[0]
        return probabilities


def load_model(path: str | Path, mmap: bool = False) -> ResolverModel:
    """Load a persisted :class:`ResolverModel` (module-level convenience).

    Parameters
    ----------
    path:
        A model artifact written by :meth:`ResolverModel.save`.
    mmap:
        Memory-map the payload arrays instead of materializing them;
        see :meth:`ResolverModel.load`.

    Example
    -------
    >>> model = repro.load_model("resolver_model.npz")  # doctest: +SKIP
    >>> model.query(new_records, k=5)                   # doctest: +SKIP
    """
    return ResolverModel.load(path, mmap=mmap)
