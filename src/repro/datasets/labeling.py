"""Intent labeling functions over synthetic product metadata.

Intents in the paper are *not* known to the model — they are expressed
only through training labels.  The benchmark generators therefore need
ground-truth labeling functions that, given the product metadata behind
two records, decide each intent's binary label (Section 5.1 describes the
per-benchmark labeling rules this module mirrors).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from ..exceptions import LabelingError
from ..text.similarity import jaccard_similarity
from .catalog import Product
from .vocab import WDC_GENERAL_CATEGORY

#: A labeling function maps the two products behind a record pair to 0/1.
IntentLabelFn = Callable[[Product, Product], int]


def equivalence(left: Product, right: Product) -> int:
    """1 when both records represent the same real-world product."""
    return int(left.product_id == right.product_id)


def same_brand(left: Product, right: Product) -> int:
    """1 when the two products share the brand attribute exactly."""
    return int(left.brand.lower() == right.brand.lower())


def same_main_category(left: Product, right: Product) -> int:
    """1 when the first (most general) category of the ordered set matches."""
    return int(left.main_category == right.main_category)


def similar_category_set(left: Product, right: Product, threshold: float = 0.4) -> int:
    """1 when the Jaccard similarity of the ordered category sets is >= threshold.

    This is the Set-Cat intent of AmazonMI (threshold 0.4 as in the
    paper).
    """
    similarity = jaccard_similarity(set(left.category_set), set(right.category_set))
    return int(similarity >= threshold)


def main_and_set_category(left: Product, right: Product) -> int:
    """1 when both the Main-Cat and the Set-Cat intents are satisfied."""
    return int(
        same_main_category(left, right) == 1 and similar_category_set(left, right) == 1
    )


def same_domain_category(left: Product, right: Product) -> int:
    """1 when the two products belong to the same catalog domain.

    Used as the fine-grained category intent of Walmart-Amazon (Main-Cat,
    aligned through the manual hierarchy) and WDC (the per-file category).
    """
    return int(left.domain == right.domain)


def same_general_category(left: Product, right: Product) -> int:
    """1 when the manually aligned general categories match (Walmart-Amazon)."""
    return int(left.general_category == right.general_category)


def same_wdc_general_category(left: Product, right: Product) -> int:
    """1 when the WDC merged categories match (electronics vs dressing)."""
    left_general = WDC_GENERAL_CATEGORY.get(left.domain)
    right_general = WDC_GENERAL_CATEGORY.get(right.domain)
    if left_general is None or right_general is None:
        raise LabelingError(
            f"domains {left.domain!r}/{right.domain!r} are outside the WDC taxonomy"
        )
    return int(left_general == right_general)


@dataclass(frozen=True)
class IntentLabeler:
    """An ordered collection of named intent labeling functions."""

    functions: Mapping[str, IntentLabelFn]

    @property
    def intent_names(self) -> tuple[str, ...]:
        """Intent names in definition order."""
        return tuple(self.functions)

    def label_pair(self, left: Product, right: Product) -> dict[str, int]:
        """Label a product pair for every intent."""
        return {name: fn(left, right) for name, fn in self.functions.items()}

    def validate_subsumption(
        self, pairs: Sequence[tuple[Product, Product]], narrow: str, broad: str
    ) -> bool:
        """Check Definition 4 on a sample: ``narrow`` never fires without ``broad``."""
        for left, right in pairs:
            labels = self.label_pair(left, right)
            if labels[narrow] == 1 and labels[broad] == 0:
                return False
        return True


#: Intent labelers per benchmark, mirroring Section 5.1 of the paper.

AMAZON_MI_LABELER = IntentLabeler(
    functions={
        "equivalence": equivalence,
        "brand": same_brand,
        "set_category": similar_category_set,
        "main_category": same_main_category,
        "main_and_set_category": main_and_set_category,
    }
)

WALMART_AMAZON_LABELER = IntentLabeler(
    functions={
        "equivalence": equivalence,
        "brand": same_brand,
        "main_category": same_domain_category,
        "general_category": same_general_category,
    }
)

WDC_LABELER = IntentLabeler(
    functions={
        "equivalence": equivalence,
        "category": same_domain_category,
        "general_category": same_wdc_general_category,
    }
)
