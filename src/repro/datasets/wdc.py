"""WDC-like benchmark generator.

The Web Data Commons (WDC) product corpus covers four categories —
computers, cameras, watches, and shoes.  The paper labels an additional
*category* intent (positive within a category file) and, after expanding
the corpus with blocked cross-category pairs, a *general category* intent
merging computers+cameras into electronics and watches+shoes into
dressing (Section 5.1).  Table 4 reports positive rates of roughly
11% / 44% / 67%.

The synthetic generator reproduces the four-domain structure, the three
intents, and the positive-rate ordering.
"""

from __future__ import annotations

from ..data.splits import SplitRatio
from .benchmark import BenchmarkSpec, MIERBenchmark, build_benchmark
from .labeling import WDC_LABELER
from .sampler import StratumWeights
from .vocab import WDC_GENERAL_CATEGORY
from .catalog import Product

#: Stratum weights tuned to the Table 4 profile of WDC
#: (Eq 11%, Cat 44%, General-Cat 67%).
WDC_WEIGHTS = StratumWeights(
    duplicate=0.115,
    same_line=0.15,
    same_brand=0.08,
    same_domain=0.095,
    same_general=0.23,
    cross=0.33,
)

WDC_DOMAINS = ("computers", "cameras", "watches", "shoes")


def _wdc_general_category(product: Product) -> str:
    """General category used by the WDC sampler (electronics / dressing)."""
    return WDC_GENERAL_CATEGORY[product.domain]


def make_wdc(
    num_pairs: int = 700,
    products_per_domain: int = 40,
    seed: int = 29,
    split_ratio: SplitRatio | None = None,
) -> MIERBenchmark:
    """Generate the WDC-like product-matching benchmark."""
    spec = BenchmarkSpec(
        name="wdc",
        domains=WDC_DOMAINS,
        labeler=WDC_LABELER,
        weights=WDC_WEIGHTS,
        products_per_domain=products_per_domain,
        num_pairs=num_pairs,
        copies_range=(1, 3),
        clean_clean=False,
        general_category_of=_wdc_general_category,
    )
    return build_benchmark(spec, seed=seed, split_ratio=split_ratio)
