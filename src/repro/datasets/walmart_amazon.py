"""Walmart-Amazon-like benchmark generator.

The Walmart-Amazon benchmark (Magellan) is a clean-clean product matching
task between two sources.  The paper extends its equivalence labels with
three additional intents — same brand, same main category, and same
general category — aligned through a manually built category hierarchy
whose most general levels are electronics, personal equipment, house and
cars (Section 5.1).  Table 4 reports positive rates of roughly
9% / 76% / 80% / 90%.

The synthetic generator reproduces the two-source structure (pairs always
cross sources), the title-only matching attribute, the four intents and
their ordering of positive rates.
"""

from __future__ import annotations

from ..data.splits import SplitRatio
from .benchmark import BenchmarkSpec, MIERBenchmark, build_benchmark
from .labeling import WALMART_AMAZON_LABELER
from .sampler import StratumWeights

#: Stratum weights tuned so positives follow the Table 4 profile of
#: Walmart-Amazon (Eq 9%, Brand 76%, Main-Cat 80%, General-Cat 90%):
#: candidate pairs surviving blocking between two catalog sources are
#: mostly highly similar products.
WALMART_AMAZON_WEIGHTS = StratumWeights(
    duplicate=0.09,
    same_line=0.32,
    same_brand=0.36,
    same_domain=0.04,
    same_general=0.09,
    cross=0.10,
)

#: Domains spanning the electronics / personal equipment / house general
#: categories of the manual hierarchy.
WALMART_AMAZON_DOMAINS = (
    "computers",
    "cameras",
    "phones",
    "audio",
    "shoes",
    "watches",
    "kitchen",
    "tools",
)


def make_walmart_amazon(
    num_pairs: int = 600,
    products_per_domain: int = 30,
    seed: int = 23,
    split_ratio: SplitRatio | None = None,
) -> MIERBenchmark:
    """Generate the Walmart-Amazon-like clean-clean benchmark."""
    spec = BenchmarkSpec(
        name="walmart_amazon",
        domains=WALMART_AMAZON_DOMAINS,
        labeler=WALMART_AMAZON_LABELER,
        weights=WALMART_AMAZON_WEIGHTS,
        products_per_domain=products_per_domain,
        num_pairs=num_pairs,
        copies_range=(2, 3),
        clean_clean=True,
        sources=("walmart", "amazon"),
    )
    return build_benchmark(spec, seed=seed, split_ratio=split_ratio)
