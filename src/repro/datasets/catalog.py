"""Synthetic product-catalog generation.

A :class:`Product` is a real-world entity with a brand, an ordered
category set (the Amazon-style category path), a product line, a model
designator, and a clean title.  A :class:`CatalogGenerator` samples
products per domain, and the benchmark builders turn products into
records (duplicated + perturbed) and labeled candidate pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .perturb import PerturbationConfig, TitlePerturber
from .vocab import (
    AUDIENCES,
    BRANDS,
    CATEGORY_ROOTS,
    GENERAL_CATEGORY,
    PRODUCT_LINES,
    USAGE_BY_DOMAIN,
)


@dataclass(frozen=True)
class Product:
    """A synthetic real-world product (an *entity* in the paper's model)."""

    product_id: str
    domain: str
    brand: str
    line: str
    model: str
    usage: str
    category_set: tuple[str, ...]
    title: str

    @property
    def main_category(self) -> str:
        """The first (most general) category of the ordered category set."""
        return self.category_set[0]

    @property
    def general_category(self) -> str:
        """The manually aligned general category (electronics / house / ...)."""
        return GENERAL_CATEGORY.get(self.domain, "other")


@dataclass
class CatalogConfig:
    """Configuration of the synthetic catalog generator."""

    domains: tuple[str, ...] = ("shoes", "computers", "cameras", "watches", "books")
    products_per_domain: int = 40
    seed: int = 11
    perturbation: PerturbationConfig = field(default_factory=PerturbationConfig)

    def __post_init__(self) -> None:
        unknown = [domain for domain in self.domains if domain not in BRANDS]
        if unknown:
            raise ConfigurationError(f"unknown domains: {unknown}")
        if self.products_per_domain <= 0:
            raise ConfigurationError("products_per_domain must be positive")


class CatalogGenerator:
    """Generate synthetic products and noisy record titles."""

    def __init__(self, config: CatalogConfig | None = None) -> None:
        self.config = config or CatalogConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.perturber = TitlePerturber(self.config.perturbation, self.rng)

    # ------------------------------------------------------------- products

    def _make_title(self, domain: str, brand: str, line: str, model: str, usage: str) -> str:
        if domain == "books":
            return f"{line} ({usage})"
        audience = self.rng.choice(AUDIENCES)
        return f"{brand} {audience} {line} {model} {usage}"

    def _category_set(self, domain: str, usage: str, line: str) -> tuple[str, ...]:
        root = CATEGORY_ROOTS[domain]
        # The final elements are the most fine-grained: usage keyword and
        # product line, which creates graded category-set overlap between
        # products of the same domain (driving the Set-Cat intent).
        return (*root, usage, line)

    def generate_products(self) -> list[Product]:
        """Sample ``products_per_domain`` products for every configured domain."""
        products: list[Product] = []
        counter = 0
        for domain in self.config.domains:
            brands = BRANDS[domain]
            lines = PRODUCT_LINES[domain]
            usages = USAGE_BY_DOMAIN[domain]
            for _ in range(self.config.products_per_domain):
                brand = str(self.rng.choice(brands))
                line = str(self.rng.choice(lines))
                usage = str(self.rng.choice(usages))
                model = str(int(self.rng.integers(1, 30)))
                title = self._make_title(domain, brand, line, model, usage)
                category_set = self._category_set(domain, usage, line)
                counter += 1
                products.append(
                    Product(
                        product_id=f"p{counter:05d}",
                        domain=domain,
                        brand=brand,
                        line=line,
                        model=model,
                        usage=usage,
                        category_set=category_set,
                        title=title,
                    )
                )
        return products

    # --------------------------------------------------------------- records

    def record_titles(self, product: Product, copies: int) -> list[str]:
        """Return ``copies`` record titles for a product.

        The first title is the clean title; the remaining ones are
        perturbed variants modelling duplicate records.
        """
        if copies <= 0:
            raise ConfigurationError("copies must be positive")
        titles = [product.title]
        titles.extend(self.perturber.variants(product.title, copies - 1))
        return titles
