"""Synthetic MIER benchmark generators (AmazonMI, Walmart-Amazon, WDC analogues)."""

from .catalog import Product, CatalogConfig, CatalogGenerator
from .perturb import (
    DEFAULT_FIELD_ALIASES,
    FieldCorruptionConfig,
    PerturbationConfig,
    RecordPerturber,
    TitlePerturber,
    typo_edit,
)
from .labeling import (
    IntentLabeler,
    AMAZON_MI_LABELER,
    WALMART_AMAZON_LABELER,
    WDC_LABELER,
    equivalence,
    same_brand,
    same_main_category,
    similar_category_set,
    main_and_set_category,
    same_domain_category,
    same_general_category,
    same_wdc_general_category,
)
from .sampler import PairSampler, StratumWeights, sample_clusters
from .scale import ScaleWorkload, ScaleWorkloadConfig, make_scale_workload
from .benchmark import (
    MIERBenchmark,
    BenchmarkSpec,
    build_benchmark,
    candidate_pairs_from_blocker,
)
from .amazon_mi import make_amazon_mi, AMAZON_MI_WEIGHTS, AMAZON_MI_DOMAINS
from .walmart_amazon import make_walmart_amazon, WALMART_AMAZON_WEIGHTS, WALMART_AMAZON_DOMAINS
from .wdc import make_wdc, WDC_WEIGHTS, WDC_DOMAINS
from .registry import (
    BENCHMARK_FACTORIES,
    BENCHMARK_LABELERS,
    PAPER_TABLE3,
    PAPER_TABLE4_TEST_POSITIVE_RATES,
    benchmark_names,
    load_benchmark,
)
from .stream import CorpusChunk, stream_chunks

__all__ = [
    "Product",
    "CatalogConfig",
    "CatalogGenerator",
    "PerturbationConfig",
    "TitlePerturber",
    "FieldCorruptionConfig",
    "RecordPerturber",
    "DEFAULT_FIELD_ALIASES",
    "typo_edit",
    "IntentLabeler",
    "AMAZON_MI_LABELER",
    "WALMART_AMAZON_LABELER",
    "WDC_LABELER",
    "equivalence",
    "same_brand",
    "same_main_category",
    "similar_category_set",
    "main_and_set_category",
    "same_domain_category",
    "same_general_category",
    "same_wdc_general_category",
    "PairSampler",
    "StratumWeights",
    "sample_clusters",
    "ScaleWorkload",
    "ScaleWorkloadConfig",
    "make_scale_workload",
    "MIERBenchmark",
    "BenchmarkSpec",
    "build_benchmark",
    "candidate_pairs_from_blocker",
    "make_amazon_mi",
    "AMAZON_MI_WEIGHTS",
    "AMAZON_MI_DOMAINS",
    "make_walmart_amazon",
    "WALMART_AMAZON_WEIGHTS",
    "WALMART_AMAZON_DOMAINS",
    "make_wdc",
    "WDC_WEIGHTS",
    "WDC_DOMAINS",
    "BENCHMARK_FACTORIES",
    "BENCHMARK_LABELERS",
    "PAPER_TABLE3",
    "PAPER_TABLE4_TEST_POSITIVE_RATES",
    "benchmark_names",
    "load_benchmark",
    "CorpusChunk",
    "stream_chunks",
]
