"""Benchmark registry.

Provides name-based access to the three benchmark generators so
examples, tests, and the benchmark harness can iterate over
``("amazon_mi", "walmart_amazon", "wdc")`` exactly like the paper's
evaluation (Section 5.1).
"""

from __future__ import annotations

from collections.abc import Callable

from ..exceptions import ConfigurationError
from .amazon_mi import make_amazon_mi
from .benchmark import MIERBenchmark
from .labeling import (
    AMAZON_MI_LABELER,
    WALMART_AMAZON_LABELER,
    WDC_LABELER,
    IntentLabeler,
)
from .walmart_amazon import make_walmart_amazon
from .wdc import make_wdc

#: Factories keyed by benchmark name, in the order used in the paper.
BENCHMARK_FACTORIES: dict[str, Callable[..., MIERBenchmark]] = {
    "amazon_mi": make_amazon_mi,
    "walmart_amazon": make_walmart_amazon,
    "wdc": make_wdc,
}

#: Ground-truth intent labelers per benchmark (Section 5.1 rules); used
#: by raw-records workloads that re-label blocker-produced pairs.
BENCHMARK_LABELERS: dict[str, IntentLabeler] = {
    "amazon_mi": AMAZON_MI_LABELER,
    "walmart_amazon": WALMART_AMAZON_LABELER,
    "wdc": WDC_LABELER,
}

#: Paper-reported statistics (Table 3), kept for report comparison.
PAPER_TABLE3 = {
    "amazon_mi": {"records": 3835, "pairs": 15404, "intents": 5},
    "walmart_amazon": {"records": 24628, "pairs": 10242, "intents": 4},
    "wdc": {"records": 10935, "pairs": 30673, "intents": 3},
}

#: Paper-reported test-split positive rates (Table 4), by intent order.
PAPER_TABLE4_TEST_POSITIVE_RATES = {
    "amazon_mi": {
        "equivalence": 0.154,
        "brand": 0.214,
        "set_category": 0.490,
        "main_category": 0.672,
        "main_and_set_category": 0.490,
    },
    "walmart_amazon": {
        "equivalence": 0.094,
        "brand": 0.764,
        "main_category": 0.800,
        "general_category": 0.905,
    },
    "wdc": {
        "equivalence": 0.113,
        "category": 0.438,
        "general_category": 0.672,
    },
}


def benchmark_names() -> tuple[str, ...]:
    """Names of the available benchmarks, in paper order."""
    return tuple(BENCHMARK_FACTORIES)


def load_benchmark(name: str, **kwargs) -> MIERBenchmark:
    """Build the benchmark ``name`` with generator keyword overrides.

    Parameters
    ----------
    name:
        One of ``"amazon_mi"``, ``"walmart_amazon"``, ``"wdc"``.
    kwargs:
        Forwarded to the benchmark factory (``num_pairs``,
        ``products_per_domain``, ``seed``, ``split_ratio``).
    """
    try:
        factory = BENCHMARK_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARK_FACTORIES)}"
        ) from None
    return factory(**kwargs)
