"""Benchmark assembly: from products to a labeled MIER benchmark.

A :class:`MIERBenchmark` bundles everything a pipeline or an experiment
needs: the record dataset, the labeled candidate set, the 3:1:1 split,
the intent names, and the ground-truth product metadata behind every
record (kept for analysis only — the model never sees it, mirroring the
paper where intents are known only through labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

import numpy as np

from ..data.pairs import CandidateSet, LabeledPair, RecordPair
from ..data.records import Dataset, Record
from ..data.splits import DatasetSplit, SplitRatio, split_candidates
from ..exceptions import ConfigurationError
from .catalog import CatalogConfig, CatalogGenerator, Product
from .labeling import IntentLabeler
from .sampler import PairSampler, StratumWeights


@dataclass
class MIERBenchmark:
    """A fully assembled multiple-intents entity-resolution benchmark."""

    name: str
    dataset: Dataset
    candidates: CandidateSet
    split: DatasetSplit
    intents: tuple[str, ...]
    record_products: Mapping[str, Product] = field(default_factory=dict)

    def describe(self) -> dict[str, object]:
        """Summary used by the Table 3 / Table 4 benchmark."""
        return {
            "name": self.name,
            "num_records": len(self.dataset),
            "num_pairs": len(self.candidates),
            "num_intents": len(self.intents),
            "intents": list(self.intents),
            "split_sizes": self.split.sizes(),
            "positive_rates": self.split.positive_rates(),
        }


@dataclass(frozen=True)
class BenchmarkSpec:
    """Generator parameters of a synthetic MIER benchmark."""

    name: str
    domains: tuple[str, ...]
    labeler: IntentLabeler
    weights: StratumWeights
    products_per_domain: int = 40
    num_pairs: int = 600
    copies_range: tuple[int, int] = (1, 3)
    clean_clean: bool = False
    sources: tuple[str, str] = ("source_a", "source_b")
    general_category_of: Callable[[Product], str] | None = None

    def __post_init__(self) -> None:
        if self.copies_range[0] < 1 or self.copies_range[1] < self.copies_range[0]:
            raise ConfigurationError("copies_range must be an increasing range from >= 1")
        if self.num_pairs <= 0:
            raise ConfigurationError("num_pairs must be positive")


def _build_records(
    products: list[Product],
    generator: CatalogGenerator,
    spec: BenchmarkSpec,
    rng: np.random.Generator,
) -> tuple[Dataset, dict[str, Product], dict[str, str]]:
    """Create records (duplicated + perturbed titles) from products."""
    records: list[Record] = []
    record_products: dict[str, Product] = {}
    record_sources: dict[str, str] = {}
    counter = 0
    low, high = spec.copies_range
    for product in products:
        copies = int(rng.integers(low, high + 1))
        titles = generator.record_titles(product, copies)
        for copy_index, title in enumerate(titles):
            counter += 1
            record_id = f"r{counter:06d}"
            if spec.clean_clean:
                source = spec.sources[copy_index % len(spec.sources)]
            else:
                source = None
            records.append(
                Record(record_id=record_id, values={"title": title}, source=source)
            )
            record_products[record_id] = product
            if source is not None:
                record_sources[record_id] = source
    dataset = Dataset(records=records, name=spec.name, attributes=("title",))
    return dataset, record_products, record_sources


def build_benchmark(
    spec: BenchmarkSpec,
    seed: int = 17,
    split_ratio: SplitRatio | None = None,
) -> MIERBenchmark:
    """Generate a complete synthetic benchmark from ``spec``.

    The pipeline is: sample products per domain, duplicate them into
    records with perturbed titles, sample stratified candidate pairs,
    label each pair for every intent from the ground-truth metadata, and
    split 3:1:1 stratified on the equivalence intent.
    """
    rng = np.random.default_rng(seed)
    catalog_config = CatalogConfig(
        domains=spec.domains,
        products_per_domain=spec.products_per_domain,
        seed=seed,
    )
    generator = CatalogGenerator(catalog_config)
    products = generator.generate_products()
    dataset, record_products, record_sources = _build_records(products, generator, spec, rng)

    sampler = PairSampler(
        record_products=record_products,
        record_sources=record_sources if spec.clean_clean else None,
        rng=rng,
        general_category_of=spec.general_category_of,
    )
    pairs = sampler.sample(spec.num_pairs, spec.weights)

    intents = spec.labeler.intent_names
    candidates = CandidateSet(dataset, intents=intents)
    for pair in pairs:
        left_product = record_products[pair.left_id]
        right_product = record_products[pair.right_id]
        labels = spec.labeler.label_pair(left_product, right_product)
        candidates.add(LabeledPair(pair=pair, labels=labels))

    first_intent = intents[0] if intents else None
    split = split_candidates(
        candidates,
        ratio=split_ratio or SplitRatio(),
        stratify_intent=first_intent,
        seed=seed + 1,
    )
    return MIERBenchmark(
        name=spec.name,
        dataset=dataset,
        candidates=candidates,
        split=split,
        intents=intents,
        record_products=record_products,
    )


def candidate_pairs_from_blocker(
    dataset: Dataset,
    record_products: Mapping[str, Product],
    labeler: IntentLabeler,
    pairs: list[RecordPair],
) -> CandidateSet:
    """Label blocker-produced pairs with the benchmark's intent functions.

    Utility for examples that run the full block → label → match pipeline
    instead of the stratified sampler.
    """
    candidates = CandidateSet(dataset, intents=labeler.intent_names)
    for pair in pairs:
        left_product = record_products[pair.left_id]
        right_product = record_products[pair.right_id]
        labels = labeler.label_pair(left_product, right_product)
        candidates.add(LabeledPair(pair=pair, labels=labels))
    return candidates
