"""Vocabulary used by the synthetic product-catalog generators.

The paper's benchmarks are product-matching datasets (AmazonMI,
Walmart-Amazon, WDC).  Since the original data cannot be downloaded in
this offline environment, we synthesize product catalogs with the same
structural ingredients: brands, hierarchical category paths, product
lines, model designators, and descriptive attributes.  The vocabulary
below is intentionally organized per domain so each benchmark generator
can mirror its original composition (e.g. WDC's computers / cameras /
watches / shoes split).
"""

from __future__ import annotations

#: Brands per product domain.  Brand identity drives the "same brand"
#: intent of AmazonMI and Walmart-Amazon.
BRANDS: dict[str, tuple[str, ...]] = {
    "shoes": ("Nike", "Adidas", "Puma", "Reebok", "Asics", "New Balance", "Under Armour"),
    "computers": ("Dell", "Lenovo", "HP", "Asus", "Acer", "Apple", "MSI"),
    "cameras": ("Canon", "Nikon", "Sony", "Fujifilm", "Olympus", "Panasonic"),
    "watches": ("Casio", "Seiko", "Citizen", "Timex", "Fossil", "Garmin"),
    "phones": ("Samsung", "Apple", "Google", "Motorola", "OnePlus", "Nokia"),
    "audio": ("Bose", "Sony", "JBL", "Sennheiser", "Beats", "Audio-Technica"),
    "kitchen": ("KitchenAid", "Cuisinart", "Ninja", "Instant Pot", "Breville", "Oster"),
    "tools": ("DeWalt", "Makita", "Bosch", "Ryobi", "Milwaukee", "Craftsman"),
    "books": ("book", "Kindle"),
}

#: Product lines (families) per domain; combined with a model designator
#: they identify a distinct real-world product.
PRODUCT_LINES: dict[str, tuple[str, ...]] = {
    "shoes": (
        "Air Max", "Lunar Force", "Free Run", "Ultraboost", "Gel Kayano",
        "Fresh Foam", "Classic Leather", "Court Vision", "Zoom Pegasus",
        "D Rose Boost", "Superstar", "Charged Assert",
    ),
    "computers": (
        "Inspiron", "ThinkPad", "Pavilion", "ZenBook", "Aspire", "MacBook Pro",
        "Latitude", "IdeaPad", "Spectre", "ROG Strix", "Swift", "Prestige",
    ),
    "cameras": (
        "EOS Rebel", "Coolpix", "Alpha", "X-T Series", "OM-D", "Lumix",
        "PowerShot", "D-Series", "Cyber-shot", "Instax",
    ),
    "watches": (
        "G-Shock", "Prospex", "Eco-Drive", "Weekender", "Grant", "Forerunner",
        "Edifice", "Presage", "Promaster", "Expedition",
    ),
    "phones": (
        "Galaxy S", "iPhone", "Pixel", "Moto G", "Nord", "Lumia",
        "Galaxy Note", "iPhone SE", "Pixel Pro",
    ),
    "audio": (
        "QuietComfort", "WH Series", "Flip", "Momentum", "Studio", "ATH Series",
        "SoundLink", "Charge", "Live Pro",
    ),
    "kitchen": (
        "Artisan Mixer", "Food Processor", "Foodi", "Duo Crisp", "Barista Express",
        "Blender Pro", "Stand Mixer", "Air Fryer",
    ),
    "tools": (
        "Drill Driver", "Impact Wrench", "Circular Saw", "Jigsaw", "Rotary Hammer",
        "Angle Grinder", "Combo Kit",
    ),
    "books": (
        "The Man Who Tried to Get Away", "A Brief History of Data", "Learning to Match",
        "The Art of Integration", "Entity Tales", "Records of the Past",
        "The Missing Key", "Duplicate Lives",
    ),
}

#: Descriptor tokens appended to titles (color, audience, usage).
COLORS: tuple[str, ...] = (
    "Black", "White", "Red", "Blue", "Grey", "Green", "Navy", "Crimson",
    "Dark Loden", "Silver", "Gold", "Rose",
)

AUDIENCES: tuple[str, ...] = ("Men's", "Women's", "Kids'", "Unisex")

USAGE_BY_DOMAIN: dict[str, tuple[str, ...]] = {
    "shoes": ("Basketball Shoe", "Running Shoe", "Trail Shoe", "Walking Shoe", "Training Shoe"),
    "computers": ("Laptop", "Gaming Laptop", "Ultrabook", "2-in-1 Laptop", "Workstation"),
    "cameras": ("DSLR Camera", "Mirrorless Camera", "Compact Camera", "Action Camera"),
    "watches": ("Sport Watch", "Dress Watch", "Digital Watch", "Smartwatch", "Dive Watch"),
    "phones": ("Smartphone", "Unlocked Phone", "5G Phone"),
    "audio": ("Wireless Headphones", "Bluetooth Speaker", "Earbuds", "Noise Cancelling Headphones"),
    "kitchen": ("Stand Mixer", "Blender", "Pressure Cooker", "Espresso Machine", "Air Fryer"),
    "tools": ("Cordless Drill", "Power Tool Kit", "Impact Driver", "Saw"),
    "books": ("Paperback", "Hardcover", "Kindle Edition"),
}

#: Hierarchical category paths per domain: from most general to most
#: fine-grained (the ordered category set of AmazonMI).  The *usage*
#: keyword is appended as the final, most fine-grained element.
CATEGORY_ROOTS: dict[str, tuple[str, ...]] = {
    "shoes": ("Clothing Shoes & Jewelry", "Shoes", "Athletic"),
    "computers": ("Electronics", "Computers & Accessories", "Laptops"),
    "cameras": ("Electronics", "Camera & Photo", "Digital Cameras"),
    "watches": ("Clothing Shoes & Jewelry", "Watches", "Wrist Watches"),
    "phones": ("Electronics", "Cell Phones & Accessories", "Cell Phones"),
    "audio": ("Electronics", "Headphones & Speakers", "Audio"),
    "kitchen": ("Home & Kitchen", "Kitchen & Dining", "Small Appliances"),
    "tools": ("Tools & Home Improvement", "Power Tools", "Hand Tools"),
    "books": ("Books", "Literature & Fiction", "Genre Fiction"),
}

#: The Walmart-Amazon benchmark aligns categories to a manually built
#: hierarchy whose most general levels are electronics, personal
#: equipment, house and cars (Section 5.1).  We map each domain to such a
#: general category.
GENERAL_CATEGORY: dict[str, str] = {
    "shoes": "personal equipment",
    "watches": "personal equipment",
    "books": "personal equipment",
    "computers": "electronics",
    "cameras": "electronics",
    "phones": "electronics",
    "audio": "electronics",
    "kitchen": "house",
    "tools": "house",
}

#: The WDC general-category intent merges computers+cameras into
#: electronics and watches+shoes into dressing (Section 5.1).
WDC_GENERAL_CATEGORY: dict[str, str] = {
    "computers": "electronics",
    "cameras": "electronics",
    "watches": "dressing",
    "shoes": "dressing",
}

#: Frequent abbreviations used by the perturbation engine to mimic
#: discordant representations across sources.
ABBREVIATIONS: dict[str, str] = {
    "men's": "men",
    "women's": "women",
    "wireless": "wl",
    "bluetooth": "bt",
    "laptop": "notebook",
    "camera": "cam",
    "edition": "ed",
    "series": "ser",
    "professional": "pro",
    "generation": "gen",
}
