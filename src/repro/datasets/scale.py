"""Seeded million-record synthetic workload for retrieval scaling runs.

The benchmark generators in this package target *label fidelity* (Table
3/4 analogues) at a few thousand records; the retrieval scale bench
needs *volume*: a corpus of duplicate clusters large enough to measure
sub-linear query growth at 10k/100k/1M records, generated in seconds.
This module builds such a corpus directly from the vocabulary tables —
each cluster is one synthetic entity with a clean base title plus
perturbed variants (:meth:`~repro.datasets.perturb.TitlePerturber.perturb_batch`),
and queries are *fresh* perturbed variants of sampled entities, so no
query record exists in the corpus.

Everything is derived from one seed: the same
:class:`ScaleWorkloadConfig` always yields byte-identical records,
which lets the perf suite and CI compare candidate dumps across
processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.records import Dataset, Record
from ..exceptions import ConfigurationError
from .perturb import PerturbationConfig, TitlePerturber
from .sampler import sample_clusters
from .vocab import AUDIENCES, BRANDS, PRODUCT_LINES, USAGE_BY_DOMAIN


@dataclass(frozen=True)
class ScaleWorkloadConfig:
    """Shape of one synthetic retrieval-scale workload.

    ``cluster_sizes`` cycle over the generated clusters; the defaults
    average 15 records per entity, so the exact top-10 of a query is
    (almost always) inside its own cluster and recall@10 against the
    exact oracle is a meaningful bar.
    """

    num_records: int
    num_queries: int = 200
    cluster_sizes: tuple[int, ...] = (8, 12, 16, 24)
    seed: int = 0
    id_prefix: str = "s"

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise ConfigurationError("num_records must be positive")
        if self.num_queries <= 0:
            raise ConfigurationError("num_queries must be positive")
        if not self.cluster_sizes or any(size <= 0 for size in self.cluster_sizes):
            raise ConfigurationError("cluster_sizes must be positive")


@dataclass(frozen=True)
class ScaleWorkload:
    """A generated scale corpus plus its held-out query records.

    ``cluster_of`` maps each corpus row to its entity cluster and
    ``query_clusters`` each query to the cluster it perturbs — handy
    for diagnosing recall failures, though ground truth for recall@k is
    always the exact oracle's ranking, not cluster membership.
    """

    corpus: Dataset
    queries: tuple[Record, ...]
    cluster_of: np.ndarray
    query_clusters: np.ndarray

    @property
    def num_clusters(self) -> int:
        """Number of distinct entity clusters in the corpus."""
        return int(self.cluster_of.max()) + 1 if len(self.cluster_of) else 0


def _base_titles(num_clusters: int, rng: np.random.Generator) -> list[str]:
    """One clean, mostly-distinct title per entity cluster, vectorized."""
    brands = np.concatenate([np.asarray(BRANDS[d], dtype=object) for d in BRANDS])
    lines = np.concatenate([np.asarray(PRODUCT_LINES[d], dtype=object) for d in PRODUCT_LINES])
    usages = np.concatenate(
        [np.asarray(USAGE_BY_DOMAIN[d], dtype=object) for d in USAGE_BY_DOMAIN]
    )
    audiences = np.asarray(AUDIENCES, dtype=object)
    brand = rng.choice(brands, size=num_clusters)
    audience = rng.choice(audiences, size=num_clusters)
    line = rng.choice(lines, size=num_clusters)
    usage = rng.choice(usages, size=num_clusters)
    model = rng.integers(1, 9999, size=num_clusters)
    # The serial keeps clusters lexically separable even when the vocab
    # combination collides (inevitable beyond ~1e5 clusters).
    return [
        f"{brand[i]} {audience[i]} {line[i]} {model[i]} {usage[i]} #{i}"
        for i in range(num_clusters)
    ]


def make_scale_workload(config: ScaleWorkloadConfig) -> ScaleWorkload:
    """Generate the corpus and query records of ``config``.

    Each cluster's first record keeps the clean base title; the rest are
    batch-perturbed variants.  Queries are fresh variants of clusters
    drawn size-weighted by :func:`~repro.datasets.sampler.sample_clusters`,
    with ids under a ``q-`` prefix so they never collide with corpus ids.
    """
    rng = np.random.default_rng(config.seed)
    cycle = np.asarray(config.cluster_sizes, dtype=np.int64)
    mean_size = float(cycle.mean())
    num_clusters = max(int(np.ceil(config.num_records / mean_size)), 1)
    sizes = np.tile(cycle, num_clusters // len(cycle) + 1)[:num_clusters]
    while sizes.sum() < config.num_records:
        num_clusters += 1
        sizes = np.tile(cycle, num_clusters // len(cycle) + 1)[:num_clusters]
    # Trim the overshoot off the last clusters so the total is exact.
    cumulative = np.cumsum(sizes)
    sizes = np.minimum(sizes, np.maximum(config.num_records - (cumulative - sizes), 0))
    sizes = sizes[sizes > 0]
    num_clusters = len(sizes)

    base = _base_titles(num_clusters, rng)
    cluster_of = np.repeat(np.arange(num_clusters), sizes)
    titles = [base[cluster] for cluster in cluster_of]
    perturber = TitlePerturber(PerturbationConfig(), rng)
    first_of_cluster = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    noisy = perturber.perturb_batch(titles)
    for first in first_of_cluster:
        noisy[first] = titles[first]  # keep one clean representative

    width = len(str(config.num_records))
    records = [
        Record(
            record_id=f"{config.id_prefix}{row:0{width}d}",
            values={"title": noisy[row]},
        )
        for row in range(len(noisy))
    ]
    corpus = Dataset(records=records, name=f"scale-{config.num_records}", attributes=("title",))

    query_clusters = sample_clusters(sizes, config.num_queries, rng)
    query_titles = perturber.perturb_batch([base[cluster] for cluster in query_clusters])
    queries = tuple(
        Record(record_id=f"q-{config.id_prefix}{row:06d}", values={"title": title})
        for row, title in enumerate(query_titles)
    )
    return ScaleWorkload(
        corpus=corpus,
        queries=queries,
        cluster_of=cluster_of,
        query_clusters=np.asarray(query_clusters, dtype=np.int64),
    )


__all__ = ["ScaleWorkload", "ScaleWorkloadConfig", "make_scale_workload"]
