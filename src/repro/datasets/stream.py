"""Replay a corpus as a timestamped stream of record chunks.

Incremental maintenance (:meth:`~repro.model.ResolverModel.update`) is
driven by batches of records arriving over time.  :func:`stream_chunks`
turns any record collection into that shape deterministically: fixed
chunk sizes, evenly spaced synthetic timestamps, original record order
preserved.  The same sampled benchmark therefore replays identically
across processes — the property the ``update`` CLI subcommand and the
streaming tests rely on.

Example
-------
>>> for chunk in stream_chunks(records, chunk_size=50):   # doctest: +SKIP
...     model.update(upserts=chunk.records)
...     model.query(probes, k=4)
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from ..data.records import Dataset, Record
from ..exceptions import DataError

__all__ = ["CorpusChunk", "stream_chunks"]


@dataclass(frozen=True)
class CorpusChunk:
    """One timestamped batch of a replayed corpus stream.

    Attributes
    ----------
    index:
        Zero-based position of the chunk in the stream.
    timestamp:
        Synthetic arrival time, ``start_time + index * interval``.
    records:
        The chunk's records, in original corpus order.
    """

    index: int
    timestamp: float
    records: tuple[Record, ...]

    def __len__(self) -> int:
        return len(self.records)


def stream_chunks(
    records: Sequence[Record] | Dataset,
    chunk_size: int,
    *,
    start_time: float = 0.0,
    interval: float = 1.0,
) -> Iterator[CorpusChunk]:
    """Yield ``records`` as consecutive timestamped :class:`CorpusChunk`\\ s.

    Parameters
    ----------
    records:
        The records to replay — a sequence or a whole
        :class:`~repro.data.records.Dataset`.  Order is preserved; the
        final chunk may be short.
    chunk_size:
        Records per chunk (the last chunk holds the remainder).
    start_time:
        Timestamp of the first chunk.
    interval:
        Spacing between consecutive chunk timestamps (must be ``>= 0``).

    Raises
    ------
    DataError
        If ``chunk_size`` is not positive or ``interval`` is negative.
    """
    if chunk_size < 1:
        raise DataError(f"chunk_size must be >= 1, got {chunk_size}")
    if interval < 0:
        raise DataError(f"interval must be >= 0, got {interval}")
    items = tuple(records.records if isinstance(records, Dataset) else records)
    for index, offset in enumerate(range(0, len(items), chunk_size)):
        yield CorpusChunk(
            index=index,
            timestamp=float(start_time) + index * float(interval),
            records=items[offset : offset + chunk_size],
        )
