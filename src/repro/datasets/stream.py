"""Replay a corpus as a timestamped stream of record chunks.

Incremental maintenance (:meth:`~repro.model.ResolverModel.update`) is
driven by batches of records arriving over time.  :func:`stream_chunks`
turns any record collection into that shape deterministically, in one
of two modes:

* **index mode** (``chunk_size=``): fixed chunk sizes, evenly spaced
  synthetic timestamps, original record order preserved.
* **time mode** (``timestamp_attribute=`` + ``window=``): records carry
  their own arrival time in a numeric attribute; they are stably
  ordered by that timestamp and grouped into fixed-width windows, so a
  corpus with a real (or synthesised) time column replays by wall-clock
  bucket instead of by position.

Either way the same sampled benchmark replays identically across
processes — the property the ``update`` CLI subcommand, the scenario
engine (:mod:`repro.scenarios`), and the streaming tests rely on.

Example
-------
>>> for chunk in stream_chunks(records, chunk_size=50):   # doctest: +SKIP
...     model.update(upserts=chunk.records)
...     model.query(probes, k=4)
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from ..data.records import Dataset, Record
from ..exceptions import DataError

__all__ = ["CorpusChunk", "stream_chunks"]


@dataclass(frozen=True)
class CorpusChunk:
    """One timestamped batch of a replayed corpus stream.

    Attributes
    ----------
    index:
        Zero-based position of the chunk in the stream.
    timestamp:
        Arrival time of the chunk.  In index mode this is the synthetic
        ``start_time + index * interval``; in time mode it is the start
        of the chunk's time window.
    records:
        The chunk's records — original corpus order in index mode,
        stably timestamp-ordered in time mode.
    """

    index: int
    timestamp: float
    records: tuple[Record, ...]

    def __len__(self) -> int:
        return len(self.records)


def _record_timestamp(record: Record, attribute: str) -> float:
    """Read ``record``'s arrival time from ``attribute`` as a float."""
    value = record.get(attribute)
    if value is None or str(value).strip() == "":
        raise DataError(
            f"record {record.record_id!r} has no {attribute!r} timestamp attribute"
        )
    try:
        return float(value)
    except (TypeError, ValueError) as error:
        raise DataError(
            f"record {record.record_id!r} has a non-numeric {attribute!r} "
            f"timestamp: {value!r}"
        ) from error


def _stream_by_time(
    items: tuple[Record, ...],
    timestamp_attribute: str,
    window: float,
) -> Iterator[CorpusChunk]:
    """Yield ``items`` grouped into fixed-width time windows."""
    if window <= 0:
        raise DataError(f"window must be > 0, got {window}")
    stamped = [(_record_timestamp(record, timestamp_attribute), record) for record in items]
    # Stable sort: ties keep original corpus order, so replay is
    # deterministic even with coarse timestamps.
    stamped.sort(key=lambda pair: pair[0])
    if not stamped:
        return
    origin = stamped[0][0]
    index = 0
    bucket: list[Record] = []
    bucket_start = origin
    for timestamp, record in stamped:
        start = origin + window * int((timestamp - origin) // window)
        if bucket and start != bucket_start:
            yield CorpusChunk(index=index, timestamp=bucket_start, records=tuple(bucket))
            index += 1
            bucket = []
        bucket_start = start
        bucket.append(record)
    if bucket:
        yield CorpusChunk(index=index, timestamp=bucket_start, records=tuple(bucket))


def stream_chunks(
    records: Sequence[Record] | Dataset,
    chunk_size: int | None = None,
    *,
    start_time: float = 0.0,
    interval: float = 1.0,
    timestamp_attribute: str | None = None,
    window: float | None = None,
) -> Iterator[CorpusChunk]:
    """Yield ``records`` as consecutive timestamped :class:`CorpusChunk`\\ s.

    Parameters
    ----------
    records:
        The records to replay — a sequence or a whole
        :class:`~repro.data.records.Dataset`.
    chunk_size:
        Index mode: records per chunk (the last chunk holds the
        remainder).  Order is preserved.  Mutually exclusive with
        ``timestamp_attribute``.
    start_time:
        Index mode: timestamp of the first chunk.
    interval:
        Index mode: spacing between consecutive chunk timestamps (must
        be ``>= 0``).
    timestamp_attribute:
        Time mode: name of a numeric record attribute carrying the
        arrival time.  Records are stably sorted by it (ties keep
        corpus order) and grouped into fixed-width windows.
    window:
        Time mode: window width (must be ``> 0``).  Each chunk's
        ``timestamp`` is its window start; empty windows are skipped.

    Raises
    ------
    DataError
        If neither or both modes are selected, ``chunk_size`` is not
        positive, ``interval`` is negative, ``window`` is not positive,
        or a record is missing / has a non-numeric timestamp attribute.
    """
    items = tuple(records.records if isinstance(records, Dataset) else records)
    if timestamp_attribute is not None:
        if chunk_size is not None:
            raise DataError("chunk_size and timestamp_attribute are mutually exclusive")
        if window is None:
            raise DataError("time mode requires window= alongside timestamp_attribute=")
        yield from _stream_by_time(items, timestamp_attribute, float(window))
        return
    if window is not None:
        raise DataError("window= requires timestamp_attribute=")
    if chunk_size is None:
        raise DataError("either chunk_size= or timestamp_attribute= is required")
    if chunk_size < 1:
        raise DataError(f"chunk_size must be >= 1, got {chunk_size}")
    if interval < 0:
        raise DataError(f"interval must be >= 0, got {interval}")
    for index, offset in enumerate(range(0, len(items), chunk_size)):
        yield CorpusChunk(
            index=index,
            timestamp=float(start_time) + index * float(interval),
            records=items[offset : offset + chunk_size],
        )
