"""Stratified candidate-pair sampling.

The published benchmarks come with pre-defined candidate pair sets whose
per-intent positive rates are reported in Table 4.  To reproduce that
label structure without the original data, the generators sample pairs
from *strata* defined over the product metadata — duplicates, same
product line, same brand, same domain, same general category, and
cross-category pairs — with weights chosen per benchmark so the positive
rates land near the paper's profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import defaultdict
from collections.abc import Mapping

import numpy as np

from ..data.pairs import RecordPair
from ..exceptions import ConfigurationError, DataError
from .catalog import Product


@dataclass(frozen=True)
class StratumWeights:
    """Relative frequency of each pair stratum in the candidate set.

    Attributes correspond to progressively weaker relations between the
    two records of a pair; weights need not sum to one (they are
    normalized).
    """

    duplicate: float
    same_line: float
    same_brand: float
    same_domain: float
    same_general: float
    cross: float

    def __post_init__(self) -> None:
        values = self.as_dict().values()
        if any(weight < 0 for weight in values):
            raise ConfigurationError("stratum weights must be non-negative")
        if sum(values) <= 0:
            raise ConfigurationError("at least one stratum weight must be positive")

    def as_dict(self) -> dict[str, float]:
        """Weights keyed by stratum name."""
        return {
            "duplicate": self.duplicate,
            "same_line": self.same_line,
            "same_brand": self.same_brand,
            "same_domain": self.same_domain,
            "same_general": self.same_general,
            "cross": self.cross,
        }


class PairSampler:
    """Sample record pairs from metadata-defined strata.

    Parameters
    ----------
    record_products:
        Mapping from record id to the :class:`Product` it represents.
    record_sources:
        Optional mapping from record id to a source tag; when given,
        sampled pairs always cross sources (clean-clean resolution).
    rng:
        Seeded numpy generator.
    general_category_of:
        Function assigning the "general category" used by the
        ``same_general`` stratum; defaults to
        :attr:`Product.general_category`.
    """

    def __init__(
        self,
        record_products: Mapping[str, Product],
        record_sources: Mapping[str, str] | None = None,
        rng: np.random.Generator | None = None,
        general_category_of=None,
    ) -> None:
        if not record_products:
            raise DataError("record_products must not be empty")
        self.record_products = dict(record_products)
        self.record_sources = dict(record_sources) if record_sources else None
        self.rng = rng or np.random.default_rng(0)
        self._general_of = general_category_of or (lambda product: product.general_category)

        self._by_product: dict[str, list[str]] = defaultdict(list)
        self._by_line: dict[tuple[str, str, str], list[str]] = defaultdict(list)
        self._by_brand: dict[tuple[str, str], list[str]] = defaultdict(list)
        self._by_domain: dict[str, list[str]] = defaultdict(list)
        self._by_general: dict[str, list[str]] = defaultdict(list)
        self._all_records: list[str] = []
        for record_id, product in self.record_products.items():
            self._by_product[product.product_id].append(record_id)
            self._by_line[(product.domain, product.brand, product.line)].append(record_id)
            self._by_brand[(product.domain, product.brand)].append(record_id)
            self._by_domain[product.domain].append(record_id)
            self._by_general[self._general_of(product)].append(record_id)
            self._all_records.append(record_id)

    # ----------------------------------------------------------------- rules

    def _cross_source_ok(self, left_id: str, right_id: str) -> bool:
        if self.record_sources is None:
            return True
        return self.record_sources.get(left_id) != self.record_sources.get(right_id)

    def _valid(self, left_id: str, right_id: str, seen: set[RecordPair]) -> RecordPair | None:
        if left_id == right_id:
            return None
        if not self._cross_source_ok(left_id, right_id):
            return None
        pair = RecordPair(left_id, right_id)
        if pair in seen:
            return None
        return pair

    def _pick(self, pool: list[str]) -> str:
        return pool[int(self.rng.integers(len(pool)))]

    # --------------------------------------------------------------- sampling

    def _sample_duplicate(self, seen: set[RecordPair]) -> RecordPair | None:
        product_ids = [pid for pid, records in self._by_product.items() if len(records) >= 2]
        if not product_ids:
            return None
        for _ in range(20):
            records = self._by_product[self._pick(product_ids)]
            left_id, right_id = self.rng.choice(records, size=2, replace=False)
            pair = self._valid(str(left_id), str(right_id), seen)
            if pair is not None:
                return pair
        return None

    def _sample_related(
        self,
        groups: dict,
        seen: set[RecordPair],
        require_different_product: bool = True,
        exclude_groups: dict | None = None,
    ) -> RecordPair | None:
        keys = [key for key, records in groups.items() if len(records) >= 2]
        if not keys:
            return None
        for _ in range(30):
            records = groups[self._pick(keys)]
            left_id = self._pick(records)
            right_id = self._pick(records)
            left_product = self.record_products[left_id]
            right_product = self.record_products[right_id]
            if require_different_product and left_product.product_id == right_product.product_id:
                continue
            if exclude_groups is not None:
                same_finer = any(
                    key_fn(left_product) == key_fn(right_product)
                    for key_fn in exclude_groups.values()
                )
                if same_finer:
                    continue
            pair = self._valid(left_id, right_id, seen)
            if pair is not None:
                return pair
        return None

    def _sample_cross(self, seen: set[RecordPair]) -> RecordPair | None:
        for _ in range(30):
            left_id = self._pick(self._all_records)
            right_id = self._pick(self._all_records)
            left_product = self.record_products[left_id]
            right_product = self.record_products[right_id]
            if self._general_of(left_product) == self._general_of(right_product):
                continue
            pair = self._valid(left_id, right_id, seen)
            if pair is not None:
                return pair
        return None

    def sample(self, num_pairs: int, weights: StratumWeights) -> list[RecordPair]:
        """Sample ``num_pairs`` distinct candidate pairs from the strata mix."""
        if num_pairs <= 0:
            raise ConfigurationError("num_pairs must be positive")
        weight_map = weights.as_dict()
        names = list(weight_map)
        probabilities = np.array([weight_map[name] for name in names], dtype=np.float64)
        probabilities /= probabilities.sum()

        samplers = {
            "duplicate": lambda seen: self._sample_duplicate(seen),
            "same_line": lambda seen: self._sample_related(self._by_line, seen),
            "same_brand": lambda seen: self._sample_related(
                self._by_brand,
                seen,
                exclude_groups={"line": lambda p: (p.domain, p.brand, p.line)},
            ),
            "same_domain": lambda seen: self._sample_related(
                self._by_domain,
                seen,
                exclude_groups={"brand": lambda p: (p.domain, p.brand)},
            ),
            "same_general": lambda seen: self._sample_related(
                self._by_general,
                seen,
                exclude_groups={"domain": lambda p: p.domain},
            ),
            "cross": lambda seen: self._sample_cross(seen),
        }

        pairs: list[RecordPair] = []
        seen: set[RecordPair] = set()
        attempts = 0
        max_attempts = num_pairs * 50
        while len(pairs) < num_pairs and attempts < max_attempts:
            attempts += 1
            stratum = names[int(self.rng.choice(len(names), p=probabilities))]
            pair = samplers[stratum](seen)
            if pair is None:
                continue
            seen.add(pair)
            pairs.append(pair)
        return pairs


def sample_clusters(
    cluster_sizes: np.ndarray,
    num_queries: int,
    rng: np.random.Generator,
    size_weighted: bool = True,
) -> np.ndarray:
    """Vectorized draw of ``num_queries`` cluster indices for query synthesis.

    The scale workload (:mod:`repro.datasets.scale`) queries a fitted
    corpus with fresh variants of existing entities; this helper picks
    *which* entities.  With ``size_weighted`` (the default) a cluster is
    drawn proportionally to its member count — entities represented by
    more records are the ones real traffic asks about more often —
    otherwise uniformly.  One vectorized draw, so sampling a million
    queries costs the same as sampling a hundred.
    """
    sizes = np.asarray(cluster_sizes, dtype=np.float64)
    if sizes.ndim != 1 or len(sizes) == 0:
        raise ConfigurationError("cluster_sizes must be a non-empty 1-D array")
    if num_queries <= 0:
        raise ConfigurationError("num_queries must be positive")
    if size_weighted:
        total = sizes.sum()
        if total <= 0:
            raise ConfigurationError("cluster sizes must sum to a positive count")
        return rng.choice(len(sizes), size=num_queries, p=sizes / total)
    return rng.integers(0, len(sizes), size=num_queries)
