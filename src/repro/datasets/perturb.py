"""Title and field perturbation engine.

Record duplication in real product data originates from discordant
representations: capitalization differences, typos, abbreviations,
re-ordered or dropped tokens, and added specification such as colour
(Section 1.1 of the paper, e.g. ``Nike Men's Lunar Force 1 Duckboot`` vs
``NIKE Men Lunar Force 1 Duckboot, Black/Dark Loden-BROGHT Crimson``).
:class:`TitlePerturber` applies such perturbations to a clean title to
create alternative records of the same real-world product.

Production corpora additionally degrade at the *field* level: values go
missing, land in the wrong column, or arrive under a different schema
after an upstream rename.  :class:`RecordPerturber` models those three
axes (drop field, swap fields, schema-rename) plus value typos on whole
:class:`~repro.data.records.Record` objects — the corruption engine
behind the robustness-grid scenarios (:mod:`repro.scenarios`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..data.records import Dataset, Record
from .vocab import ABBREVIATIONS, COLORS


def typo_edit(token: str, kind: int, fraction: float) -> str:
    """One character-level typo (delete/transpose/duplicate) on ``token``.

    The randomness is external: ``kind`` selects the edit and
    ``fraction`` (in ``[0, 1)``) selects the character position, so the
    edit itself is a pure function and callers control the random
    stream.  Tokens shorter than three characters pass through.
    """
    if len(token) < 3:
        return token
    position = 1 + int(fraction * (len(token) - 2))
    if kind == 0:  # deletion
        return token[:position] + token[position + 1 :]
    if kind == 1:  # transposition
        chars = list(token)
        chars[position], chars[position - 1] = chars[position - 1], chars[position]
        return "".join(chars)
    # duplication
    return token[:position] + token[position] + token[position:]


@dataclass(frozen=True)
class PerturbationConfig:
    """Probabilities of each perturbation applied to a duplicated title."""

    p_uppercase_token: float = 0.15
    p_lowercase_all: float = 0.15
    p_typo: float = 0.25
    p_drop_token: float = 0.15
    p_swap_tokens: float = 0.10
    p_abbreviate: float = 0.30
    p_add_color_spec: float = 0.35
    p_add_model_suffix: float = 0.25


class TitlePerturber:
    """Apply realistic noise to product titles.

    Parameters
    ----------
    config:
        Perturbation probabilities.
    rng:
        Numpy random generator; pass a seeded generator for reproducible
        datasets.
    """

    def __init__(
        self,
        config: PerturbationConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or PerturbationConfig()
        self.rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------ primitives

    def _typo(self, token: str) -> str:
        """Introduce a single character-level typo into ``token``."""
        if len(token) < 3:
            return token
        kind = self.rng.integers(3)
        position = int(self.rng.integers(1, len(token) - 1))
        if kind == 0:  # deletion
            return token[:position] + token[position + 1 :]
        if kind == 1:  # transposition
            chars = list(token)
            chars[position], chars[position - 1] = chars[position - 1], chars[position]
            return "".join(chars)
        # duplication
        return token[:position] + token[position] + token[position:]

    def _maybe(self, probability: float) -> bool:
        return bool(self.rng.random() < probability)

    # --------------------------------------------------------------- publics

    def perturb(self, title: str) -> str:
        """Return a noisy variant of ``title`` representing the same product."""
        tokens = title.split()
        config = self.config

        if self._maybe(config.p_lowercase_all):
            tokens = [token.lower() for token in tokens]
        if tokens and self._maybe(config.p_uppercase_token):
            index = int(self.rng.integers(len(tokens)))
            tokens[index] = tokens[index].upper()
        if tokens and self._maybe(config.p_typo):
            index = int(self.rng.integers(len(tokens)))
            tokens[index] = self._typo(tokens[index])
        if len(tokens) > 4 and self._maybe(config.p_drop_token):
            index = int(self.rng.integers(len(tokens)))
            tokens = tokens[:index] + tokens[index + 1 :]
        if len(tokens) > 2 and self._maybe(config.p_swap_tokens):
            index = int(self.rng.integers(len(tokens) - 1))
            tokens[index], tokens[index + 1] = tokens[index + 1], tokens[index]
        if self._maybe(config.p_abbreviate):
            tokens = [ABBREVIATIONS.get(token.lower(), token) for token in tokens]

        title_out = " ".join(tokens)
        if self._maybe(config.p_add_color_spec):
            color_a = self.rng.choice(COLORS)
            color_b = self.rng.choice(COLORS)
            title_out = f"{title_out}, {color_a}/{color_b}"
        if self._maybe(config.p_add_model_suffix):
            suffix = int(self.rng.integers(10, 9999))
            title_out = f"{title_out} {suffix}"
        return title_out

    def variants(self, title: str, count: int) -> list[str]:
        """Return ``count`` independent perturbed variants of ``title``."""
        return [self.perturb(title) for _ in range(count)]

    def _typo_at(self, token: str, kind: int, fraction: float) -> str:
        """The :meth:`_typo` edit with externally drawn randomness."""
        return typo_edit(token, kind, fraction)

    def perturb_batch(self, titles: list[str]) -> list[str]:
        """Noisy variants of many titles with all randomness pre-drawn.

        :meth:`perturb` makes ~15 scalar generator calls per title,
        which dominates million-record workload generation.  This path
        draws every random quantity as one vectorized array up front
        (positions as fractions scaled to each title's token count) and
        then applies the same perturbation kinds in a plain loop.  The
        output distribution matches :meth:`perturb`; the random stream
        differs, so the two paths produce different (equally valid)
        variants.
        """
        n = len(titles)
        if n == 0:
            return []
        config = self.config
        rng = self.rng
        apply_lower = rng.random(n) < config.p_lowercase_all
        apply_upper = rng.random(n) < config.p_uppercase_token
        upper_at = rng.random(n)
        apply_typo = rng.random(n) < config.p_typo
        typo_at = rng.random(n)
        typo_kind = rng.integers(3, size=n)
        typo_char_at = rng.random(n)
        apply_drop = rng.random(n) < config.p_drop_token
        drop_at = rng.random(n)
        apply_swap = rng.random(n) < config.p_swap_tokens
        swap_at = rng.random(n)
        apply_abbrev = rng.random(n) < config.p_abbreviate
        apply_color = rng.random(n) < config.p_add_color_spec
        color_a = rng.integers(len(COLORS), size=n)
        color_b = rng.integers(len(COLORS), size=n)
        apply_suffix = rng.random(n) < config.p_add_model_suffix
        suffix = rng.integers(10, 9999, size=n)

        out: list[str] = []
        for row, title in enumerate(titles):
            tokens = title.split()
            if apply_lower[row]:
                tokens = [token.lower() for token in tokens]
            if tokens and apply_upper[row]:
                index = int(upper_at[row] * len(tokens))
                tokens[index] = tokens[index].upper()
            if tokens and apply_typo[row]:
                index = int(typo_at[row] * len(tokens))
                tokens[index] = self._typo_at(
                    tokens[index], int(typo_kind[row]), float(typo_char_at[row])
                )
            if len(tokens) > 4 and apply_drop[row]:
                index = int(drop_at[row] * len(tokens))
                tokens = tokens[:index] + tokens[index + 1 :]
            if len(tokens) > 2 and apply_swap[row]:
                index = int(swap_at[row] * (len(tokens) - 1))
                tokens[index], tokens[index + 1] = tokens[index + 1], tokens[index]
            if apply_abbrev[row]:
                tokens = [ABBREVIATIONS.get(token.lower(), token) for token in tokens]
            title_out = " ".join(tokens)
            if apply_color[row]:
                title_out = f"{title_out}, {COLORS[color_a[row]]}/{COLORS[color_b[row]]}"
            if apply_suffix[row]:
                title_out = f"{title_out} {int(suffix[row])}"
            out.append(title_out)
        return out


#: Default schema-rename aliases: attribute → the name it arrives under
#: after an upstream schema change (the "mixed schemas" corruption axis).
DEFAULT_FIELD_ALIASES: dict[str, str] = {
    "title": "name",
    "brand": "manufacturer",
    "category": "product_type",
    "model": "model_number",
    "usage": "intended_use",
}


@dataclass(frozen=True)
class FieldCorruptionConfig:
    """Probabilities of field-level corruptions applied per record.

    Attributes
    ----------
    p_drop_field:
        Null out one randomly chosen non-null attribute (missing field).
    p_swap_fields:
        Swap the values of two randomly chosen attributes.
    p_rename_field:
        Move one value under its schema alias (see ``aliases``), so the
        corpus ends up with mixed schemas.
    p_value_typo:
        Apply one character-level typo to a random token of a random
        non-null value.
    aliases:
        Mapping from attribute name to its renamed form; attributes
        without an alias are never renamed.
    """

    p_drop_field: float = 0.0
    p_swap_fields: float = 0.0
    p_rename_field: float = 0.0
    p_value_typo: float = 0.0
    aliases: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_FIELD_ALIASES)
    )

    def scaled(self, factor: float) -> "FieldCorruptionConfig":
        """A copy with every probability multiplied by ``factor`` (capped at 1)."""
        return FieldCorruptionConfig(
            p_drop_field=min(1.0, self.p_drop_field * factor),
            p_swap_fields=min(1.0, self.p_swap_fields * factor),
            p_rename_field=min(1.0, self.p_rename_field * factor),
            p_value_typo=min(1.0, self.p_value_typo * factor),
            aliases=dict(self.aliases),
        )


class RecordPerturber:
    """Apply field-level corruptions to whole records.

    Unlike :class:`TitlePerturber`, which rewrites a single title
    string, this perturber degrades the *structure* of a record: fields
    go missing, values land in the wrong column, and attributes arrive
    under renamed schema keys.  All randomness comes from one seeded
    generator, and for each record the per-axis decision draws happen in
    a fixed order, so the same ``(config, seed, records)`` triple always
    produces byte-identical output — the robustness-grid determinism
    contract.

    Parameters
    ----------
    config:
        Corruption probabilities and the schema-rename alias table.
    rng:
        Numpy random generator; pass a seeded generator for
        reproducible corpora.
    """

    def __init__(
        self,
        config: FieldCorruptionConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or FieldCorruptionConfig()
        self.rng = rng or np.random.default_rng(0)

    def _pick(self, names: Sequence[str]) -> str:
        """Choose one attribute name uniformly."""
        return names[int(self.rng.integers(len(names)))]

    def corrupt(self, record: Record) -> Record:
        """Return a corrupted copy of ``record`` (same id and source)."""
        config = self.config
        values: dict[str, str | None] = dict(record.values)

        # Decision draws happen unconditionally and in a fixed order so
        # the random stream does not depend on which corruptions fire.
        do_drop = bool(self.rng.random() < config.p_drop_field)
        do_swap = bool(self.rng.random() < config.p_swap_fields)
        do_rename = bool(self.rng.random() < config.p_rename_field)
        do_typo = bool(self.rng.random() < config.p_value_typo)

        if do_drop:
            present = [name for name, value in values.items() if value]
            if present:
                values[self._pick(present)] = None
        if do_swap and len(values) >= 2:
            names = list(values)
            first = self._pick(names)
            second = self._pick([name for name in names if name != first])
            values[first], values[second] = values[second], values[first]
        if do_rename:
            renamable = [name for name in values if name in config.aliases]
            if renamable:
                name = self._pick(renamable)
                renamed = dict(values)
                alias = config.aliases[name]
                if alias not in renamed:
                    renamed[alias] = renamed.pop(name)
                    values = renamed
        if do_typo:
            present = [name for name, value in values.items() if value]
            if present:
                name = self._pick(present)
                tokens = str(values[name]).split()
                if tokens:
                    index = int(self.rng.integers(len(tokens)))
                    kind = int(self.rng.integers(3))
                    fraction = float(self.rng.random())
                    tokens[index] = typo_edit(tokens[index], kind, fraction)
                    values[name] = " ".join(tokens)
        return Record(record_id=record.record_id, values=values, source=record.source)

    def corrupt_all(self, records: Sequence[Record]) -> list[Record]:
        """Corrupt ``records`` in order (one shared random stream)."""
        return [self.corrupt(record) for record in records]

    def corrupt_dataset(self, dataset: Dataset, name: str | None = None) -> Dataset:
        """Return a corrupted copy of ``dataset`` with an inferred schema.

        Schema-renames introduce attributes outside the original
        schema, so the corrupted dataset infers its attribute set from
        the corrupted records (mixed schemas are the point).
        """
        return Dataset(
            records=self.corrupt_all(dataset.records),
            name=name or f"{dataset.name}-corrupted",
            attributes=None,
        )
