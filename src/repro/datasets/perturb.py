"""Title perturbation engine.

Record duplication in real product data originates from discordant
representations: capitalization differences, typos, abbreviations,
re-ordered or dropped tokens, and added specification such as colour
(Section 1.1 of the paper, e.g. ``Nike Men's Lunar Force 1 Duckboot`` vs
``NIKE Men Lunar Force 1 Duckboot, Black/Dark Loden-BROGHT Crimson``).
This module applies such perturbations to a clean title to create
alternative records of the same real-world product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vocab import ABBREVIATIONS, COLORS


@dataclass(frozen=True)
class PerturbationConfig:
    """Probabilities of each perturbation applied to a duplicated title."""

    p_uppercase_token: float = 0.15
    p_lowercase_all: float = 0.15
    p_typo: float = 0.25
    p_drop_token: float = 0.15
    p_swap_tokens: float = 0.10
    p_abbreviate: float = 0.30
    p_add_color_spec: float = 0.35
    p_add_model_suffix: float = 0.25


class TitlePerturber:
    """Apply realistic noise to product titles.

    Parameters
    ----------
    config:
        Perturbation probabilities.
    rng:
        Numpy random generator; pass a seeded generator for reproducible
        datasets.
    """

    def __init__(
        self,
        config: PerturbationConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or PerturbationConfig()
        self.rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------ primitives

    def _typo(self, token: str) -> str:
        """Introduce a single character-level typo into ``token``."""
        if len(token) < 3:
            return token
        kind = self.rng.integers(3)
        position = int(self.rng.integers(1, len(token) - 1))
        if kind == 0:  # deletion
            return token[:position] + token[position + 1 :]
        if kind == 1:  # transposition
            chars = list(token)
            chars[position], chars[position - 1] = chars[position - 1], chars[position]
            return "".join(chars)
        # duplication
        return token[:position] + token[position] + token[position:]

    def _maybe(self, probability: float) -> bool:
        return bool(self.rng.random() < probability)

    # --------------------------------------------------------------- publics

    def perturb(self, title: str) -> str:
        """Return a noisy variant of ``title`` representing the same product."""
        tokens = title.split()
        config = self.config

        if self._maybe(config.p_lowercase_all):
            tokens = [token.lower() for token in tokens]
        if tokens and self._maybe(config.p_uppercase_token):
            index = int(self.rng.integers(len(tokens)))
            tokens[index] = tokens[index].upper()
        if tokens and self._maybe(config.p_typo):
            index = int(self.rng.integers(len(tokens)))
            tokens[index] = self._typo(tokens[index])
        if len(tokens) > 4 and self._maybe(config.p_drop_token):
            index = int(self.rng.integers(len(tokens)))
            tokens = tokens[:index] + tokens[index + 1 :]
        if len(tokens) > 2 and self._maybe(config.p_swap_tokens):
            index = int(self.rng.integers(len(tokens) - 1))
            tokens[index], tokens[index + 1] = tokens[index + 1], tokens[index]
        if self._maybe(config.p_abbreviate):
            tokens = [ABBREVIATIONS.get(token.lower(), token) for token in tokens]

        title_out = " ".join(tokens)
        if self._maybe(config.p_add_color_spec):
            color_a = self.rng.choice(COLORS)
            color_b = self.rng.choice(COLORS)
            title_out = f"{title_out}, {color_a}/{color_b}"
        if self._maybe(config.p_add_model_suffix):
            suffix = int(self.rng.integers(10, 9999))
            title_out = f"{title_out} {suffix}"
        return title_out

    def variants(self, title: str, count: int) -> list[str]:
        """Return ``count`` independent perturbed variants of ``title``."""
        return [self.perturb(title) for _ in range(count)]

    def _typo_at(self, token: str, kind: int, fraction: float) -> str:
        """The :meth:`_typo` edit with externally drawn randomness."""
        if len(token) < 3:
            return token
        position = 1 + int(fraction * (len(token) - 2))
        if kind == 0:  # deletion
            return token[:position] + token[position + 1 :]
        if kind == 1:  # transposition
            chars = list(token)
            chars[position], chars[position - 1] = chars[position - 1], chars[position]
            return "".join(chars)
        # duplication
        return token[:position] + token[position] + token[position:]

    def perturb_batch(self, titles: list[str]) -> list[str]:
        """Noisy variants of many titles with all randomness pre-drawn.

        :meth:`perturb` makes ~15 scalar generator calls per title,
        which dominates million-record workload generation.  This path
        draws every random quantity as one vectorized array up front
        (positions as fractions scaled to each title's token count) and
        then applies the same perturbation kinds in a plain loop.  The
        output distribution matches :meth:`perturb`; the random stream
        differs, so the two paths produce different (equally valid)
        variants.
        """
        n = len(titles)
        if n == 0:
            return []
        config = self.config
        rng = self.rng
        apply_lower = rng.random(n) < config.p_lowercase_all
        apply_upper = rng.random(n) < config.p_uppercase_token
        upper_at = rng.random(n)
        apply_typo = rng.random(n) < config.p_typo
        typo_at = rng.random(n)
        typo_kind = rng.integers(3, size=n)
        typo_char_at = rng.random(n)
        apply_drop = rng.random(n) < config.p_drop_token
        drop_at = rng.random(n)
        apply_swap = rng.random(n) < config.p_swap_tokens
        swap_at = rng.random(n)
        apply_abbrev = rng.random(n) < config.p_abbreviate
        apply_color = rng.random(n) < config.p_add_color_spec
        color_a = rng.integers(len(COLORS), size=n)
        color_b = rng.integers(len(COLORS), size=n)
        apply_suffix = rng.random(n) < config.p_add_model_suffix
        suffix = rng.integers(10, 9999, size=n)

        out: list[str] = []
        for row, title in enumerate(titles):
            tokens = title.split()
            if apply_lower[row]:
                tokens = [token.lower() for token in tokens]
            if tokens and apply_upper[row]:
                index = int(upper_at[row] * len(tokens))
                tokens[index] = tokens[index].upper()
            if tokens and apply_typo[row]:
                index = int(typo_at[row] * len(tokens))
                tokens[index] = self._typo_at(
                    tokens[index], int(typo_kind[row]), float(typo_char_at[row])
                )
            if len(tokens) > 4 and apply_drop[row]:
                index = int(drop_at[row] * len(tokens))
                tokens = tokens[:index] + tokens[index + 1 :]
            if len(tokens) > 2 and apply_swap[row]:
                index = int(swap_at[row] * (len(tokens) - 1))
                tokens[index], tokens[index + 1] = tokens[index + 1], tokens[index]
            if apply_abbrev[row]:
                tokens = [ABBREVIATIONS.get(token.lower(), token) for token in tokens]
            title_out = " ".join(tokens)
            if apply_color[row]:
                title_out = f"{title_out}, {COLORS[color_a[row]]}/{COLORS[color_b[row]]}"
            if apply_suffix[row]:
                title_out = f"{title_out} {int(suffix[row])}"
            out.append(title_out)
        return out
