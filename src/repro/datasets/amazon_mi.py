"""AmazonMI-like benchmark generator.

The AmazonMI benchmark (Section 5.1) is the paper's new, natural MIER
benchmark: 3,835 Amazon products described by title only, with five
intents — equivalence, same brand, similar category-set (Jaccard >= 0.4),
same main category, and the conjunction of the last two.  Table 4 reports
per-intent positive rates of roughly 15% / 20% / 49% / 67% / 49%.

The synthetic generator mirrors the single-source structure, the
title-only matching attribute, the five intents (with their subsumption
relations: equivalence ⊂ brand, Set-Cat ⊆ Main-Cat on this data), and the
positive-rate profile through the stratified pair sampler.
"""

from __future__ import annotations

from ..data.splits import SplitRatio
from .benchmark import BenchmarkSpec, MIERBenchmark, build_benchmark
from .labeling import AMAZON_MI_LABELER
from .sampler import StratumWeights

#: Stratum weights tuned to land near the Table 4 positive-rate profile
#: of AmazonMI (Eq 15%, Brand 20%, Set-Cat 49%, Main-Cat 67%).
AMAZON_MI_WEIGHTS = StratumWeights(
    duplicate=0.15,
    same_line=0.03,
    same_brand=0.02,
    same_domain=0.30,
    same_general=0.15,
    cross=0.35,
)

#: Domains used to mimic the AmazonMI product mix (shoes, electronics,
#: watches, and books — including the brand-less book/Kindle convention).
AMAZON_MI_DOMAINS = ("shoes", "computers", "cameras", "watches", "books")


def make_amazon_mi(
    num_pairs: int = 600,
    products_per_domain: int = 40,
    seed: int = 17,
    split_ratio: SplitRatio | None = None,
) -> MIERBenchmark:
    """Generate the AmazonMI-like benchmark.

    Parameters
    ----------
    num_pairs:
        Number of labeled candidate pairs (15,404 in the paper; scaled
        down by default for CPU-only runs).
    products_per_domain:
        Number of distinct products sampled per domain.
    seed:
        Seed controlling products, perturbations, pair sampling, and the
        split.
    split_ratio:
        Train/valid/test proportions; defaults to the paper's 3:1:1.
    """
    spec = BenchmarkSpec(
        name="amazon_mi",
        domains=AMAZON_MI_DOMAINS,
        labeler=AMAZON_MI_LABELER,
        weights=AMAZON_MI_WEIGHTS,
        products_per_domain=products_per_domain,
        num_pairs=num_pairs,
        copies_range=(1, 3),
        clean_clean=False,
    )
    return build_benchmark(spec, seed=seed, split_ratio=split_ratio)
