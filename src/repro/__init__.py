"""repro — a reproduction of FlexER: Flexible Entity Resolution for Multiple Intents.

The package implements the full FlexER stack from the SIGMOD 2023 paper
(Genossar, Shraga, Gal): record/pair data model, blocking, per-intent
matchers (a DITTO analogue over hashed text features trained with a
numpy autodiff engine), the multiplex intent graph, GraphSAGE message
propagation, the MIER baselines (Naïve, In-parallel, Multi-label), and
the evaluation measures of the paper (MI-P/R/F, MI-Acc, residual-error
reduction, preventable error).

The public API is composable: every pluggable component (solver,
blocker, graph builder, intent classifier) is named by a registry spec
in :class:`FlexERConfig` and built through :mod:`repro.registry`, and
:func:`repro.resolve` runs the whole stack — blocking, labeling,
splitting, staged FlexER — from raw records.

Quickstart
----------
>>> from repro import load_benchmark, FlexERConfig, evaluate_solution, resolve
>>> benchmark = load_benchmark("amazon_mi", num_pairs=200, products_per_domain=20)
>>> result = resolve(benchmark.split, config=FlexERConfig.fast())
>>> evaluation = evaluate_solution(result.solution)
>>> 0.0 <= evaluation.mi_f1 <= 1.0
True

For the production lifecycle — fit once, persist, query new records
online — see :func:`repro.fit`, :class:`repro.ResolverModel`, and
:func:`repro.load_model`; to hold live traffic with micro-batched
asyncio serving, see :mod:`repro.serve` (imported lazily as
``repro.serve``).
"""

__version__ = "1.0.0"

from .config import FlexERConfig, MatcherConfig, GraphConfig, GNNConfig, CacheConfig
from .data import (
    Record,
    Dataset,
    RecordPair,
    LabeledPair,
    CandidateSet,
    DatasetSplit,
    SplitRatio,
    split_candidates,
)
from .datasets import (
    MIERBenchmark,
    load_benchmark,
    benchmark_names,
    make_amazon_mi,
    make_walmart_amazon,
    make_wdc,
)
from .blocking import Blocker, FullBlocker, QGramBlocker, TokenBlocker
from .matching import (
    PairFeatureEncoder,
    PairMatcher,
    MultiLabelMatcher,
    NaiveSolver,
    InParallelSolver,
    MultiLabelSolver,
)
from .graph import MultiplexGraph, IntentGraphBuilder, GraphSAGE, IntentNodeClassifier
from .core import (
    Intent,
    IntentSet,
    Resolution,
    MIERProblem,
    MIERSolution,
    FlexER,
    FlexERResult,
)
from .evaluation import (
    BlockingQuality,
    evaluate_binary,
    evaluate_blocking,
    evaluate_solution,
    residual_error_reduction,
    multi_intent_error_reduction,
    preventable_error,
)
from .pipeline import ArtifactCache, BatchRunner, PipelineRunner, Scenario
from .resolver import Resolver, ResolverResult, fit, resolve
from .model import QueryResult, QuerySession, ResolverModel, load_model
from .retrieval import AnnKnnRetriever, BlockerRetriever, CandidateRetriever
from . import exceptions
from . import exec
from . import registry


def __getattr__(name: str):
    """Lazily import heavyweight optional subsystems.

    The serving layer pulls in :mod:`asyncio` plumbing and the workload
    scenarios pull in the synthetic benchmarks; most library users
    never touch either, so they load on first attribute access instead
    of at ``import repro`` time.
    """
    if name in ("serve", "scenarios"):
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FlexERConfig",
    "MatcherConfig",
    "GraphConfig",
    "GNNConfig",
    "CacheConfig",
    "Record",
    "Dataset",
    "RecordPair",
    "LabeledPair",
    "CandidateSet",
    "DatasetSplit",
    "SplitRatio",
    "split_candidates",
    "MIERBenchmark",
    "load_benchmark",
    "benchmark_names",
    "make_amazon_mi",
    "make_walmart_amazon",
    "make_wdc",
    "Blocker",
    "FullBlocker",
    "QGramBlocker",
    "TokenBlocker",
    "PairFeatureEncoder",
    "PairMatcher",
    "MultiLabelMatcher",
    "NaiveSolver",
    "InParallelSolver",
    "MultiLabelSolver",
    "MultiplexGraph",
    "IntentGraphBuilder",
    "GraphSAGE",
    "IntentNodeClassifier",
    "Intent",
    "IntentSet",
    "Resolution",
    "MIERProblem",
    "MIERSolution",
    "FlexER",
    "FlexERResult",
    "BlockingQuality",
    "evaluate_binary",
    "evaluate_blocking",
    "evaluate_solution",
    "residual_error_reduction",
    "multi_intent_error_reduction",
    "preventable_error",
    "ArtifactCache",
    "BatchRunner",
    "PipelineRunner",
    "Scenario",
    "Resolver",
    "ResolverResult",
    "ResolverModel",
    "QueryResult",
    "QuerySession",
    "AnnKnnRetriever",
    "BlockerRetriever",
    "CandidateRetriever",
    "resolve",
    "fit",
    "load_model",
    "exceptions",
    "exec",
    "registry",
    "serve",
    "scenarios",
    "__version__",
]
