"""Coalesced-vs-serial bit-identity checker (the ``serve-smoke`` job).

Usage::

    PYTHONPATH=src python -m repro.pipeline fit --save-model model.npz \\
        --query-holdout 8 --num-pairs 120 --products 10
    PYTHONPATH=src python -m repro.serve.check --model model.npz \\
        --query-holdout 8 --num-pairs 120 --products 10 --requests 200 \\
        --dump-serve serve.npz --dump-serial serial.npz

The checker rebuilds the benchmark holdout the ``fit`` command withheld,
starts an in-process :class:`~repro.serve.server.AsyncResolverServer`
on a loopback TCP port with the model **memory-mapped**, and fires
``--requests`` concurrent single-record queries (cycling the holdout)
through :class:`~repro.serve.client.ServeClient`.  It then replays the
same requests serially on an **eagerly loaded** copy of the model and
asserts, request by request:

* zero transport or server errors under concurrency;
* coalescing actually happened (``max_batch_observed > 1``);
* every coalesced result is bit-identical to its serial counterpart —
  which simultaneously proves the mmap load path byte-equivalent to
  the eager one.

Both result streams are dumped as deterministic ``.npz`` artifacts
(``--dump-serve`` / ``--dump-serial``) through one shared aggregation
helper, so CI can finish the argument with a plain ``cmp``.

``--chaos`` (the ``fault-smoke`` job) runs a different experiment: a
self-contained fit → update → serve round-trip executed twice — once
fault-free and once under a seeded :class:`~repro.faults.FaultPlan`
that SIGKILLs a pool worker mid-fit, tears the update-segment write,
and drops the serve connection mid-response.  The chaos side leans on
the stack's own recovery machinery (executor shard retry, torn-tail
quarantine on load, client reconnect-and-resend) and the checker then
asserts that **no non-typed error escaped** and that every surviving
model artifact and query result is **byte-identical** to the
fault-free run.  ``--model`` is not needed in this mode; the corpus is
built in a temporary directory.
"""

from __future__ import annotations

import argparse
import asyncio
import filecmp
import shutil
import statistics
import sys
import tempfile
import time
import warnings
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ..data.serialization import artifact_base_path, list_segment_paths, write_artifact
from ..datasets import benchmark_names, load_benchmark
from ..exceptions import FaultInjectionError, ReloadError, ReproError
from ..faults import FaultPlan, FaultSpec, RetryPolicy
from ..model import QueryResult, QuerySession, ResolverModel
from .client import ServeClient
from .registry import DEFAULT_MODEL, ModelRegistry
from .server import AsyncResolverServer, ServeConfig

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the serve checker."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.check",
        description="Assert coalesced micro-batch queries are bit-identical to serial ones",
    )
    parser.add_argument(
        "--model",
        default=None,
        help="fitted model artifact (.npz); required unless --chaos",
    )
    parser.add_argument(
        "--dataset",
        default="amazon_mi",
        choices=benchmark_names(),
        help="benchmark the model was fitted on",
    )
    parser.add_argument("--num-pairs", type=int, default=240, help="candidate pairs")
    parser.add_argument("--products", type=int, default=20, help="products per domain")
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--query-holdout",
        type=int,
        default=6,
        help="held-out record count used at fit time",
    )
    parser.add_argument(
        "--requests", type=int, default=200, help="concurrent requests to fire"
    )
    parser.add_argument("--k", type=int, default=5, help="candidates per record")
    parser.add_argument(
        "--max-batch-size", type=int, default=16, help="server micro-batch cap"
    )
    parser.add_argument(
        "--max-wait-us",
        type=int,
        default=20000,
        help="server batching window (generous default to force coalescing)",
    )
    parser.add_argument(
        "--dump-serve", default=None, help="write the coalesced result stream here"
    )
    parser.add_argument(
        "--dump-serial", default=None, help="write the serial result stream here"
    )
    parser.add_argument(
        "--upserted",
        type=int,
        default=0,
        help=(
            "leading holdout records a prior 'repro.pipeline update' run "
            "absorbed into the corpus; they are skipped as query probes"
        ),
    )
    parser.add_argument(
        "--reload-check",
        action="store_true",
        help=(
            "also exercise the reload op: stage a copy of the base artifact, "
            "append an update segment offline, reload over TCP and assert the "
            "server picked up the grown corpus"
        ),
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "run the fault-injection round-trip instead: fit, update and "
            "serve a throwaway model twice (fault-free vs a seeded FaultPlan "
            "of worker kills, torn writes and dropped connections) and "
            "assert byte-identical survivors with zero non-typed errors"
        ),
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=7,
        help="seed of the injected fault plan (--chaos only)",
    )
    return parser


def holdout_records(args: argparse.Namespace) -> list:
    """The benchmark records the ``fit`` command withheld from the corpus."""
    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    records = list(benchmark.dataset.records)
    holdout = int(args.query_holdout)
    if holdout < 1 or holdout >= len(records):
        raise SystemExit(f"--query-holdout must be in [1, {len(records) - 1}]")
    return records[-holdout:]


def aggregate_results(results: Sequence[QueryResult]) -> tuple[dict, dict]:
    """Deterministic ``(arrays, metadata)`` aggregate of a result stream.

    Shared by the serve and serial sides so the two dumps are
    byte-identical exactly when every per-request result is.  Timings
    are excluded for the same reason they are excluded from
    :meth:`~repro.model.QueryResult.as_arrays`.
    """
    arrays: dict[str, np.ndarray] = {}
    metadata: dict[str, object] = {"num_results": len(results)}
    record_ids: list[str] = []
    modes: list[str] = []
    for index, result in enumerate(results):
        part, _ = result.as_arrays()
        for name, array in part.items():
            arrays[f"{index:05d}::{name}"] = array
        record_ids.append(",".join(result.record_ids))
        modes.append(result.mode)
    metadata["record_ids"] = record_ids
    metadata["modes"] = modes
    return arrays, metadata


def _results_identical(left: QueryResult, right: QueryResult) -> bool:
    """Bit-level equality of two query results (content, not timings)."""
    left_arrays, left_meta = left.as_arrays()
    right_arrays, right_meta = right.as_arrays()
    if left_meta != right_meta or left_arrays.keys() != right_arrays.keys():
        return False
    for name, array in left_arrays.items():
        other = right_arrays[name]
        if array.dtype != other.dtype or array.shape != other.shape:
            return False
        if not np.array_equal(array, other):
            return False
    return True


async def _fire_requests(args, records) -> tuple[list[QueryResult], dict, list[float]]:
    """Serve ``--requests`` concurrent queries; returns (results, stats, latencies)."""
    server = AsyncResolverServer(
        _registry_for(args.model, mmap=True),
        ServeConfig(
            max_batch_size=args.max_batch_size,
            max_wait_us=args.max_wait_us,
            max_queue=max(2 * args.requests, 256),
        ),
    )
    tcp = await server.serve_tcp(host="127.0.0.1", port=0)
    port = tcp.sockets[0].getsockname()[1]
    latencies: list[float] = []
    try:
        async with ServeClient("127.0.0.1", port) as client:

            async def one(index: int) -> QueryResult:
                """Fire one single-record query and record its latency."""
                record = records[index % len(records)]
                start = time.perf_counter()
                result = await client.query([record], k=args.k, mode="online")
                latencies.append(time.perf_counter() - start)
                return result

            results = await asyncio.gather(
                *(one(index) for index in range(args.requests))
            )
            stats = await client.stats()
    finally:
        await server.stop()
    return list(results), stats, latencies


def _registry_for(path: str, mmap: bool):
    registry = ModelRegistry()
    registry.add(path=path, mmap=mmap)
    return registry


async def _reload_roundtrip(args, records) -> list[str]:
    """Exercise the ``reload`` op over TCP; returns failure descriptions.

    Stages a copy of the *base* artifact (no update segments), serves it
    memory-mapped, then plays the production sequence: an offline
    process appends an update segment next to the served path, the
    client sends ``reload``, and the next query must see the grown
    corpus — bit-identical to an in-process query on the updated model.
    Also asserts the typed :class:`~repro.exceptions.ReloadError` for
    instance-backed entries.
    """
    failures: list[str] = []
    upserts = records[: max(1, int(args.upserted))]
    probe = records[-1]
    if probe.record_id in {record.record_id for record in upserts}:
        return ["--reload-check needs at least one holdout record beyond --upserted"]
    with tempfile.TemporaryDirectory() as tmp:
        base = artifact_base_path(Path(args.model))
        staged = Path(tmp) / base.name
        shutil.copyfile(base, staged)
        registry = ModelRegistry()
        registry.add(path=staged, mmap=True)
        registry.add("pinned", model=ResolverModel.load(staged, mmap=False))
        server = AsyncResolverServer(
            registry,
            ServeConfig(max_batch_size=args.max_batch_size, max_wait_us=1000),
        )
        tcp = await server.serve_tcp(host="127.0.0.1", port=0)
        port = tcp.sockets[0].getsockname()[1]
        try:
            async with ServeClient("127.0.0.1", port) as client:
                # Force the lazy load so the later reload has an
                # instance to drop.
                await client.query([probe], k=args.k, mode="online")
                listing = {entry["name"]: entry for entry in await client.models()}
                base_count = listing[DEFAULT_MODEL]["corpus_records"]

                # The offline maintenance step: absorb the upserts and
                # append a sidecar segment next to the served base.
                offline = ResolverModel.load(staged, mmap=False)
                offline.update(upserts=upserts, compact="never")
                offline.save(staged)

                reply = await client.reload()
                if not reply.get("dropped"):
                    failures.append(
                        f"reload did not drop the loaded model: {reply}"
                    )
                after = await client.query([probe], k=args.k, mode="online")
                listing = {entry["name"]: entry for entry in await client.models()}
                count = listing[DEFAULT_MODEL]["corpus_records"]
                if count != base_count + len(upserts):
                    failures.append(
                        f"reloaded corpus has {count} records, expected "
                        f"{base_count} + {len(upserts)} upserts"
                    )
                serial = QuerySession(offline).query(
                    [probe], k=args.k, mode="online"
                )
                if not _results_identical(after, serial):
                    failures.append(
                        "post-reload query differs from the updated model"
                    )
                try:
                    await client.reload("pinned")
                except ReloadError:
                    pass
                else:
                    failures.append(
                        "reload of an instance-backed entry did not raise ReloadError"
                    )
        finally:
            await server.stop()
    return failures


# --------------------------------------------------------------------- chaos


def _chaos_world():
    """The throwaway corpus, holdout and pipeline config of ``--chaos``.

    The config is shared verbatim by the fault-free and the faulted run
    (models embed ``config.to_dict()`` in their artifact metadata, so
    byte-identity requires identical configs): a processes executor so
    a worker SIGKILL hits a real pool, plus a retry policy so the stack
    is expected to absorb it.
    """
    from ..config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
    from ..data.records import Dataset
    from ..datasets import BENCHMARK_LABELERS

    benchmark = load_benchmark("amazon_mi", num_pairs=60, products_per_domain=8, seed=7)
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    records = list(benchmark.dataset.records)
    holdout = records[-6:]
    corpus = Dataset(
        records=records[:-6],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    config = FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=2, seed=5),
        graph=GraphConfig(k_neighbors=2),
        gnn=GNNConfig(hidden_dim=16, epochs=4, seed=5),
        blocker={"type": "qgram", "min_shared": 14},
        executor={"type": "processes", "workers": 2},
        retry={"attempts": 3, "base_delay": 0.05},
    )
    return corpus, holdout, tuple(labeler.intent_names), label_pair, config


async def _chaos_serve(model_path: Path, probes, k: int) -> list[QueryResult]:
    """Serve ``model_path`` and query each probe once through a retrying client."""
    registry = ModelRegistry()
    registry.add(path=model_path, mmap=True)
    server = AsyncResolverServer(
        registry, ServeConfig(max_batch_size=4, max_wait_us=1000)
    )
    tcp = await server.serve_tcp(host="127.0.0.1", port=0)
    port = tcp.sockets[0].getsockname()[1]
    results: list[QueryResult] = []
    try:
        client = ServeClient(
            "127.0.0.1", port, retry=RetryPolicy(attempts=4, base_delay=0.05)
        )
        async with client:
            for record in probes:
                results.append(await client.query([record], k=k, mode="online"))
    finally:
        await server.stop()
    return results


def _chaos_lifecycle(
    workdir: Path, corpus, holdout, intents, label_pair, config, k: int
) -> list[QueryResult]:
    """One fit → save → update → save → serve round-trip under ``workdir``.

    The update step is written the way a restartable maintenance job
    is: if the segment write dies mid-flight (the injected torn write
    raises :class:`~repro.exceptions.FaultInjectionError` exactly where
    a crash would cut the process), the job reloads the model from disk
    — which quarantines the torn trailing segment — and redoes the
    update.  Both runs take the same nominal path, so their surviving
    bytes must match.
    """
    from ..resolver import fit

    model_path = workdir / "model.npz"
    fitted = fit(corpus, intents=intents, labeler=label_pair, config=config)
    fitted.save(model_path)

    upserts = holdout[:2]
    probes = holdout[2:]
    worker = ResolverModel.load(model_path, mmap=False)
    for _attempt in range(3):
        try:
            worker.update(upserts=upserts, compact="never")
            worker.save(model_path)
            break
        except FaultInjectionError:
            from ..update import TornSegmentWarning

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", TornSegmentWarning)
                worker = ResolverModel.load(model_path, mmap=False)
    else:
        raise ReproError("chaos update step did not survive its retry budget")
    return asyncio.run(_chaos_serve(model_path, probes, k))


def _artifact_files(workdir: Path) -> list[Path]:
    """The surviving model bytes of one run: base artifact + segment chain."""
    base = artifact_base_path(workdir / "model.npz")
    return [base, *list_segment_paths(base)]


def _chaos_check(args: argparse.Namespace) -> int:
    """Run the fault-injection round-trip; returns a process exit code."""
    corpus, holdout, intents, label_pair, config = _chaos_world()
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        clean_dir = root / "clean"
        chaos_dir = root / "chaos"
        faults_dir = root / "faults"
        for directory in (clean_dir, chaos_dir, faults_dir):
            directory.mkdir()

        clean_results = _chaos_lifecycle(
            clean_dir, corpus, holdout, intents, label_pair, config, args.k
        )

        plan = FaultPlan(
            specs=(
                # One pool worker dies mid-stage; shard retry must redo it.
                FaultSpec(point="exec.task", kind="crash", times=1),
                # after=1 skips the base-model save so the tear lands on
                # the update segment; seconds doubles as the cut fraction.
                FaultSpec(
                    point="storage.artifact_write",
                    kind="torn_write",
                    times=1,
                    after=1,
                    seconds=0.5,
                ),
                # The server aborts the TCP transport mid-response twice;
                # the client must reconnect and resend.
                FaultSpec(point="serve.send", kind="drop", times=2),
            ),
            seed=args.chaos_seed,
            state_dir=str(faults_dir),
        )
        chaos_results: list[QueryResult] | None = None
        try:
            with plan:
                chaos_results = _chaos_lifecycle(
                    chaos_dir, corpus, holdout, intents, label_pair, config, args.k
                )
        except ReproError as error:
            failures.append(
                f"typed error escaped the chaos lifecycle: "
                f"{type(error).__name__}: {error}"
            )
        except Exception as error:  # noqa: BLE001 - the whole point of the job
            failures.append(
                f"NON-TYPED error escaped the chaos lifecycle: "
                f"{type(error).__name__}: {error}"
            )

        # Every configured fault must actually have fired (the state_dir
        # markers are written on each cross-process claim) — otherwise
        # the run proved nothing.
        fired = {int(marker.name.split("-")[1]) for marker in faults_dir.glob("fired-*")}
        for index, spec in enumerate(plan.specs):
            if index not in fired:
                failures.append(
                    f"fault {spec.point!r} ({spec.kind}) never fired — "
                    "the chaos run was vacuous"
                )

        if chaos_results is not None:
            torn = list(chaos_dir.glob("*.torn"))
            if not torn:
                failures.append(
                    "no quarantined .torn segment found — the torn write "
                    "was not recovered through the load path"
                )
            clean_files = _artifact_files(clean_dir)
            chaos_files = _artifact_files(chaos_dir)
            if [f.name for f in clean_files] != [f.name for f in chaos_files]:
                failures.append(
                    f"surviving artifact sets differ: "
                    f"{[f.name for f in clean_files]} vs "
                    f"{[f.name for f in chaos_files]}"
                )
            else:
                for clean_file, chaos_file in zip(clean_files, chaos_files):
                    if not filecmp.cmp(clean_file, chaos_file, shallow=False):
                        failures.append(
                            f"artifact {clean_file.name} differs between the "
                            "fault-free and the faulted run"
                        )
            if len(chaos_results) != len(clean_results):
                failures.append(
                    f"expected {len(clean_results)} query results, "
                    f"got {len(chaos_results)}"
                )
            else:
                mismatches = sum(
                    not _results_identical(chaos, clean)
                    for chaos, clean in zip(chaos_results, clean_results)
                )
                if mismatches:
                    failures.append(
                        f"{mismatches}/{len(clean_results)} query results "
                        "differ between the fault-free and the faulted run"
                    )

    if failures:
        for failure in failures:
            print(f"serve.check FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        "serve.check OK: fit/update/serve survived worker kill, torn segment "
        "write and dropped connections with byte-identical artifacts and results"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the checker; returns 0 only if every assertion holds."""
    args = build_parser().parse_args(argv)
    if args.chaos:
        return _chaos_check(args)
    if not args.model:
        raise SystemExit("--model is required (unless running --chaos)")
    holdout = holdout_records(args)
    upserted = int(args.upserted)
    if upserted < 0 or upserted >= len(holdout):
        raise SystemExit(f"--upserted must be in [0, {len(holdout) - 1}]")
    # Records a prior update run absorbed into the corpus stop being
    # interesting probes; query the still-unseen remainder.
    records = holdout[upserted:]
    serve_results, stats, latencies = asyncio.run(_fire_requests(args, records))

    failures: list[str] = []
    if len(serve_results) != args.requests:
        failures.append(
            f"expected {args.requests} results, got {len(serve_results)}"
        )
    if stats.get("requests_failed") or stats.get("requests_rejected"):
        failures.append(f"server reported errors: {stats}")
    if args.requests > 1 and stats.get("max_batch_observed", 0) <= 1:
        failures.append(
            "no coalescing observed (max_batch_observed <= 1) — "
            "the batching scheduler did not merge concurrent requests"
        )

    # Serial ground truth on an *eagerly* loaded model: one session,
    # one query per unique record, no batching anywhere.
    model = ResolverModel.load(args.model, mmap=False)
    session = QuerySession(model)
    serial_unique = [
        session.query([record], k=args.k, mode="online") for record in records
    ]
    serial_results = [
        serial_unique[index % len(records)] for index in range(args.requests)
    ]

    mismatches = sum(
        not _results_identical(serve, serial)
        for serve, serial in zip(serve_results, serial_results)
    )
    if mismatches:
        failures.append(
            f"{mismatches}/{args.requests} coalesced results differ from serial"
        )

    if args.dump_serve:
        arrays, metadata = aggregate_results(serve_results)
        write_artifact(args.dump_serve, arrays, metadata)
    if args.dump_serial:
        arrays, metadata = aggregate_results(serial_results)
        write_artifact(args.dump_serial, arrays, metadata)

    if args.reload_check:
        reload_failures = asyncio.run(_reload_roundtrip(args, holdout))
        failures.extend(reload_failures)
        if not reload_failures:
            print(
                "serve.check: reload round-trip OK "
                "(segment appended offline, picked up over TCP)"
            )

    sorted_latencies = sorted(latencies) or [0.0]
    print(
        f"serve.check: {args.requests} requests over {len(records)} unique records, "
        f"{stats.get('batches_flushed', 0)} batches "
        f"(max {stats.get('max_batch_observed', 0)} records), "
        f"p50 {1e3 * statistics.median(sorted_latencies):.1f} ms, "
        f"p99 {1e3 * sorted_latencies[int(0.99 * (len(sorted_latencies) - 1))]:.1f} ms"
    )
    if failures:
        for failure in failures:
            print(f"serve.check FAILED: {failure}", file=sys.stderr)
        return 1
    print("serve.check OK: coalesced results bit-identical to serial (mmap == eager)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
