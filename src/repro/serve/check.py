"""Coalesced-vs-serial bit-identity checker (the ``serve-smoke`` job).

Usage::

    PYTHONPATH=src python -m repro.pipeline fit --save-model model.npz \\
        --query-holdout 8 --num-pairs 120 --products 10
    PYTHONPATH=src python -m repro.serve.check --model model.npz \\
        --query-holdout 8 --num-pairs 120 --products 10 --requests 200 \\
        --dump-serve serve.npz --dump-serial serial.npz

The checker rebuilds the benchmark holdout the ``fit`` command withheld,
starts an in-process :class:`~repro.serve.server.AsyncResolverServer`
on a loopback TCP port with the model **memory-mapped**, and fires
``--requests`` concurrent single-record queries (cycling the holdout)
through :class:`~repro.serve.client.ServeClient`.  It then replays the
same requests serially on an **eagerly loaded** copy of the model and
asserts, request by request:

* zero transport or server errors under concurrency;
* coalescing actually happened (``max_batch_observed > 1``);
* every coalesced result is bit-identical to its serial counterpart —
  which simultaneously proves the mmap load path byte-equivalent to
  the eager one.

Both result streams are dumped as deterministic ``.npz`` artifacts
(``--dump-serve`` / ``--dump-serial``) through one shared aggregation
helper, so CI can finish the argument with a plain ``cmp``.
"""

from __future__ import annotations

import argparse
import asyncio
import shutil
import statistics
import sys
import tempfile
import time
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ..data.serialization import artifact_base_path, write_artifact
from ..datasets import benchmark_names, load_benchmark
from ..exceptions import ReloadError
from ..model import QueryResult, QuerySession, ResolverModel
from .client import ServeClient
from .registry import DEFAULT_MODEL, ModelRegistry
from .server import AsyncResolverServer, ServeConfig

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the serve checker."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.check",
        description="Assert coalesced micro-batch queries are bit-identical to serial ones",
    )
    parser.add_argument("--model", required=True, help="fitted model artifact (.npz)")
    parser.add_argument(
        "--dataset",
        default="amazon_mi",
        choices=benchmark_names(),
        help="benchmark the model was fitted on",
    )
    parser.add_argument("--num-pairs", type=int, default=240, help="candidate pairs")
    parser.add_argument("--products", type=int, default=20, help="products per domain")
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--query-holdout",
        type=int,
        default=6,
        help="held-out record count used at fit time",
    )
    parser.add_argument(
        "--requests", type=int, default=200, help="concurrent requests to fire"
    )
    parser.add_argument("--k", type=int, default=5, help="candidates per record")
    parser.add_argument(
        "--max-batch-size", type=int, default=16, help="server micro-batch cap"
    )
    parser.add_argument(
        "--max-wait-us",
        type=int,
        default=20000,
        help="server batching window (generous default to force coalescing)",
    )
    parser.add_argument(
        "--dump-serve", default=None, help="write the coalesced result stream here"
    )
    parser.add_argument(
        "--dump-serial", default=None, help="write the serial result stream here"
    )
    parser.add_argument(
        "--upserted",
        type=int,
        default=0,
        help=(
            "leading holdout records a prior 'repro.pipeline update' run "
            "absorbed into the corpus; they are skipped as query probes"
        ),
    )
    parser.add_argument(
        "--reload-check",
        action="store_true",
        help=(
            "also exercise the reload op: stage a copy of the base artifact, "
            "append an update segment offline, reload over TCP and assert the "
            "server picked up the grown corpus"
        ),
    )
    return parser


def holdout_records(args: argparse.Namespace) -> list:
    """The benchmark records the ``fit`` command withheld from the corpus."""
    benchmark = load_benchmark(
        args.dataset,
        num_pairs=args.num_pairs,
        products_per_domain=args.products,
        seed=args.seed,
    )
    records = list(benchmark.dataset.records)
    holdout = int(args.query_holdout)
    if holdout < 1 or holdout >= len(records):
        raise SystemExit(f"--query-holdout must be in [1, {len(records) - 1}]")
    return records[-holdout:]


def aggregate_results(results: Sequence[QueryResult]) -> tuple[dict, dict]:
    """Deterministic ``(arrays, metadata)`` aggregate of a result stream.

    Shared by the serve and serial sides so the two dumps are
    byte-identical exactly when every per-request result is.  Timings
    are excluded for the same reason they are excluded from
    :meth:`~repro.model.QueryResult.as_arrays`.
    """
    arrays: dict[str, np.ndarray] = {}
    metadata: dict[str, object] = {"num_results": len(results)}
    record_ids: list[str] = []
    modes: list[str] = []
    for index, result in enumerate(results):
        part, _ = result.as_arrays()
        for name, array in part.items():
            arrays[f"{index:05d}::{name}"] = array
        record_ids.append(",".join(result.record_ids))
        modes.append(result.mode)
    metadata["record_ids"] = record_ids
    metadata["modes"] = modes
    return arrays, metadata


def _results_identical(left: QueryResult, right: QueryResult) -> bool:
    """Bit-level equality of two query results (content, not timings)."""
    left_arrays, left_meta = left.as_arrays()
    right_arrays, right_meta = right.as_arrays()
    if left_meta != right_meta or left_arrays.keys() != right_arrays.keys():
        return False
    for name, array in left_arrays.items():
        other = right_arrays[name]
        if array.dtype != other.dtype or array.shape != other.shape:
            return False
        if not np.array_equal(array, other):
            return False
    return True


async def _fire_requests(args, records) -> tuple[list[QueryResult], dict, list[float]]:
    """Serve ``--requests`` concurrent queries; returns (results, stats, latencies)."""
    server = AsyncResolverServer(
        _registry_for(args.model, mmap=True),
        ServeConfig(
            max_batch_size=args.max_batch_size,
            max_wait_us=args.max_wait_us,
            max_queue=max(2 * args.requests, 256),
        ),
    )
    tcp = await server.serve_tcp(host="127.0.0.1", port=0)
    port = tcp.sockets[0].getsockname()[1]
    latencies: list[float] = []
    try:
        async with ServeClient("127.0.0.1", port) as client:

            async def one(index: int) -> QueryResult:
                """Fire one single-record query and record its latency."""
                record = records[index % len(records)]
                start = time.perf_counter()
                result = await client.query([record], k=args.k, mode="online")
                latencies.append(time.perf_counter() - start)
                return result

            results = await asyncio.gather(
                *(one(index) for index in range(args.requests))
            )
            stats = await client.stats()
    finally:
        await server.stop()
    return list(results), stats, latencies


def _registry_for(path: str, mmap: bool):
    registry = ModelRegistry()
    registry.add(path=path, mmap=mmap)
    return registry


async def _reload_roundtrip(args, records) -> list[str]:
    """Exercise the ``reload`` op over TCP; returns failure descriptions.

    Stages a copy of the *base* artifact (no update segments), serves it
    memory-mapped, then plays the production sequence: an offline
    process appends an update segment next to the served path, the
    client sends ``reload``, and the next query must see the grown
    corpus — bit-identical to an in-process query on the updated model.
    Also asserts the typed :class:`~repro.exceptions.ReloadError` for
    instance-backed entries.
    """
    failures: list[str] = []
    upserts = records[: max(1, int(args.upserted))]
    probe = records[-1]
    if probe.record_id in {record.record_id for record in upserts}:
        return ["--reload-check needs at least one holdout record beyond --upserted"]
    with tempfile.TemporaryDirectory() as tmp:
        base = artifact_base_path(Path(args.model))
        staged = Path(tmp) / base.name
        shutil.copyfile(base, staged)
        registry = ModelRegistry()
        registry.add(path=staged, mmap=True)
        registry.add("pinned", model=ResolverModel.load(staged, mmap=False))
        server = AsyncResolverServer(
            registry,
            ServeConfig(max_batch_size=args.max_batch_size, max_wait_us=1000),
        )
        tcp = await server.serve_tcp(host="127.0.0.1", port=0)
        port = tcp.sockets[0].getsockname()[1]
        try:
            async with ServeClient("127.0.0.1", port) as client:
                # Force the lazy load so the later reload has an
                # instance to drop.
                await client.query([probe], k=args.k, mode="online")
                listing = {entry["name"]: entry for entry in await client.models()}
                base_count = listing[DEFAULT_MODEL]["corpus_records"]

                # The offline maintenance step: absorb the upserts and
                # append a sidecar segment next to the served base.
                offline = ResolverModel.load(staged, mmap=False)
                offline.update(upserts=upserts, compact="never")
                offline.save(staged)

                reply = await client.reload()
                if not reply.get("dropped"):
                    failures.append(
                        f"reload did not drop the loaded model: {reply}"
                    )
                after = await client.query([probe], k=args.k, mode="online")
                listing = {entry["name"]: entry for entry in await client.models()}
                count = listing[DEFAULT_MODEL]["corpus_records"]
                if count != base_count + len(upserts):
                    failures.append(
                        f"reloaded corpus has {count} records, expected "
                        f"{base_count} + {len(upserts)} upserts"
                    )
                serial = QuerySession(offline).query(
                    [probe], k=args.k, mode="online"
                )
                if not _results_identical(after, serial):
                    failures.append(
                        "post-reload query differs from the updated model"
                    )
                try:
                    await client.reload("pinned")
                except ReloadError:
                    pass
                else:
                    failures.append(
                        "reload of an instance-backed entry did not raise ReloadError"
                    )
        finally:
            await server.stop()
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    """Run the checker; returns 0 only if every assertion holds."""
    args = build_parser().parse_args(argv)
    holdout = holdout_records(args)
    upserted = int(args.upserted)
    if upserted < 0 or upserted >= len(holdout):
        raise SystemExit(f"--upserted must be in [0, {len(holdout) - 1}]")
    # Records a prior update run absorbed into the corpus stop being
    # interesting probes; query the still-unseen remainder.
    records = holdout[upserted:]
    serve_results, stats, latencies = asyncio.run(_fire_requests(args, records))

    failures: list[str] = []
    if len(serve_results) != args.requests:
        failures.append(
            f"expected {args.requests} results, got {len(serve_results)}"
        )
    if stats.get("requests_failed") or stats.get("requests_rejected"):
        failures.append(f"server reported errors: {stats}")
    if args.requests > 1 and stats.get("max_batch_observed", 0) <= 1:
        failures.append(
            "no coalescing observed (max_batch_observed <= 1) — "
            "the batching scheduler did not merge concurrent requests"
        )

    # Serial ground truth on an *eagerly* loaded model: one session,
    # one query per unique record, no batching anywhere.
    model = ResolverModel.load(args.model, mmap=False)
    session = QuerySession(model)
    serial_unique = [
        session.query([record], k=args.k, mode="online") for record in records
    ]
    serial_results = [
        serial_unique[index % len(records)] for index in range(args.requests)
    ]

    mismatches = sum(
        not _results_identical(serve, serial)
        for serve, serial in zip(serve_results, serial_results)
    )
    if mismatches:
        failures.append(
            f"{mismatches}/{args.requests} coalesced results differ from serial"
        )

    if args.dump_serve:
        arrays, metadata = aggregate_results(serve_results)
        write_artifact(args.dump_serve, arrays, metadata)
    if args.dump_serial:
        arrays, metadata = aggregate_results(serial_results)
        write_artifact(args.dump_serial, arrays, metadata)

    if args.reload_check:
        reload_failures = asyncio.run(_reload_roundtrip(args, holdout))
        failures.extend(reload_failures)
        if not reload_failures:
            print(
                "serve.check: reload round-trip OK "
                "(segment appended offline, picked up over TCP)"
            )

    sorted_latencies = sorted(latencies) or [0.0]
    print(
        f"serve.check: {args.requests} requests over {len(records)} unique records, "
        f"{stats.get('batches_flushed', 0)} batches "
        f"(max {stats.get('max_batch_observed', 0)} records), "
        f"p50 {1e3 * statistics.median(sorted_latencies):.1f} ms, "
        f"p99 {1e3 * sorted_latencies[int(0.99 * (len(sorted_latencies) - 1))]:.1f} ms"
    )
    if failures:
        for failure in failures:
            print(f"serve.check FAILED: {failure}", file=sys.stderr)
        return 1
    print("serve.check OK: coalesced results bit-identical to serial (mmap == eager)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
