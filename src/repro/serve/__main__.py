"""``python -m repro.serve`` — run the NDJSON resolver server."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
