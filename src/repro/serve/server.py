"""Asyncio serving core: micro-batching, backpressure, timeouts.

:class:`AsyncResolverServer` turns the fit-once/query-many
:class:`~repro.model.QuerySession` API into something that holds
traffic.  Concurrent ``await server.query(...)`` calls targeting the
same *(model, intents, k)* group are coalesced into one micro-batch and
executed as a single session query; the per-request results are sliced
back out of the batch result.  Coalescing is semantics-free because
``"online"`` inference is per-record independent (PR 5's
batch-independence guarantee, re-asserted bit-for-bit by the serve
tests and the ``serve-smoke`` CI job).

Scheduling model
----------------
Each batch group keeps a pending-request list.  The first arrival arms
a flush timer for the group's current *wait window*; the batch flushes
when either the window elapses or the pending record count reaches
``max_batch_size``, whichever comes first.  The window adapts between
``min_wait_us`` and ``max_wait_us`` from an exponential moving average
of batch fill: heavy traffic (batches filling up) earns the full
window, sparse traffic decays toward ``min_wait_us`` so lone requests
are not held hostage by an empty batch.

``"exact"`` mode queries are *never* coalesced — exact replay is
transductive (every pair in the batch lands in the replayed test
split), so batching would change results.  They still get queueing,
backpressure, timeouts, and session pooling.

Backpressure is a bounded admission counter: when
``max_queue`` requests are already waiting or executing, new ones are
rejected immediately with
:class:`~repro.exceptions.ServerOverloadedError` instead of growing an
unbounded queue.  Every request also carries a deadline that covers its
whole lifetime — batching wait, session queueing, and execution —
enforced with :class:`~repro.exceptions.QueryTimeoutError`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..data.records import Record
from ..exceptions import (
    ConfigurationError,
    ModelUnavailableError,
    QueryError,
    QueryTimeoutError,
    ServeError,
    ServerOverloadedError,
)
from ..faults import inject
from ..model import QueryResult, QuerySession
from .registry import DEFAULT_MODEL, ModelRegistry

__all__ = ["AsyncResolverServer", "ServeConfig", "ServeStats"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of :class:`AsyncResolverServer`.

    Attributes
    ----------
    max_batch_size:
        Flush a micro-batch as soon as it holds this many records.
    max_wait_us:
        Upper bound of the adaptive batching window, in microseconds:
        the longest a request waits for companions before its batch
        flushes anyway.
    min_wait_us:
        Lower bound of the adaptive window; the window decays here
        under sparse traffic.
    max_queue:
        Admission bound — the number of requests allowed to be waiting
        or executing at once before new ones are rejected with
        :class:`~repro.exceptions.ServerOverloadedError`.
    sessions_per_model:
        Size of each tenant's :class:`~repro.model.QuerySession` pool,
        i.e. how many batches of one model may execute concurrently.
    default_timeout_seconds:
        Per-request deadline applied when ``query()`` is called without
        an explicit ``timeout`` (``None`` disables the default).
    default_k:
        Candidates retrieved per record when a request does not say.
    default_mode:
        Query mode when a request does not say (``"online"`` coalesces;
        ``"exact"`` never does).
    breaker_failures:
        Consecutive backend failures that trip a model's circuit
        breaker (:class:`~repro.serve.registry.ModelHealth`); while
        open, requests for that model shed immediately with
        :class:`~repro.exceptions.ModelUnavailableError` and a
        retry-after hint.  ``0`` disables the breaker.
    breaker_reset_seconds:
        Cooldown before an open breaker admits a half-open probe; also
        the retry-after hint shed requests carry.
    """

    max_batch_size: int = 16
    max_wait_us: int = 2000
    min_wait_us: int = 100
    max_queue: int = 256
    sessions_per_model: int = 1
    default_timeout_seconds: float | None = 30.0
    default_k: int = 5
    default_mode: str = "online"
    breaker_failures: int = 5
    breaker_reset_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if self.min_wait_us < 0 or self.max_wait_us < self.min_wait_us:
            raise ConfigurationError(
                "wait window must satisfy 0 <= min_wait_us <= max_wait_us"
            )
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if self.sessions_per_model < 1:
            raise ConfigurationError("sessions_per_model must be >= 1")
        if self.default_mode not in ("online", "exact"):
            raise ConfigurationError("default_mode must be 'online' or 'exact'")
        if self.breaker_failures < 0:
            raise ConfigurationError("breaker_failures must be >= 0 (0 disables)")
        if self.breaker_reset_seconds <= 0:
            raise ConfigurationError("breaker_reset_seconds must be positive")


@dataclass
class ServeStats:
    """Mutable serving counters (reported by the ``stats`` protocol op).

    ``max_batch_observed`` is the load-bearing one for correctness
    checks: a concurrency test that saw ``max_batch_observed > 1``
    proved requests were actually coalesced, not just serialized.
    """

    requests_total: int = 0
    requests_rejected: int = 0
    requests_shed: int = 0
    requests_timed_out: int = 0
    requests_failed: int = 0
    requests_completed: int = 0
    batches_flushed: int = 0
    records_batched: int = 0
    flushes_on_size: int = 0
    flushes_on_timer: int = 0
    max_batch_observed: int = 0
    exact_queries: int = 0
    wait_window_us: float = 0.0
    queue_depth: int = 0
    _fill_ema: float = field(default=0.0, repr=False)

    def snapshot(self) -> dict[str, object]:
        """A JSON-safe copy of the public counters."""
        return {
            name: getattr(self, name)
            for name in (
                "requests_total",
                "requests_rejected",
                "requests_shed",
                "requests_timed_out",
                "requests_failed",
                "requests_completed",
                "batches_flushed",
                "records_batched",
                "flushes_on_size",
                "flushes_on_timer",
                "max_batch_observed",
                "exact_queries",
                "wait_window_us",
                "queue_depth",
            )
        }


class _Pending:
    """One admitted request waiting in a batch group.

    ``release`` is the request's one-shot admission release: the slot it
    claimed under ``max_queue`` stays held until the request's work is
    actually finished (batch executed, or the request dropped from its
    batch), not merely until the caller stops waiting — so abandoned
    requests cannot let queued work grow past the admission bound.
    """

    __slots__ = ("records", "intents", "k", "future", "release", "started")

    def __init__(self, records, intents, k, future, release):
        self.records = records
        self.intents = intents
        self.k = k
        self.future = future
        self.release = release
        self.started = time.perf_counter()


class _BatchGroup:
    """Pending requests coalescible with each other.

    One group exists per ``(model, intents, k)`` key; requests in a
    group concatenate into a single ``session.query`` call.
    """

    __slots__ = ("key", "pending", "records", "timer", "window_us")

    def __init__(self, key, window_us: float):
        self.key = key
        self.pending: list[_Pending] = []
        self.records = 0
        self.timer: asyncio.TimerHandle | None = None
        self.window_us = window_us


#: Smoothing factor of the batch-fill EMA driving the adaptive window.
_FILL_EMA_ALPHA = 0.2


class AsyncResolverServer:
    """Micro-batched asyncio front end over a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        The models to serve.  A convenience: passing a
        :class:`~repro.model.ResolverModel` instead wraps it in a
        single-tenant registry under the name ``"default"``.
    config:
        Scheduling and backpressure knobs (default :class:`ServeConfig`).

    Example
    -------
    >>> server = AsyncResolverServer(model)        # doctest: +SKIP
    >>> async with server:                         # doctest: +SKIP
    ...     result = await server.query([record])
    """

    def __init__(self, registry, config: ServeConfig | None = None) -> None:
        if not isinstance(registry, ModelRegistry):
            model = registry
            registry = ModelRegistry()
            registry.add(DEFAULT_MODEL, model=model)
        self.registry = registry
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.stats.wait_window_us = float(self.config.max_wait_us)
        self._groups: dict[tuple, _BatchGroup] = {}
        self._admitted = 0
        self._session_slots: dict[str, asyncio.Semaphore] = {}
        self._running = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._tcp_server: asyncio.base_events.Server | None = None

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Mark the server as accepting requests (idempotent)."""
        self._loop = asyncio.get_running_loop()
        self._running = True

    async def stop(self) -> None:
        """Stop accepting requests and fail everything still pending."""
        self._running = False
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for group in list(self._groups.values()):
            if group.timer is not None:
                group.timer.cancel()
                group.timer = None
            for item in group.pending:
                if not item.future.done():
                    item.future.set_exception(ServeError("server stopped"))
                item.release()
            group.pending.clear()
            group.records = 0
        self._groups.clear()

    async def __aenter__(self) -> "AsyncResolverServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Expose the server over the NDJSON TCP protocol.

        Returns the listening :class:`asyncio.Server`; the bound port is
        ``server.sockets[0].getsockname()[1]`` (useful with ``port=0``).
        """
        from .protocol import MAX_LINE_BYTES, connection_handler

        await self.start()
        # Raise the stream limit to the protocol's line bound; the
        # default 64 KiB would make readline() raise on modest batches.
        self._tcp_server = await asyncio.start_server(
            connection_handler(self), host=host, port=port, limit=MAX_LINE_BYTES
        )
        return self._tcp_server

    # ------------------------------------------------------------------- query

    async def query(
        self,
        records: Sequence[Record],
        model: str = DEFAULT_MODEL,
        intents: Sequence[str] | None = None,
        k: int | None = None,
        mode: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Resolve ``records`` against ``model``'s corpus, coalescing with
        concurrent callers.

        Parameters
        ----------
        records:
            The new records to resolve (a micro-request; often one).
        model:
            Registry name of the tenant to query (default ``"default"``).
        intents:
            Intents to predict (default: all the model's intents).
        k:
            Candidates per record (default
            :attr:`ServeConfig.default_k`).
        mode:
            ``"online"`` (coalesced) or ``"exact"`` (never coalesced);
            default :attr:`ServeConfig.default_mode`.
        timeout:
            Deadline in seconds covering batching wait + execution
            (default :attr:`ServeConfig.default_timeout_seconds`).

        Returns
        -------
        QueryResult
            Bit-identical to a serial ``session.query(records, ...)``
            call for the same records.

        Raises
        ------
        ServeError
            If the server is not running or arguments are invalid.
        ServerOverloadedError
            When ``max_queue`` requests are already admitted.
        QueryTimeoutError
            When the deadline passes before the result is ready.
        QueryError
            When the records themselves are invalid (bad schema,
            duplicate ids within the request, unknown intents).
        """
        if not self._running:
            raise ServeError("server is not running (use 'async with' or start())")
        records = list(records)
        if not records:
            raise ServeError("query requires at least one record")
        config = self.config
        k = config.default_k if k is None else int(k)
        mode = config.default_mode if mode is None else mode
        if mode not in ("online", "exact"):
            raise ServeError(f"unknown query mode {mode!r}")
        if timeout is None:
            timeout = config.default_timeout_seconds
        self.stats.requests_total += 1
        if self._admitted >= config.max_queue:
            self.stats.requests_rejected += 1
            raise ServerOverloadedError(
                f"request queue is full ({config.max_queue} in flight)"
            )
        entry = self.registry.entry(model)
        health = entry.health
        health.configure(config.breaker_failures, config.breaker_reset_seconds)
        retry_after = health.allow()
        if retry_after is not None:
            self.stats.requests_shed += 1
            raise ModelUnavailableError(
                f"model {model!r} is shedding load (circuit breaker "
                f"{health.state}); retry in {retry_after:.2f}s",
                retry_after=retry_after,
            )
        if not entry.loaded:
            # First use of a path-registered tenant: materialize the
            # artifact in a worker thread so the event loop (and every
            # pending batch timer) is not stalled for the load duration.
            try:
                await asyncio.get_running_loop().run_in_executor(None, entry.get)
            except Exception:
                # A model that cannot load is the sickest backend of
                # all — repeated failures must trip the breaker.
                health.record_failure()
                raise
        # Validate on the caller's coroutine so one bad request fails
        # alone instead of poisoning the batch it would have joined.
        session = entry.session()
        try:
            records = session.validate(records, intents)
        finally:
            entry.release(session)

        release = self._admit()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            if mode == "exact":
                self.stats.exact_queries += 1
                task = asyncio.ensure_future(
                    self._run_exact(entry, records, intents, k)
                )
                task.add_done_callback(_transfer(future))
                task.add_done_callback(lambda _task: release())
            else:
                self._enqueue(entry, records, intents, k, future, release)
        except BaseException:
            # Ownership of the admission slot was never handed off.
            release()
            raise
        try:
            try:
                if timeout is None:
                    return await asyncio.shield(future)
                return await asyncio.wait_for(asyncio.shield(future), timeout)
            except asyncio.TimeoutError:
                future.cancel()
                self.stats.requests_timed_out += 1
                raise QueryTimeoutError(
                    f"query missed its {timeout:g}s deadline"
                ) from None
            except asyncio.CancelledError:
                # Caller went away (e.g. client disconnect): abandon the
                # request so an in-flight batch skips it on completion.
                # Its admission slot stays held until the batch task
                # drops or finishes it, keeping max_queue a bound on
                # real outstanding work.
                future.cancel()
                raise
        finally:
            if future.done() and not future.cancelled():
                if future.exception() is None:
                    self.stats.requests_completed += 1
                elif not isinstance(future.exception(), QueryTimeoutError):
                    self.stats.requests_failed += 1

    def _admit(self):
        """Claim one ``max_queue`` admission slot; returns its one-shot release.

        The slot counts *outstanding work*, so it is released when the
        request's execution finishes or the request is dropped from its
        batch — not when the caller stops waiting.
        """
        self._admitted += 1
        self.stats.queue_depth = self._admitted
        released = False

        def release() -> None:
            nonlocal released
            if released:
                return
            released = True
            self._admitted -= 1
            self.stats.queue_depth = self._admitted

        return release

    # -------------------------------------------------------------- exact path

    async def _run_exact(self, entry, records, intents, k) -> QueryResult:
        """Run one non-coalescible exact-mode request on a pooled session."""
        async with self._slot(entry.name):
            session = entry.session()

            def run_query() -> QueryResult:
                inject("serve.backend")
                return session.query(records, intents=intents, k=k, mode="exact")

            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, run_query
                )
            except QueryError:
                # Rejecting bad input is the backend *working*.
                entry.health.record_success()
                raise
            except Exception:
                entry.health.record_failure()
                raise
            else:
                entry.health.record_success()
                return result
            finally:
                entry.release(session)

    # ---------------------------------------------------------------- batching

    def _enqueue(self, entry, records, intents, k, future, release) -> None:
        """Add an online request to its batch group and arm/advance flushing."""
        key = (entry.name, None if intents is None else tuple(intents), k)
        group = self._groups.get(key)
        if group is None:
            group = _BatchGroup(key, window_us=self.stats.wait_window_us)
            self._groups[key] = group
        group.pending.append(_Pending(records, intents, k, future, release))
        group.records += len(records)
        if group.records >= self.config.max_batch_size:
            self._flush(group, entry, reason="size")
        elif group.timer is None:
            delay = max(group.window_us, self.config.min_wait_us) / 1e6
            group.timer = asyncio.get_running_loop().call_later(
                delay, self._flush, group, entry, "timer"
            )

    def _flush(self, group: _BatchGroup, entry, reason: str) -> None:
        """Close the group's current batch and hand it to an executor task."""
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        pending: list[_Pending] = []
        for item in group.pending:
            if item.future.done():
                item.release()  # abandoned while queued: free its slot now
            else:
                pending.append(item)
        group.pending = []
        group.records = 0
        if not pending:
            return
        batch_records = sum(len(item.records) for item in pending)
        stats = self.stats
        stats.batches_flushed += 1
        stats.records_batched += batch_records
        stats.flushes_on_size += reason == "size"
        stats.flushes_on_timer += reason == "timer"
        stats.max_batch_observed = max(stats.max_batch_observed, batch_records)
        self._adapt_window(batch_records)
        for sub_batch in _partition_disjoint(pending):
            asyncio.ensure_future(self._run_batch(entry, group.key, sub_batch))

    def _adapt_window(self, batch_records: int) -> None:
        """Track batch fill and steer the wait window between its bounds."""
        config = self.config
        fill = min(batch_records / config.max_batch_size, 1.0)
        stats = self.stats
        stats._fill_ema += _FILL_EMA_ALPHA * (fill - stats._fill_ema)
        stats.wait_window_us = config.min_wait_us + stats._fill_ema * (
            config.max_wait_us - config.min_wait_us
        )
        for group in self._groups.values():
            group.window_us = stats.wait_window_us

    async def _run_batch(self, entry, key, sub_batch: list[_Pending]) -> None:
        """Execute one coalesced sub-batch and split results per request."""
        _, intents, k = key
        try:
            async with self._slot(entry.name):
                # Requests abandoned (timed out / disconnected) while
                # waiting on the session slot are dropped here, so their
                # records never reach the executor.
                live = [item for item in sub_batch if not item.future.done()]
                if not live:
                    return
                records: list[Record] = []
                for item in live:
                    records.extend(item.records)
                session = entry.session()

                def run_query() -> QueryResult:
                    inject("serve.backend")
                    return session.query(records, intents=intents, k=k, mode="online")

                try:
                    result = await asyncio.get_running_loop().run_in_executor(
                        None, run_query
                    )
                except QueryError:
                    entry.health.record_success()
                    raise
                except Exception:
                    entry.health.record_failure()
                    raise
                else:
                    entry.health.record_success()
                finally:
                    entry.release(session)
                for item, part in zip(live, _split_result(result, live)):
                    if not item.future.done():
                        part.elapsed_seconds = time.perf_counter() - item.started
                        item.future.set_result(part)
        except Exception as error:  # noqa: BLE001 - forwarded to every waiter
            for item in sub_batch:
                if not item.future.done():
                    item.future.set_exception(error)
        finally:
            for item in sub_batch:
                item.release()

    def _slot(self, model_name: str) -> asyncio.Semaphore:
        """The tenant's concurrency gate (one permit per pooled session)."""
        slots = self._session_slots.get(model_name)
        if slots is None:
            slots = asyncio.Semaphore(self.config.sessions_per_model)
            self._session_slots[model_name] = slots
        return slots


def _transfer(future: asyncio.Future):
    """Copy a task's outcome onto ``future`` unless it already settled."""

    def done(task: asyncio.Task) -> None:
        """Mirror the finished task's result/exception onto the future."""
        if future.done():
            if not task.cancelled():
                task.exception()  # retrieve it so asyncio does not warn
            return
        if task.cancelled():
            future.cancel()
        elif task.exception() is not None:
            future.set_exception(task.exception())
        else:
            future.set_result(task.result())

    return done


def _partition_disjoint(pending: list[_Pending]) -> list[list[_Pending]]:
    """Split requests into sub-batches with disjoint record-id sets.

    Two concurrent requests may legitimately name the same record id;
    one ``session.query`` batch cannot (duplicate ids are a validation
    error).  First-fit partitioning keeps every request whole while
    packing non-conflicting requests together — usually one sub-batch.
    """
    batches: list[tuple[set[str], list[_Pending]]] = []
    for item in pending:
        ids = {record.record_id for record in item.records}
        for seen, batch in batches:
            if not (seen & ids):
                seen |= ids
                batch.append(item)
                break
        else:
            batches.append((set(ids), [item]))
    return [batch for _, batch in batches]


def _split_result(result: QueryResult, sub_batch: list[_Pending]) -> list[QueryResult]:
    """Slice one coalesced batch result back into per-request results.

    Pairs are emitted in query-record order with each record
    contributing ``len(candidates_per_record[id])`` consecutive rows,
    so per-request views are contiguous slices of the batch arrays —
    and byte-identical to what a solo query would have produced.
    """
    parts: list[QueryResult] = []
    offset = 0
    for item in sub_batch:
        ids = tuple(record.record_id for record in item.records)
        per_record = {rid: result.candidates_per_record[rid] for rid in ids}
        width = sum(len(candidates) for candidates in per_record.values())
        stop = offset + width
        parts.append(
            QueryResult(
                pairs=result.pairs[offset:stop],
                record_ids=ids,
                intents=result.intents,
                probabilities={
                    intent: np.ascontiguousarray(array[offset:stop])
                    for intent, array in result.probabilities.items()
                },
                predictions={
                    intent: np.ascontiguousarray(array[offset:stop])
                    for intent, array in result.predictions.items()
                },
                candidates_per_record=per_record,
                mode=result.mode,
            )
        )
        offset = stop
    return parts
