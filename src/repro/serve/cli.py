"""Command-line entry point of the serving layer.

Usage (module form)::

    PYTHONPATH=src python -m repro.serve --model model.npz --port 7171
    PYTHONPATH=src python -m repro.serve \\
        --model products=products.npz --model people=people.npz

Each ``--model`` registers one tenant; ``NAME=PATH`` names it, a bare
``PATH`` serves as ``"default"``.  Artifacts are memory-mapped and
loaded lazily on first query unless ``--no-mmap`` / ``--eager`` say
otherwise, so a many-tenant server starts instantly and pays for each
model only when traffic arrives.  The server speaks the
newline-delimited-JSON protocol of :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from collections.abc import Sequence

from ..data.serialization import artifact_base_path
from .registry import DEFAULT_MODEL, ModelRegistry
from .server import AsyncResolverServer, ServeConfig

__all__ = ["build_parser", "main"]


def validate_model_paths(pairs: Sequence[tuple[str, str]]) -> None:
    """Fail fast on unusable ``--model`` paths.

    Models load lazily, so without this check a typo'd path surfaces as
    a traceback on the first query instead of at startup.  Raises
    :class:`SystemExit` with a one-line message naming the model and
    the problem (missing file or unreadable file).
    """
    for name, path in pairs:
        artifact = artifact_base_path(path)
        if not artifact.is_file():
            raise SystemExit(
                f"error: model {name!r}: artifact not found: {artifact}"
            )
        try:
            with open(artifact, "rb"):
                pass
        except OSError as error:
            raise SystemExit(
                f"error: model {name!r}: cannot read {artifact}: {error.strerror or error}"
            ) from None


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the serve CLI."""
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Async micro-batched NDJSON-over-TCP resolver server",
    )
    parser.add_argument(
        "--model",
        action="append",
        required=True,
        metavar="[NAME=]PATH",
        help="model artifact to serve (repeatable; bare paths serve as 'default')",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7171, help="bind port (0 = any)")
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=ServeConfig.max_batch_size,
        help="flush a micro-batch at this many records",
    )
    parser.add_argument(
        "--max-wait-us",
        type=int,
        default=ServeConfig.max_wait_us,
        help="upper bound of the adaptive batching window (microseconds)",
    )
    parser.add_argument(
        "--min-wait-us",
        type=int,
        default=ServeConfig.min_wait_us,
        help="lower bound of the adaptive batching window (microseconds)",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=ServeConfig.max_queue,
        help="admitted-request bound before fast rejection",
    )
    parser.add_argument(
        "--sessions-per-model",
        type=int,
        default=ServeConfig.sessions_per_model,
        help="concurrent query sessions per tenant",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=ServeConfig.default_timeout_seconds,
        help="default per-request deadline in seconds (0 disables)",
    )
    parser.add_argument(
        "--no-mmap",
        "--eager",
        dest="mmap",
        action="store_false",
        help="materialize model arrays eagerly instead of memory-mapping",
    )
    return parser


def parse_model_args(specs: Sequence[str]) -> list[tuple[str, str]]:
    """Expand ``[NAME=]PATH`` specs into ``(name, path)`` pairs."""
    pairs: list[tuple[str, str]] = []
    for spec in specs:
        name, separator, path = spec.partition("=")
        if not separator:
            pairs.append((DEFAULT_MODEL, spec))
        elif name and path:
            pairs.append((name, path))
        else:
            raise SystemExit(f"--model expects [NAME=]PATH, got {spec!r}")
    return pairs


def make_config(args: argparse.Namespace) -> ServeConfig:
    """A :class:`ServeConfig` from parsed CLI arguments."""
    return ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        min_wait_us=args.min_wait_us,
        max_queue=args.queue_size,
        sessions_per_model=args.sessions_per_model,
        default_timeout_seconds=args.timeout if args.timeout > 0 else None,
    )


async def _serve(args: argparse.Namespace) -> int:
    registry = ModelRegistry()
    pairs = parse_model_args(args.model)
    validate_model_paths(pairs)
    for name, path in pairs:
        registry.add(name, path=path, mmap=args.mmap)
    server = AsyncResolverServer(registry, make_config(args))
    tcp = await server.serve_tcp(host=args.host, port=args.port)
    host, port = tcp.sockets[0].getsockname()[:2]
    names = ", ".join(sorted(registry)) or "none"
    print(
        f"serving {len(registry)} model(s) [{names}] on {host}:{port} "
        f"(batch<= {server.config.max_batch_size}, "
        f"window {server.config.min_wait_us}-{server.config.max_wait_us}us, "
        f"queue {server.config.max_queue}, mmap={'on' if args.mmap else 'off'})",
        flush=True,
    )
    try:
        await tcp.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the serve CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        return 0
