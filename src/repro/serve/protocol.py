"""Newline-delimited-JSON TCP protocol of the serving layer.

One request per line, one response per line, UTF-8 JSON.  Requests are
objects with an ``op`` field and an optional client-chosen ``id`` that
is echoed verbatim in the response, so a client may pipeline many
requests over one connection and match responses out of order.

Operations
----------
``query``
    ``{"op": "query", "id": 1, "records": [...], "model": "default",
    "intents": null, "k": 5, "mode": "online", "timeout": 10.0}`` —
    every field but ``records`` is optional.  Records are objects with
    ``record_id``, ``values`` (attribute → string-or-null), and an
    optional ``source``.
``ping``
    Liveness probe; responds ``{"ok": true, "result": "pong"}``.
``models``
    Registry listing (name, loaded, mmap, fingerprint, ...).
``stats``
    A :meth:`~repro.serve.server.ServeStats.snapshot` of the counters.
``reload``
    ``{"op": "reload", "model": "default"}`` — evict the named
    path-backed model so the next query lazily re-reads its artifact
    (including any update segments appended since).  In-flight queries
    finish on the old instance.  Instance-backed entries answer with a
    ``ReloadError``.

Responses are ``{"id": ..., "ok": true, "result": ...}`` on success and
``{"id": ..., "ok": false, "error": {"type": ..., "message": ...}}`` on
failure, where ``type`` is the library exception class name
(``ServerOverloadedError``, ``QueryTimeoutError``, ``QueryError``, ...).
Errors carrying a backoff hint (``ModelUnavailableError`` from an open
circuit breaker) add a ``retry_after`` field with the seconds a client
should wait before retrying.

Query results serialize with full float precision (``repr``-based JSON
floats round-trip IEEE doubles exactly), so a client that rebuilds the
arrays with :func:`result_from_json` gets output byte-identical to an
in-process call — the property the ``serve-smoke`` CI job pins down.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from ..data.pairs import RecordPair
from ..data.records import Record
from ..exceptions import ReproError, ServeError
from ..faults import inject
from ..model import QueryResult
from .registry import DEFAULT_MODEL

__all__ = [
    "connection_handler",
    "record_from_json",
    "record_to_json",
    "result_from_json",
    "result_to_json",
]

#: Longest accepted request line, a guard against unframed garbage.
MAX_LINE_BYTES = 8 * 1024 * 1024


def record_to_json(record: Record) -> dict[str, object]:
    """The wire form of a query record."""
    payload: dict[str, object] = {
        "record_id": record.record_id,
        "values": dict(record.values),
    }
    if record.source is not None:
        payload["source"] = record.source
    return payload


def record_from_json(payload: dict[str, object]) -> Record:
    """Rebuild a :class:`~repro.data.records.Record` from its wire form.

    Raises :class:`~repro.exceptions.ServeError` on malformed payloads
    (missing ``record_id``, non-object ``values``).
    """
    if not isinstance(payload, dict):
        raise ServeError(f"record must be an object, got {type(payload).__name__}")
    record_id = payload.get("record_id")
    values = payload.get("values")
    if not isinstance(record_id, str) or not record_id:
        raise ServeError("record.record_id must be a non-empty string")
    if not isinstance(values, dict):
        raise ServeError("record.values must be an object")
    source = payload.get("source")
    if source is not None and not isinstance(source, str):
        raise ServeError("record.source must be a string or null")
    return Record(record_id=record_id, values=values, source=source)


def result_to_json(result: QueryResult) -> dict[str, object]:
    """The wire form of a :class:`~repro.model.QueryResult`.

    Probabilities ship as JSON numbers (exact for IEEE doubles) and
    predictions as integers; :func:`result_from_json` reverses this
    byte-identically.
    """
    return {
        "pairs": [[pair.left_id, pair.right_id] for pair in result.pairs],
        "record_ids": list(result.record_ids),
        "intents": list(result.intents),
        "probabilities": {
            intent: array.tolist() for intent, array in result.probabilities.items()
        },
        "predictions": {
            intent: array.tolist() for intent, array in result.predictions.items()
        },
        "candidates_per_record": {
            record_id: list(ids)
            for record_id, ids in result.candidates_per_record.items()
        },
        "mode": result.mode,
        "elapsed_seconds": result.elapsed_seconds,
    }


def result_from_json(payload: dict[str, object]) -> QueryResult:
    """Rebuild a :class:`~repro.model.QueryResult` from its wire form."""
    intents = tuple(payload["intents"])
    return QueryResult(
        pairs=[RecordPair(left, right) for left, right in payload["pairs"]],
        record_ids=tuple(payload["record_ids"]),
        intents=intents,
        probabilities={
            intent: np.asarray(payload["probabilities"][intent], dtype=np.float64)
            for intent in intents
        },
        predictions={
            intent: np.asarray(payload["predictions"][intent], dtype=np.int64)
            for intent in intents
        },
        candidates_per_record={
            record_id: list(ids)
            for record_id, ids in payload["candidates_per_record"].items()
        },
        mode=str(payload["mode"]),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
    )


async def _handle_request(server, payload: dict[str, object]) -> object:
    """Dispatch one parsed request object; returns the ``result`` value."""
    op = payload.get("op", "query")
    if op == "ping":
        return "pong"
    if op == "models":
        return server.registry.describe()
    if op == "stats":
        return server.stats.snapshot()
    if op == "reload":
        name = payload.get("model", DEFAULT_MODEL)
        if not isinstance(name, str) or not name:
            raise ServeError("reload.model must be a non-empty string")
        dropped = server.registry.reload(name)
        return {"model": name, "reloaded": True, "dropped": dropped}
    if op == "query":
        records_payload = payload.get("records")
        if not isinstance(records_payload, list) or not records_payload:
            raise ServeError("query.records must be a non-empty array")
        records = [record_from_json(item) for item in records_payload]
        kwargs: dict[str, object] = {}
        if payload.get("model") is not None:
            kwargs["model"] = payload["model"]
        for name in ("intents", "k", "mode", "timeout"):
            if payload.get(name) is not None:
                kwargs[name] = payload[name]
        result = await server.query(records, **kwargs)
        return result_to_json(result)
    raise ServeError(f"unknown op {op!r}")


def connection_handler(server):
    """The per-connection callback for :func:`asyncio.start_server`.

    Each request line is served by its own task so slow queries do not
    block pipelined ones; when the client disconnects, every task still
    outstanding for that connection is cancelled, which abandons the
    matching server requests mid-batch.
    """

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        """Serve one client connection until EOF or disconnect."""
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()

        async def respond(request_id, ok: bool, body: object) -> None:
            """Write one response line under the connection write lock."""
            response: dict[str, object] = {"id": request_id, "ok": ok}
            response["result" if ok else "error"] = body
            data = json.dumps(response, separators=(",", ":")).encode() + b"\n"
            fault = inject("serve.send")
            if fault is not None:
                if fault.kind == "stall":
                    await asyncio.sleep(fault.seconds)
                elif fault.kind == "drop":
                    # Simulate the connection dying mid-response: abort
                    # the transport (RST, nothing flushed) so the client
                    # sees a dead connection, not a clean close.
                    writer.transport.abort()
                    return
            async with write_lock:
                writer.write(data)
                await writer.drain()

        async def serve_line(payload: dict[str, object]) -> None:
            """Dispatch one request line and send its response or error."""
            request_id = payload.get("id")
            try:
                result = await _handle_request(server, payload)
            except asyncio.CancelledError:
                raise
            except ReproError as error:
                body = {"type": type(error).__name__, "message": str(error)}
                retry_after = getattr(error, "retry_after", None)
                if retry_after is not None:
                    body["retry_after"] = float(retry_after)
                await respond(request_id, False, body)
            except Exception as error:  # noqa: BLE001 - reported to the client
                await respond(
                    request_id,
                    False,
                    {"type": "InternalError", "message": str(error)},
                )
            else:
                await respond(request_id, True, result)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # readline() raises past the stream limit.  There is
                    # no way to resync mid-line, so report and close.
                    try:
                        await respond(
                            None,
                            False,
                            {
                                "type": "ServeError",
                                "message": (
                                    "request line exceeds "
                                    f"{MAX_LINE_BYTES} bytes"
                                ),
                            },
                        )
                    except (ConnectionError, OSError):
                        pass
                    break
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    await respond(
                        None,
                        False,
                        {"type": "ServeError", "message": "request is not valid JSON"},
                    )
                    continue
                if not isinstance(payload, dict):
                    await respond(
                        None,
                        False,
                        {"type": "ServeError", "message": "request must be an object"},
                    )
                    continue
                task = asyncio.ensure_future(serve_line(payload))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in list(tasks):
                task.cancel()
            # Close without awaiting: an await here is a cancellation
            # window during loop teardown and the transport flushes on
            # close anyway.
            try:
                writer.close()
            except RuntimeError:
                pass

    return handle
