"""Asyncio client for the NDJSON serving protocol.

:class:`ServeClient` multiplexes many concurrent requests over one TCP
connection: each request gets a monotonically increasing ``id``, a
background reader task matches response lines back to the pending
futures, and callers simply ``await client.query(...)``.

Example
-------
>>> async with ServeClient("127.0.0.1", 7171) as client:   # doctest: +SKIP
...     result = await client.query([record])
...     print(result.predictions)
"""

from __future__ import annotations

import asyncio
import itertools
import json
from collections.abc import Sequence

from ..data.records import Record
from ..exceptions import (
    ConnectionLostError,
    ModelUnavailableError,
    QueryError,
    QueryTimeoutError,
    ReloadError,
    ReproError,
    ServeError,
    ServerOverloadedError,
)
from ..faults import RetryPolicy
from ..model import QueryResult
from .protocol import MAX_LINE_BYTES, record_to_json, result_from_json

__all__ = ["ServeClient"]

#: Wire error ``type`` values mapped back to library exception classes.
_ERROR_TYPES: dict[str, type[ReproError]] = {
    "ServeError": ServeError,
    "ReloadError": ReloadError,
    "ServerOverloadedError": ServerOverloadedError,
    "QueryTimeoutError": QueryTimeoutError,
    "QueryError": QueryError,
    "ModelUnavailableError": ModelUnavailableError,
}

#: Operations safe to resend when the connection dies mid-request: the
#: failure may have struck before *or after* server-side execution, so
#: only requests whose double execution is indistinguishable from a
#: single one qualify.  Every current op is a read or an idempotent
#: evict — but the gate is explicit so future mutating ops default to
#: fail-fast.
_IDEMPOTENT_OPS = frozenset({"query", "ping", "models", "stats", "reload"})

#: Transport failures worth a reconnect-and-resend.
_RETRYABLE_ERRORS = (ConnectionLostError, ConnectionError, OSError)


class ServeClient:
    """One multiplexed NDJSON connection to an :class:`AsyncResolverServer`.

    Parameters
    ----------
    host, port:
        The server's TCP endpoint.
    retry:
        Optional :class:`~repro.faults.RetryPolicy` for transparent
        reconnect-and-resend when the connection dies mid-request.
        Only idempotent operations are retried (every current op is);
        each resend opens a fresh connection if needed, uses a fresh
        request id, and backs off with the policy's jittered delays.
        ``None`` (the default) fails fast with
        :class:`~repro.exceptions.ConnectionLostError`.

    Use as an async context manager (``async with ServeClient(...)``),
    or call :meth:`connect` / :meth:`close` explicitly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7171,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.retry = retry
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._write_lock = asyncio.Lock()
        self._conn_lock = asyncio.Lock()
        # Bumped on every (re)connect; a failed request remembers the
        # generation it failed on so concurrent retries reconnect once,
        # not once each.
        self._generation = 0
        self._closed = False

    async def connect(self) -> "ServeClient":
        """Open the connection and start the response-reader task."""
        # The protocol allows response lines up to MAX_LINE_BYTES; the
        # default 64 KiB stream limit would make readline() raise on
        # any large batch response.
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._reader_task = asyncio.ensure_future(self._read_responses())
        self._generation += 1
        self._closed = False
        return self

    async def _reconnect(self, failed_generation: int) -> None:
        """Re-open the connection unless another retry already did."""
        async with self._conn_lock:
            if self._closed:
                raise ServeError("client is closed")
            if self._generation != failed_generation:
                return
            await self._teardown(ConnectionLostError("connection lost"))
            await self.connect()

    async def _teardown(self, error: Exception) -> None:
        """Stop the reader, close the transport, fail anything pending."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._reader = None
        self._fail_pending(error)

    async def close(self) -> None:
        """Close the connection; outstanding requests fail with ServeError."""
        self._closed = True
        # A deliberate close is not a transport fault: pending requests
        # fail with a plain (non-retryable) ServeError.
        await self._teardown(ServeError("connection closed"))

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ---------------------------------------------------------------- requests

    async def query(
        self,
        records: Sequence[Record],
        model: str | None = None,
        intents: Sequence[str] | None = None,
        k: int | None = None,
        mode: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Resolve ``records`` remotely; mirrors
        :meth:`~repro.serve.server.AsyncResolverServer.query`.

        Returns a rebuilt :class:`~repro.model.QueryResult` whose arrays
        are byte-identical to the server-side result (JSON numbers
        round-trip IEEE doubles exactly).

        Raises the library exception matching the server's error
        (:class:`~repro.exceptions.ServerOverloadedError`,
        :class:`~repro.exceptions.QueryTimeoutError`, ...).
        """
        payload: dict[str, object] = {
            "op": "query",
            "records": [record_to_json(record) for record in records],
        }
        if model is not None:
            payload["model"] = model
        if intents is not None:
            payload["intents"] = list(intents)
        if k is not None:
            payload["k"] = int(k)
        if mode is not None:
            payload["mode"] = mode
        if timeout is not None:
            payload["timeout"] = float(timeout)
        return result_from_json(await self._request(payload))

    async def ping(self) -> str:
        """Liveness probe; returns ``"pong"``."""
        return await self._request({"op": "ping"})

    async def models(self) -> list[dict[str, object]]:
        """The server's registry listing."""
        return await self._request({"op": "models"})

    async def stats(self) -> dict[str, object]:
        """The server's serving counters."""
        return await self._request({"op": "stats"})

    async def reload(self, model: str | None = None) -> dict[str, object]:
        """Ask the server to re-read ``model``'s artifact from disk.

        The server evicts the entry (in-flight queries finish on the old
        instance) and lazily re-loads on the next query, picking up any
        update segments appended by ``python -m repro.pipeline update``.
        Returns ``{"model": ..., "reloaded": True, "dropped": bool}``.

        Raises :class:`~repro.exceptions.ReloadError` when the entry is
        instance-backed (nothing on disk to re-read).
        """
        payload: dict[str, object] = {"op": "reload"}
        if model is not None:
            payload["model"] = model
        return await self._request(payload)

    # ---------------------------------------------------------------- plumbing

    async def _request(self, payload: dict[str, object]) -> object:
        policy = self.retry
        retryable = policy is not None and payload.get("op") in _IDEMPOTENT_OPS
        attempts = policy.attempts if retryable else 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(policy.delay(attempt))
            generation = self._generation
            try:
                return await self._send_once(payload)
            except _RETRYABLE_ERRORS as error:
                last_error = error
                if attempt + 1 >= attempts:
                    raise
                try:
                    await self._reconnect(generation)
                except _RETRYABLE_ERRORS as reconnect_error:
                    # The endpoint may still be coming back; keep the
                    # remaining attempts (and their backoff) alive.
                    last_error = reconnect_error
        raise last_error

    async def _send_once(self, payload: dict[str, object]) -> object:
        """Send one request line (fresh id) and await its response."""
        writer = self._writer
        if writer is None:
            if self._closed or self._generation == 0:
                raise ServeError("client is not connected (use 'async with')")
            raise ConnectionLostError("connection lost")
        request_id = next(self._ids)
        payload = dict(payload)
        payload["id"] = request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        data = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        try:
            async with self._write_lock:
                writer.write(data)
                await writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def _read_responses(self) -> None:
        reader = self._reader
        try:
            while True:
                line = await reader.readline()
                if not line:
                    self._fail_pending(
                        ConnectionLostError("server closed the connection")
                    )
                    return
                try:
                    response = json.loads(line)
                except ValueError:
                    continue
                future = self._pending.pop(response.get("id"), None)
                if future is None or future.done():
                    continue
                if response.get("ok"):
                    future.set_result(response.get("result"))
                else:
                    error = response.get("error") or {}
                    cls = _ERROR_TYPES.get(str(error.get("type")), ServeError)
                    message = str(error.get("message", "error"))
                    if cls is ModelUnavailableError:
                        future.set_exception(
                            cls(message, retry_after=error.get("retry_after"))
                        )
                    else:
                        future.set_exception(cls(message))
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,  # readline() raises it past the stream limit
        ) as error:
            self._fail_pending(ConnectionLostError(f"connection lost: {error}"))
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - a dead reader must not hang callers
            self._fail_pending(ConnectionLostError(f"response reader failed: {error}"))

    def _fail_pending(self, error: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
