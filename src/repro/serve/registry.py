"""Multi-tenant model registry for the serving layer.

A :class:`ModelRegistry` names the :class:`~repro.model.ResolverModel`s
one server process exposes.  Models registered by *path* are loaded
lazily — on the first query that names them — and memory-mapped by
default (``mmap=True``), so a registry holding many tenants keeps
resident memory bounded by the models actually in use, not by the sum
of all artifact sizes.  Each entry also owns a small pool of
:class:`~repro.model.QuerySession`s so concurrent micro-batches never
share mutable session state.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator, Mapping
from pathlib import Path

from ..exceptions import ReloadError, ServeError
from ..model import QuerySession, ResolverModel

__all__ = ["DEFAULT_MODEL", "ModelEntry", "ModelHealth", "ModelRegistry"]

#: Name a single-model registry serves under when none is given.
DEFAULT_MODEL = "default"


class ModelHealth:
    """Consecutive-failure circuit breaker for one registry entry.

    Tracks backend execution outcomes per model and sheds load when the
    backend looks sick, so a broken tenant fails fast with a typed
    :class:`~repro.exceptions.ModelUnavailableError` instead of queueing
    doomed work behind every healthy tenant.

    States
    ------
    ``closed``
        Healthy; every request is admitted.  ``threshold`` consecutive
        failures trip the breaker to ``open``.
    ``open``
        Shedding; :meth:`allow` returns a retry-after hint (seconds
        until the cooldown elapses).  After ``reset_seconds`` the next
        request is admitted as a probe (``half_open``).
    ``half_open``
        Exactly one probe request is in flight; its success closes the
        breaker, its failure re-opens it for another cooldown.  Other
        requests keep shedding while the probe runs.

    A ``threshold`` of 0 disables the breaker entirely.  Input errors
    (:class:`~repro.exceptions.QueryError`) must be recorded as
    *successes* — a backend that rejects bad records is working.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 5,
        reset_seconds: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.threshold = int(threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.failures_total = 0
        self.successes_total = 0
        self.opens_total = 0
        self.shed_total = 0

    def configure(self, threshold: int, reset_seconds: float) -> None:
        """Adopt the serving config's breaker settings (idempotent)."""
        self.threshold = int(threshold)
        self.reset_seconds = float(reset_seconds)

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> float | None:
        """Admit (``None``) or shed (seconds until the next probe slot).

        Must be called once per request *before* backend work; an open
        breaker counts the request as shed and returns the retry-after
        hint callers surface to clients.
        """
        with self._lock:
            if self.threshold <= 0 or self._state == self.CLOSED:
                return None
            if self._state == self.OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.reset_seconds:
                    self.shed_total += 1
                    return max(self.reset_seconds - elapsed, 0.0)
                self._state = self.HALF_OPEN
                self._probing = True
                return None
            # half_open: admit exactly one probe at a time.
            if self._probing:
                self.shed_total += 1
                return self.reset_seconds
            self._probing = True
            return None

    def record_success(self) -> None:
        """Backend executed a request: close the breaker."""
        with self._lock:
            self.successes_total += 1
            self._consecutive_failures = 0
            self._probing = False
            self._state = self.CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        """Backend failed a request: count it, trip when over threshold."""
        with self._lock:
            self.failures_total += 1
            self._consecutive_failures += 1
            was_probe, self._probing = self._probing, False
            if self.threshold <= 0:
                return
            if was_probe or self._consecutive_failures >= self.threshold:
                if self._state != self.OPEN:
                    self.opens_total += 1
                self._state = self.OPEN
                self._opened_at = self._clock()

    def snapshot(self) -> dict[str, object]:
        """JSON-safe view of the breaker (part of ``describe()``)."""
        with self._lock:
            return {
                "state": self._state,
                "threshold": self.threshold,
                "reset_seconds": self.reset_seconds,
                "consecutive_failures": self._consecutive_failures,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
                "opens_total": self.opens_total,
                "shed_total": self.shed_total,
            }


class ModelEntry:
    """One named model slot: a path or instance plus its session pool.

    Parameters
    ----------
    name:
        Registry name of the tenant.
    path:
        Artifact path for lazy loading (exclusive with ``model``).
    model:
        An already-loaded model to serve as-is (exclusive with ``path``).
    mmap:
        Memory-map the payload arrays when loading from ``path``.
    """

    def __init__(
        self,
        name: str,
        path: str | Path | None = None,
        model: ResolverModel | None = None,
        mmap: bool = True,
    ) -> None:
        if (path is None) == (model is None):
            raise ServeError(
                f"model {name!r} needs exactly one of path= or model="
            )
        self.name = name
        self.path = None if path is None else Path(path)
        self.mmap = bool(mmap)
        #: Per-tenant circuit breaker; the server stamps its configured
        #: threshold/cooldown here and consults it before every query.
        self.health = ModelHealth()
        self._model = model
        self._sessions: list[QuerySession] = []
        self._lock = threading.Lock()
        # Bumped by evict(); sessions borrowed before an eviction carry
        # an older generation and are dropped on release instead of
        # re-entering the pool still wrapping the evicted model.
        self._generation = 0

    @property
    def loaded(self) -> bool:
        """Whether the model artifact has been materialized."""
        return self._model is not None

    def get(self) -> ResolverModel:
        """The model, loading it from ``path`` on first use (thread-safe)."""
        if self._model is None:
            with self._lock:
                if self._model is None:
                    self._model = ResolverModel.load(self.path, mmap=self.mmap)
        return self._model

    def session(self) -> QuerySession:
        """Borrow a session from the pool (create one when empty).

        Sessions carry warm per-query state (frozen GNNs, layer
        indexes, the exact-mode runner), so borrowing/returning beats
        constructing a fresh session per batch.
        """
        with self._lock:
            if self._sessions:
                return self._sessions.pop()
            generation = self._generation
        session = QuerySession(self.get())
        session._registry_generation = generation
        return session

    def release(self, session: QuerySession) -> None:
        """Return a borrowed session to the pool.

        A session borrowed before an :meth:`evict` is stale — it still
        wraps the evicted model instance — and is silently dropped
        instead of being pooled for reuse.
        """
        with self._lock:
            if getattr(session, "_registry_generation", None) == self._generation:
                self._sessions.append(session)

    def evict(self) -> bool:
        """Drop the loaded model and its sessions; keep the registration.

        Returns ``True`` when a loaded model was actually dropped.
        Only path-backed entries can be evicted — an instance-backed
        entry has nothing to reload from.
        """
        if self.path is None:
            return False
        with self._lock:
            dropped = self._model is not None
            self._model = None
            self._sessions.clear()
            self._generation += 1
        return dropped

    def reload(self) -> bool:
        """Pick up an updated artifact: evict now, re-load lazily.

        The serving pattern behind ``python -m repro.pipeline update``:
        an offline process appends update segments (or rewrites the
        artifact) next to the served path, then asks the server to
        reload.  Eviction bumps the entry generation, so sessions
        borrowed before the reload finish their in-flight queries
        against the old instance and are dropped on release — no query
        is interrupted, and the next borrowed session wraps the freshly
        loaded state.

        Returns whether a loaded model instance was actually dropped
        (``False`` means the entry was not loaded yet, so the next use
        picks up the new bytes anyway).  Raises
        :class:`~repro.exceptions.ReloadError` for instance-backed
        entries, which have no artifact to re-read.
        """
        if self.path is None:
            raise ReloadError(
                f"model {self.name!r} is instance-backed (no artifact path); "
                f"re-register it to serve updated state"
            )
        return self.evict()

    def describe(self) -> dict[str, object]:
        """Summary of the entry for the ``models`` protocol op."""
        info: dict[str, object] = {
            "name": self.name,
            "loaded": self.loaded,
            "mmap": self.mmap,
            "path": None if self.path is None else str(self.path),
            "health": self.health.snapshot(),
        }
        if self.loaded:
            model = self.get()
            info["intents"] = list(model.intents)
            info["corpus_records"] = len(model.corpus)
            info["fingerprint"] = model.fingerprint()
        return info


class ModelRegistry(Mapping):
    """Named collection of servable models (a :class:`Mapping` of entries).

    Example
    -------
    >>> registry = ModelRegistry()                      # doctest: +SKIP
    >>> registry.add("products", path="products.npz")   # doctest: +SKIP
    >>> registry.get("products")                        # doctest: +SKIP
    <repro.model.ResolverModel ...>
    """

    def __init__(self) -> None:
        self._entries: dict[str, ModelEntry] = {}
        self._lock = threading.Lock()

    def add(
        self,
        name: str = DEFAULT_MODEL,
        path: str | Path | None = None,
        model: ResolverModel | None = None,
        mmap: bool = True,
    ) -> ModelEntry:
        """Register a model under ``name``.

        Parameters
        ----------
        name:
            Tenant name clients address the model by.
        path:
            Artifact to load lazily on first use (exclusive with
            ``model``).
        model:
            An already-loaded model (exclusive with ``path``).
        mmap:
            Memory-map path-backed artifacts (default ``True``).

        Raises
        ------
        ServeError
            If ``name`` is already registered or neither/both of
            ``path`` and ``model`` are given.
        """
        entry = ModelEntry(name, path=path, model=model, mmap=mmap)
        with self._lock:
            if name in self._entries:
                raise ServeError(f"model {name!r} is already registered")
            self._entries[name] = entry
        return entry

    def entry(self, name: str) -> ModelEntry:
        """The :class:`ModelEntry` registered under ``name``.

        Raises :class:`~repro.exceptions.ServeError` for unknown names,
        listing the registered ones.
        """
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "none"
            raise ServeError(
                f"unknown model {name!r} (registered: {known})"
            ) from None

    def get(self, name: str = DEFAULT_MODEL) -> ResolverModel:
        """The loaded model registered under ``name`` (loads lazily)."""
        return self.entry(name).get()

    def evict(self, name: str) -> bool:
        """Drop ``name``'s loaded model to reclaim memory (stays registered)."""
        return self.entry(name).evict()

    def reload(self, name: str = DEFAULT_MODEL) -> bool:
        """Re-read ``name``'s artifact (evict + lazy load on next use).

        Raises :class:`~repro.exceptions.ReloadError` when the entry is
        instance-backed, and :class:`~repro.exceptions.ServeError` for
        unknown names.
        """
        return self.entry(name).reload()

    def describe(self) -> list[dict[str, object]]:
        """Per-entry summaries, sorted by name (the ``models`` op payload)."""
        return [self._entries[name].describe() for name in sorted(self._entries)]

    def __getitem__(self, name: str) -> ModelEntry:
        return self.entry(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
