"""Async micro-batched serving layer over fitted resolver models.

The package turns the fit-once/query-many lifecycle into a process
that holds traffic:

* :class:`~repro.serve.server.AsyncResolverServer` — asyncio front end
  with request coalescing (micro-batches, bit-identical to serial
  queries), bounded-queue backpressure, and per-request deadlines;
* :class:`~repro.serve.registry.ModelRegistry` — multi-tenant model
  catalogue with lazy, memory-mapped artifact loading;
* :mod:`~repro.serve.protocol` — the newline-delimited-JSON TCP wire
  format (``asyncio.start_server``);
* :class:`~repro.serve.client.ServeClient` — a multiplexing client for
  that protocol;
* ``python -m repro.serve --model model.npz --port 7171`` — the server
  CLI (:mod:`~repro.serve.cli`);
* ``python -m repro.serve.check`` — the coalesced-vs-serial
  bit-identity checker behind the ``serve-smoke`` CI job.

Everything is standard library + numpy; there is no web framework
dependency.

Example
-------
>>> import asyncio, repro                                # doctest: +SKIP
>>> from repro.serve import AsyncResolverServer
>>> async def main():
...     server = AsyncResolverServer(repro.load_model("model.npz"))
...     async with server:
...         return await server.query(records, k=5)
>>> result = asyncio.run(main())                         # doctest: +SKIP
"""

from .client import ServeClient
from .registry import DEFAULT_MODEL, ModelEntry, ModelHealth, ModelRegistry
from .server import AsyncResolverServer, ServeConfig, ServeStats

__all__ = [
    "AsyncResolverServer",
    "DEFAULT_MODEL",
    "ModelEntry",
    "ModelHealth",
    "ModelRegistry",
    "ServeClient",
    "ServeConfig",
    "ServeStats",
]
