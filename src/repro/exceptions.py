"""Exception hierarchy for the repro (FlexER reproduction) library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """Raised for malformed records, datasets, or labeled pairs."""


class SchemaError(DataError):
    """Raised when a record does not conform to its dataset schema."""


class UnknownRecordError(DataError):
    """Raised when a record identifier cannot be resolved in a dataset."""


class LabelingError(DataError):
    """Raised when intent labels are missing, duplicated, or inconsistent."""


class BlockingError(ReproError):
    """Raised when a blocker is misconfigured or produces invalid pairs."""


class MatchingError(ReproError):
    """Raised when a matcher is used before fitting or on invalid input."""


class NotFittedError(MatchingError):
    """Raised when predictions are requested from an unfitted model."""


class GraphConstructionError(ReproError):
    """Raised when the multiplex intent graph cannot be built."""


class ConfigurationError(ReproError):
    """Raised when configuration values are out of their valid range."""


class RegistryError(ConfigurationError):
    """Raised for unknown component keys or malformed component specs."""


class EvaluationError(ReproError):
    """Raised when evaluation inputs are inconsistent (e.g. length mismatch)."""


class ExecutionError(ReproError):
    """Raised when a sharded execution task fails or a worker crashes.

    Executors wrap every task failure — including abrupt worker deaths
    that break a process pool — in this type, so callers of the parallel
    stages handle one exception instead of executor-specific ones.
    """


class IntentError(ReproError):
    """Raised for invalid intent definitions or unknown intent names."""


class ModelError(ReproError):
    """Raised for invalid :class:`~repro.model.ResolverModel` artifacts.

    Covers save/load failures that are specific to the model container —
    schema-version mismatches, fingerprint verification failures, and
    payloads missing required components.
    """


class QueryError(ReproError):
    """Raised when an online ``query()`` call receives invalid input.

    Covers query records colliding with corpus record ids, records
    outside the corpus schema, and retrieval misconfiguration.
    """


class UpdateError(ReproError):
    """Raised for invalid incremental corpus updates.

    Covers malformed deltas (unknown delete ids, records that do not fit
    the corpus schema, empty updates) and update state that cannot be
    persisted or replayed (broken segment chains).
    """


class ScenarioError(ReproError):
    """Raised for invalid or failed workload scenarios.

    Covers malformed scenario parameters (stream/probe sizes that leave
    no corpus, empty grids, unknown named presets) and violated
    invariants during a run — most importantly the streaming scenario's
    final exact-mode parity assertion against a fresh union fit.
    """


class FaultInjectionError(ReproError):
    """Raised by an armed :mod:`repro.faults` injection point.

    Deliberately injected by a :class:`~repro.faults.FaultPlan` to
    simulate a component failure.  Production code never raises this
    unless a fault plan is active, and fault-tolerant layers treat it
    exactly like the organic failure it stands in for.
    """


class ServeError(ReproError):
    """Raised for failures of the :mod:`repro.serve` serving layer.

    Base of the serving-specific error types; also raised directly for
    protocol violations (malformed requests, unknown operations) and
    server lifecycle misuse (querying a stopped server).
    """


class ServerOverloadedError(ServeError):
    """Raised when the serving request queue is full (backpressure).

    The server rejects new requests *immediately* instead of queueing
    them unboundedly, so callers can shed load or retry with backoff.
    """


class QueryTimeoutError(ServeError):
    """Raised when a served query misses its deadline.

    The deadline covers the whole request lifetime: waiting in the
    micro-batch window, queueing for a session, and executing.
    """


class ReloadError(ServeError):
    """Raised when a registry entry cannot pick up an updated artifact.

    Instance-backed entries have no path to reload from, so a ``reload``
    request against one is a caller error, not a server fault.
    """


class ModelUnavailableError(ServeError):
    """Raised when a model's circuit breaker is shedding load.

    After a run of consecutive backend failures the registry marks the
    model unhealthy and fails fast instead of queueing more doomed work.
    ``retry_after`` carries the seconds until the breaker next admits a
    probe, as a hint for client backoff.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class ConnectionLostError(ServeError):
    """Raised when a client connection dies with requests in flight.

    Marks failures that happened *in transport* — the request may or may
    not have executed server-side, so only idempotent operations are
    safe to retry on it.
    """
