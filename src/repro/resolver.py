"""The composable :class:`Resolver` facade — raw records to MIER solution.

This is the end-to-end entry point of the library: starting from a raw
:class:`~repro.data.records.Dataset` it runs blocking, attaches intent
labels, splits the candidates, and executes the staged FlexER pipeline —
with every component (blocker, solver, graph builder, intent classifier)
constructed through :mod:`repro.registry` from the specs carried by a
single :class:`~repro.config.FlexERConfig`:

>>> import repro
>>> benchmark = repro.load_benchmark("amazon_mi", num_pairs=120, products_per_domain=10)
>>> result = repro.resolve(  # doctest: +SKIP
...     benchmark.dataset,
...     intents=benchmark.intents,
...     labels=ground_truth_labels,
...     config=repro.FlexERConfig.fast(),
... )
>>> result.solution  # doctest: +SKIP
MIERSolution(...)

Pre-built inputs are also accepted: a labeled
:class:`~repro.data.pairs.CandidateSet` skips blocking, and a
:class:`~repro.data.splits.DatasetSplit` skips blocking and splitting —
so existing benchmark-driven code funnels through the same facade.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable, Mapping, Sequence

from .config import FlexERConfig
from .data.pairs import CandidateSet, LabeledPair, RecordPair
from .data.records import Dataset, Record
from .data.splits import DatasetSplit, SplitRatio, split_candidates
from .evaluation.blocking import BlockingQuality, evaluate_blocking
from .evaluation.metrics import BinaryEvaluation, evaluate_binary
from .evaluation.multi_intent import MultiIntentEvaluation, evaluate_solution
from .exceptions import BlockingError, LabelingError
from .blocking.base import Blocker
from .blocking.full import FullBlocker
from .core.flexer import FlexERTimings
from .core.mier import MIERSolution
from .exec import executor_spec
from .graph.multiplex import MultiplexGraph
from .matching.features import PairFeatureConfig
from .pipeline.cache import ArtifactCache
from .pipeline.runner import PipelineResult, PipelineRunner
from .registry import BLOCKERS

#: A pair labeling function over the two records of a candidate pair.
PairLabeler = Callable[[Record, Record], Mapping[str, int]]

#: Ground-truth labels keyed by record-id pair (either order) or RecordPair.
PairLabels = Mapping[object, Mapping[str, int]]


@dataclass
class ResolverResult:
    """Everything an end-to-end resolution run produces.

    Attributes
    ----------
    solution:
        The MIER solution over the test split's candidate pairs.
    pipeline:
        The staged run: stage events (hit/computed), graph, timings.
    split:
        The train/valid/test candidate split the pipeline ran over.
    intents:
        The intents the run resolved.
    candidates:
        The full labeled candidate set (``None`` when a pre-built
        :class:`DatasetSplit` was supplied).
    blocking:
        Blocking-quality profile; ``None`` when blocking did not run
        (pre-built inputs).  Its ``pair_completeness`` / ``pair_quality``
        are themselves ``None`` when no golden standard was available
        for the recall side.
    """

    solution: MIERSolution
    pipeline: PipelineResult
    split: DatasetSplit
    intents: tuple[str, ...]
    candidates: CandidateSet | None = None
    blocking: BlockingQuality | None = None

    @property
    def graph(self) -> MultiplexGraph:
        """The multiplex intent graph of the staged run."""
        return self.pipeline.graph

    @property
    def timings(self) -> FlexERTimings:
        """Stage timings of the staged run."""
        return self.pipeline.timings

    def evaluate(self) -> MultiIntentEvaluation:
        """Multi-intent evaluation of the solution against the test labels."""
        return evaluate_solution(self.solution)

    def intent_evaluations(self) -> dict[str, BinaryEvaluation]:
        """Per-intent P/R/F1 of the solution against the test labels."""
        test = self.split.test
        return {
            intent: evaluate_binary(self.solution.prediction(intent), test.labels(intent))
            for intent in self.solution.intents
        }


class Resolver:
    """Composable end-to-end MIER resolution facade.

    Parameters
    ----------
    config:
        Hyper-parameters and component specs of the run; defaults to the
        paper's main configuration (``in_parallel`` solver, ``qgram``
        blocker).
    cache:
        Shared artifact cache for the staged pipeline; ``None`` creates
        a private in-memory one.  Passing one cache to several resolvers
        (or re-running one resolver) turns unchanged stages into hits.
    augment_with_scores, feature_config:
        Forwarded to :class:`~repro.pipeline.PipelineRunner`.
    executor, workers:
        Sharded-execution override: an executor registry key or spec
        (``"serial"`` / ``"threads"`` / ``"processes"``) plus an
        optional worker count, replacing the config's executor spec.
        Results are bit-identical across executors; cached artifacts
        remain valid regardless of the choice.
    """

    def __init__(
        self,
        config: FlexERConfig | None = None,
        cache: ArtifactCache | None = None,
        augment_with_scores: bool = True,
        feature_config: PairFeatureConfig | None = None,
        executor: object = None,
        workers: int | None = None,
    ) -> None:
        self.config = config or FlexERConfig()
        if executor is not None or workers is not None:
            spec = executor_spec(
                executor if executor is not None else self.config.executor,
                workers,
            )
            self.config = replace(self.config, executor=spec)
        self.runner = PipelineRunner(
            cache=cache,
            augment_with_scores=augment_with_scores,
            feature_config=feature_config,
        )

    # ------------------------------------------------------------- components

    def make_blocker(self):
        """The blocker described by ``config.blocker`` (registry-built)."""
        return BLOCKERS.create(self.config.blocker)

    # ------------------------------------------------------------------ steps

    def block(self, dataset: Dataset) -> list[RecordPair]:
        """Run the configured blocker over ``dataset``.

        With a parallel executor configured, blockers that support it
        shard their co-occurrence join across the executor's workers
        (bit-identical to the serial join).
        """
        blocker = self.make_blocker()
        # The runner memoizes executors per spec, so blocking shares the
        # pipeline stages' worker pool instead of starting its own.
        executor = self.runner.executor_for(self.config)
        if executor.is_parallel and hasattr(blocker, "executor"):
            blocker.executor = executor
        pairs = blocker.block(dataset)
        if not pairs:
            raise BlockingError(
                f"blocker {self.config.blocker['type']!r} produced no candidate "
                f"pairs over dataset {dataset.name!r}; loosen its parameters or "
                f"use the 'full' blocker"
            )
        return pairs

    def label_candidates(
        self,
        dataset: Dataset,
        pairs: Sequence[RecordPair],
        intents: Sequence[str],
        labels: PairLabels | None = None,
        labeler: PairLabeler | None = None,
        default_label: int = 0,
    ) -> CandidateSet:
        """Attach per-intent labels to blocker-produced pairs.

        Labels come from a ``labels`` mapping (pairs absent from the
        mapping get ``default_label`` for every intent — the standard
        convention that unlisted pairs are non-matches) or from a
        ``labeler`` callable over the two records.
        """
        if (labels is None) == (labeler is None):
            raise LabelingError("provide exactly one of 'labels' or 'labeler'")
        intents = tuple(intents)
        lookup = _normalize_label_mapping(labels) if labels is not None else None
        candidates = CandidateSet(dataset, intents=intents)
        matched = 0
        for pair in pairs:
            if lookup is not None:
                pair_labels = lookup.get(pair)
                if pair_labels is None:
                    pair_labels = {intent: default_label for intent in intents}
                else:
                    matched += 1
            else:
                assert labeler is not None
                pair_labels = dict(labeler(dataset[pair.left_id], dataset[pair.right_id]))
            missing = set(intents) - set(pair_labels)
            if missing:
                raise LabelingError(
                    f"pair {pair.as_tuple()} is missing labels for intents "
                    f"{sorted(missing)}"
                )
            candidates.add(
                LabeledPair(pair=pair, labels={intent: pair_labels[intent] for intent in intents})
            )
        if lookup is not None and lookup and matched == 0:
            # Every blocked pair missed the mapping: almost certainly a
            # record-id mismatch, and training on all-default labels would
            # silently succeed on meaningless data.
            sample = next(iter(lookup)).as_tuple()
            raise LabelingError(
                f"none of the {len(pairs)} blocked pairs matched the "
                f"{len(lookup)} entries of the labels mapping (e.g. key "
                f"{sample!r}); check that its record ids match the dataset's"
            )
        return candidates

    # ---------------------------------------------------------------- resolve

    def _prepare(
        self,
        data: Dataset | CandidateSet | DatasetSplit,
        *,
        intents: Sequence[str] | None = None,
        labels: PairLabels | None = None,
        labeler: PairLabeler | None = None,
        default_label: int = 0,
        split_ratio: SplitRatio | None = None,
        split_seed: int = 13,
        max_exhaustive_records: int = 400,
    ) -> tuple[DatasetSplit, tuple[str, ...], CandidateSet | None, BlockingQuality | None]:
        """Shared data preparation of :meth:`resolve` and :meth:`fit`.

        Turns any accepted input into a labeled
        :class:`~repro.data.splits.DatasetSplit`: a raw dataset goes
        through blocking → labeling → splitting, a labeled candidate set
        through splitting only, and a pre-built split passes through.
        """
        blocking: BlockingQuality | None = None
        candidates: CandidateSet | None = None

        if isinstance(data, DatasetSplit):
            split = data
            resolved_intents = _resolve_intents(intents, split.train.intents)
        elif isinstance(data, CandidateSet):
            candidates = data
            resolved_intents = _resolve_intents(intents, candidates.intents)
            split = split_candidates(
                candidates,
                ratio=split_ratio,
                stratify_intent=resolved_intents[0],
                seed=split_seed,
            )
        elif isinstance(data, Dataset):
            pairs = self.block(data)
            resolved_intents = _infer_intents(data, pairs, intents, labels, labeler)
            candidates = self.label_candidates(
                data,
                pairs,
                resolved_intents,
                labels=labels,
                labeler=labeler,
                default_label=default_label,
            )
            blocking = self._blocking_quality(
                data, pairs, resolved_intents, labels, labeler, max_exhaustive_records
            )
            split = split_candidates(
                candidates,
                ratio=split_ratio,
                stratify_intent=resolved_intents[0],
                seed=split_seed,
            )
        else:
            raise TypeError(
                f"resolve() accepts Dataset, CandidateSet, or DatasetSplit, "
                f"got {type(data).__name__}"
            )
        return split, resolved_intents, candidates, blocking

    def resolve(
        self,
        data: Dataset | CandidateSet | DatasetSplit,
        *,
        intents: Sequence[str] | None = None,
        labels: PairLabels | None = None,
        labeler: PairLabeler | None = None,
        default_label: int = 0,
        split_ratio: SplitRatio | None = None,
        split_seed: int = 13,
        intent_subset: Sequence[str] | None = None,
        target_intents: Sequence[str] | None = None,
        max_exhaustive_records: int = 400,
    ) -> ResolverResult:
        """Resolve ``data`` end to end and return a :class:`ResolverResult`.

        This is the one-shot fit+predict convenience: for the
        train-once / serve-many lifecycle use :meth:`fit`, which returns
        a persistable :class:`~repro.model.ResolverModel` with an online
        ``query()`` path.

        Parameters
        ----------
        data:
            A raw :class:`Dataset` (full pipeline: blocking → labeling →
            split → staged FlexER), a labeled :class:`CandidateSet`
            (split → staged FlexER), or a pre-built
            :class:`DatasetSplit` (staged FlexER only).
        intents:
            Intent names to resolve.  Defaults to the candidate set's
            intents, the first entry of ``labels``, or one probe call of
            ``labeler`` — in that order.
        labels, labeler, default_label:
            Ground truth for the raw-records path; see
            :meth:`label_candidates`.
        split_ratio, split_seed:
            Candidate splitting (paper default 3:1:1, stratified on the
            first intent).
        intent_subset, target_intents:
            Forwarded to the staged pipeline (graph layers / predicted
            intents).
        max_exhaustive_records:
            When only a ``labeler`` is given, blocking recall needs the
            golden pairs of the *full* cross product; it is enumerated
            exhaustively up to this many records and skipped beyond.
        """
        split, resolved_intents, candidates, blocking = self._prepare(
            data,
            intents=intents,
            labels=labels,
            labeler=labeler,
            default_label=default_label,
            split_ratio=split_ratio,
            split_seed=split_seed,
            max_exhaustive_records=max_exhaustive_records,
        )
        pipeline_result = self.runner.run(
            split,
            resolved_intents,
            config=self.config,
            intent_subset=intent_subset,
            target_intents=target_intents,
        )
        return ResolverResult(
            solution=pipeline_result.solution,
            pipeline=pipeline_result,
            split=split,
            intents=resolved_intents,
            candidates=candidates,
            blocking=blocking,
        )

    # -------------------------------------------------------------------- fit

    def fit(
        self,
        data: Dataset | CandidateSet | DatasetSplit,
        *,
        intents: Sequence[str] | None = None,
        labels: PairLabels | None = None,
        labeler: PairLabeler | None = None,
        default_label: int = 0,
        split_ratio: SplitRatio | None = None,
        split_seed: int = 13,
        retriever: object = "ann_knn",
        max_exhaustive_records: int = 400,
    ):
        """Fit on ``data`` and return a persistable ``ResolverModel``.

        The model bundles every fitted component — per-intent matcher
        ``state_dict``s, corpus representations, the multiplex graph
        payload, trained per-intent GNNs, a fitted candidate retriever,
        and this resolver's :class:`~repro.config.FlexERConfig` — and
        serves new records online via ``model.query(records, k=...)``
        without re-fitting anything.  Persist it with
        ``model.save(path)`` / ``repro.load_model(path)``.

        ``retriever`` names the online candidate-retrieval component
        (:data:`repro.registry.CANDIDATE_RETRIEVERS`): ``"ann_knn"``
        (nearest corpus records over hashed n-gram vectors, the default)
        or ``"blocker"`` (probe the fitted blocker's inverted index).
        The corpus resolution of the fit is attached as
        ``model.fit_result`` (a :class:`ResolverResult`).
        """
        split, resolved_intents, candidates, blocking = self._prepare(
            data,
            intents=intents,
            labels=labels,
            labeler=labeler,
            default_label=default_label,
            split_ratio=split_ratio,
            split_seed=split_seed,
            max_exhaustive_records=max_exhaustive_records,
        )
        fit = self.runner.fit_model(
            split, resolved_intents, config=self.config, retriever=retriever
        )
        fit.model.fit_result = ResolverResult(
            solution=fit.pipeline.solution,
            pipeline=fit.pipeline,
            split=split,
            intents=resolved_intents,
            candidates=candidates,
            blocking=blocking,
        )
        return fit.model

    # -------------------------------------------------------------- internals

    def _blocking_quality(
        self,
        dataset: Dataset,
        pairs: Sequence[RecordPair],
        intents: tuple[str, ...],
        labels: PairLabels | None,
        labeler: PairLabeler | None,
        max_exhaustive_records: int,
    ) -> BlockingQuality:
        """Blocking-quality profile, when a golden standard is derivable.

        With a ``labels`` mapping the golden positives are its positive
        entries; with only a ``labeler`` they are enumerated over the
        full cross product for datasets up to
        ``max_exhaustive_records`` records.  Otherwise only the
        reduction ratio is reported.  Both golden sources are filtered
        by the blocker's pair-admissibility rule, so a cross-source-only
        blocker is never penalized for same-source positives it is
        configured to exclude.
        """
        cross_source_only = bool(getattr(self.make_blocker(), "cross_source_only", False))
        golden: dict[str, set[RecordPair]] | None = None
        if labels is not None:
            golden = {intent: set() for intent in intents}
            for pair, pair_labels in _normalize_label_mapping(labels).items():
                if pair.left_id not in dataset or pair.right_id not in dataset:
                    continue
                if not Blocker.allow_pair(dataset, pair.left_id, pair.right_id, cross_source_only):
                    continue
                for intent in intents:
                    if pair_labels.get(intent) == 1:
                        golden[intent].add(pair)
        elif labeler is not None and len(dataset) <= max_exhaustive_records:
            golden = {intent: set() for intent in intents}
            enumerator = FullBlocker(cross_source_only=cross_source_only, max_records=None)
            for pair in enumerator.block(dataset):
                pair_labels = labeler(dataset[pair.left_id], dataset[pair.right_id])
                for intent in intents:
                    if pair_labels.get(intent) == 1:
                        golden[intent].add(pair)
        return evaluate_blocking(
            dataset, pairs, golden_positive=golden, cross_source_only=cross_source_only
        )


def resolve(
    data: Dataset | CandidateSet | DatasetSplit,
    *,
    intents: Sequence[str] | None = None,
    config: FlexERConfig | None = None,
    labels: PairLabels | None = None,
    labeler: PairLabeler | None = None,
    cache: ArtifactCache | None = None,
    executor: object = None,
    workers: int | None = None,
    **kwargs,
) -> ResolverResult:
    """Resolve ``data`` end to end with a one-shot :class:`Resolver`.

    Convenience wrapper: ``repro.resolve(dataset, intents=...,
    labeler=...)`` is the library's quickstart entry point.
    ``executor``/``workers`` select the sharded-execution backend (e.g.
    ``repro.resolve(dataset, ..., executor="processes", workers=4)``)
    without changing results.  Keyword arguments beyond ``config``,
    ``cache``, ``executor``, and ``workers`` are forwarded to
    :meth:`Resolver.resolve`.
    """
    resolver = Resolver(config=config, cache=cache, executor=executor, workers=workers)
    return resolver.resolve(data, intents=intents, labels=labels, labeler=labeler, **kwargs)


def fit(
    data: Dataset | CandidateSet | DatasetSplit,
    *,
    intents: Sequence[str] | None = None,
    config: FlexERConfig | None = None,
    labels: PairLabels | None = None,
    labeler: PairLabeler | None = None,
    cache: ArtifactCache | None = None,
    retriever: object = "ann_knn",
    executor: object = None,
    workers: int | None = None,
    save: object = None,
    **kwargs,
):
    """Fit a one-shot :class:`Resolver` and return its ``ResolverModel``.

    The "fit once, query many" entry point::

        model = repro.fit(dataset, labeler=label_pair, config=config)
        model.save("resolver_model.npz")
        ...
        model = repro.load_model("resolver_model.npz")
        result = model.query(new_records, k=5)

    ``save`` optionally persists the model in the same call.  Keyword
    arguments beyond the ones named here are forwarded to
    :meth:`Resolver.fit`.
    """
    resolver = Resolver(config=config, cache=cache, executor=executor, workers=workers)
    model = resolver.fit(
        data, intents=intents, labels=labels, labeler=labeler, retriever=retriever, **kwargs
    )
    if save is not None:
        model.save(save)
    return model


# ------------------------------------------------------------------- helpers


def _normalize_label_mapping(labels: PairLabels) -> dict[RecordPair, Mapping[str, int]]:
    """Normalize label-mapping keys to canonical :class:`RecordPair`."""
    normalized: dict[RecordPair, Mapping[str, int]] = {}
    for key, value in labels.items():
        if isinstance(key, RecordPair):
            pair = key
        elif isinstance(key, tuple) and len(key) == 2:
            pair = RecordPair(str(key[0]), str(key[1]))
        else:
            raise LabelingError(
                f"label keys must be RecordPair or (left_id, right_id) tuples, "
                f"got {key!r}"
            )
        if pair in normalized:
            raise LabelingError(f"duplicate label entry for pair {pair.as_tuple()}")
        normalized[pair] = value
    return normalized


def _resolve_intents(requested: Sequence[str] | None, available: Sequence[str]) -> tuple[str, ...]:
    """Validate a requested intent list against the labeled intents."""
    if requested is None:
        if not available:
            raise LabelingError("candidate data carries no intents")
        return tuple(available)
    unknown = set(requested) - set(available)
    if unknown:
        raise LabelingError(
            f"requested intents {sorted(unknown)} are not labeled on the data "
            f"(available: {sorted(available)})"
        )
    return tuple(requested)


def _infer_intents(
    dataset: Dataset,
    pairs: Sequence[RecordPair],
    intents: Sequence[str] | None,
    labels: PairLabels | None,
    labeler: PairLabeler | None,
) -> tuple[str, ...]:
    """Determine the intent set for the raw-records path."""
    if intents is not None:
        if not intents:
            raise LabelingError("intents must be non-empty when given")
        return tuple(intents)
    if labels is not None:
        for value in labels.values():
            return tuple(value)
        raise LabelingError("cannot infer intents from an empty labels mapping")
    if labeler is not None:
        probe = pairs[0]
        return tuple(labeler(dataset[probe.left_id], dataset[probe.right_id]))
    raise LabelingError("provide 'intents', 'labels', or 'labeler' to name the intents")
