"""Blocking-quality measures: reduction ratio and pair completeness.

Blocking trades recall for candidate-set size (Section 2.1 of the
paper): a good blocker removes most of the quadratic pair space
(*reduction ratio*) while keeping the truly matching pairs (*pair
completeness*, the standard blocking-recall measure).  In the MIER
setting both recall-side measures are per intent — a candidate set can
retain every equivalent pair yet lose same-brand pairs.

Definitions over a dataset ``D``, candidate set ``C``, and per-intent
golden positives ``M*_i``:

* ``reduction ratio  = 1 - |C| / |admissible pairs of D|``
* ``pair completeness_i = |C ∩ M*_i| / |M*_i|``
* ``pair quality_i      = |C ∩ M*_i| / |C|``
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence, Set

from ..data.pairs import RecordPair
from ..data.records import Dataset
from ..exceptions import EvaluationError


def admissible_pair_count(dataset: Dataset, cross_source_only: bool = False) -> int:
    """Number of admissible record pairs of ``dataset``.

    With ``cross_source_only`` (clean-clean resolution) pairs of records
    from the same named source are inadmissible; records without a
    source tag remain pairable with every other record.
    """
    n = len(dataset)
    total = n * (n - 1) // 2
    if not cross_source_only:
        return total
    same_source = 0
    for source in dataset.sources:
        size = len(dataset.by_source(source))
        same_source += size * (size - 1) // 2
    return total - same_source


@dataclass(frozen=True)
class BlockingQuality:
    """Quality profile of one blocking run.

    ``pair_completeness`` / ``pair_quality`` are per-intent mappings and
    are ``None`` when no golden standard was available (the recall side
    of blocking cannot be measured without one).
    """

    num_records: int
    num_candidate_pairs: int
    num_admissible_pairs: int
    reduction_ratio: float
    pair_completeness: Mapping[str, float] | None = None
    pair_quality: Mapping[str, float] | None = None

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view used by reports and the CLI."""
        return {
            "num_records": self.num_records,
            "num_candidate_pairs": self.num_candidate_pairs,
            "num_admissible_pairs": self.num_admissible_pairs,
            "reduction_ratio": self.reduction_ratio,
            "pair_completeness": (
                dict(self.pair_completeness) if self.pair_completeness is not None else None
            ),
            "pair_quality": dict(self.pair_quality) if self.pair_quality is not None else None,
        }


def evaluate_blocking(
    dataset: Dataset,
    candidate_pairs: Sequence[RecordPair],
    golden_positive: Mapping[str, Set[RecordPair]] | None = None,
    cross_source_only: bool = False,
) -> BlockingQuality:
    """Evaluate a blocker's candidate pairs over ``dataset``.

    Parameters
    ----------
    dataset:
        The records the blocker ran over.
    candidate_pairs:
        The pairs that survived blocking.
    golden_positive:
        Per-intent golden-standard positive pairs (``M*_i``).  When
        given, per-intent pair completeness and pair quality are
        computed; intents with no golden positives report a completeness
        of 1.0 (nothing to find).
    cross_source_only:
        Whether the admissible pair space excludes same-source pairs
        (must match the blocker's own admissibility rule for the
        reduction ratio to be meaningful).
    """
    candidates = set(candidate_pairs)
    if len(candidates) != len(candidate_pairs):
        raise EvaluationError("candidate pairs must be unique")
    admissible = admissible_pair_count(dataset, cross_source_only)
    reduction = 1.0 - (len(candidates) / admissible) if admissible else 0.0

    completeness: dict[str, float] | None = None
    quality: dict[str, float] | None = None
    if golden_positive is not None:
        completeness = {}
        quality = {}
        for intent, golden in golden_positive.items():
            retained = len(candidates & set(golden))
            completeness[intent] = retained / len(golden) if golden else 1.0
            quality[intent] = retained / len(candidates) if candidates else 0.0

    return BlockingQuality(
        num_records=len(dataset),
        num_candidate_pairs=len(candidates),
        num_admissible_pairs=admissible,
        reduction_ratio=reduction,
        pair_completeness=completeness,
        pair_quality=quality,
    )
