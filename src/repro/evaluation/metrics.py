"""Single-intent evaluation measures (Eq. 6 and accuracy).

Precision, recall, and F1 are computed over resolutions exactly as in
Eq. 6: ``P = |M ∩ M*| / |M|`` and ``R = |M ∩ M*| / |M*|``, with the F1
being their harmonic mean.  Array-based helpers over aligned
prediction/label vectors are provided for convenience and are equivalent
on a shared candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.resolution import Resolution
from ..exceptions import EvaluationError


@dataclass(frozen=True)
class BinaryEvaluation:
    """Precision / recall / F1 / accuracy plus the confusion counts."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by reports."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }


def _validate_binary(array: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(array, dtype=np.int64).ravel()
    if array.size and not np.isin(array, (0, 1)).all():
        raise EvaluationError(f"{name} must be binary (0/1)")
    return array


def evaluate_binary(predictions: np.ndarray, labels: np.ndarray) -> BinaryEvaluation:
    """Evaluate binary predictions against binary labels."""
    predictions = _validate_binary(predictions, "predictions")
    labels = _validate_binary(labels, "labels")
    if predictions.shape[0] != labels.shape[0]:
        raise EvaluationError("predictions and labels must have the same length")

    true_positive = int(((predictions == 1) & (labels == 1)).sum())
    false_positive = int(((predictions == 1) & (labels == 0)).sum())
    true_negative = int(((predictions == 0) & (labels == 0)).sum())
    false_negative = int(((predictions == 0) & (labels == 1)).sum())

    predicted_positive = true_positive + false_positive
    actual_positive = true_positive + false_negative
    precision = true_positive / predicted_positive if predicted_positive else 0.0
    recall = true_positive / actual_positive if actual_positive else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    total = predictions.shape[0]
    accuracy = (true_positive + true_negative) / total if total else 0.0
    return BinaryEvaluation(
        precision=precision,
        recall=recall,
        f1=f1,
        accuracy=accuracy,
        true_positive=true_positive,
        false_positive=false_positive,
        true_negative=true_negative,
        false_negative=false_negative,
    )


def evaluate_resolution(resolution: Resolution, golden: Resolution) -> BinaryEvaluation:
    """Evaluate a predicted resolution against the golden-standard resolution.

    Implements Eq. 6 over pair sets.  Accuracy is not defined at the
    resolution level (there is no universe of negatives), so it is
    reported as 0 and callers needing accuracy should evaluate over
    aligned prediction vectors instead.
    """
    intersection = len(resolution.pairs & golden.pairs)
    precision = intersection / len(resolution.pairs) if resolution.pairs else 0.0
    recall = intersection / len(golden.pairs) if golden.pairs else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return BinaryEvaluation(
        precision=precision,
        recall=recall,
        f1=f1,
        accuracy=0.0,
        true_positive=intersection,
        false_positive=len(resolution.pairs) - intersection,
        true_negative=0,
        false_negative=len(golden.pairs) - intersection,
    )


def residual_error_reduction(candidate_value: float, baseline_value: float) -> float:
    """Reduction of residual error ``E_V`` in percent (Eq. 7).

    Measures which share of the baseline's remaining error (``1 - V``)
    the candidate model removed.  Returns 0 when the baseline is already
    perfect.
    """
    if not 0.0 <= candidate_value <= 1.0 or not 0.0 <= baseline_value <= 1.0:
        raise EvaluationError("measure values must lie in [0, 1]")
    residual = 1.0 - baseline_value
    if residual <= 0.0:
        return 0.0
    return 100.0 * (candidate_value - baseline_value) / residual
