"""Plain-text report formatting for the experiment harness.

The benchmark modules print paper-style rows (Table 5, Table 6, Table 7,
Table 8, Table 9, Figures 6-7) through these helpers so the output is
directly comparable with the published tables.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render a fixed-width text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row values; floats are rounded to ``float_digits``.
    title:
        Optional title printed above the table.
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_metric_rows(
    results: Mapping[str, Mapping[str, float]],
    metric_order: Sequence[str],
    row_label: str = "Model",
) -> tuple[list[str], list[list[object]]]:
    """Turn ``{row_name: {metric: value}}`` into (headers, rows) for a table."""
    headers = [row_label, *metric_order]
    rows: list[list[object]] = []
    for name, metrics in results.items():
        rows.append([name, *[metrics.get(metric, float("nan")) for metric in metric_order]])
    return headers, rows


def comparison_summary(
    results: Mapping[str, Mapping[str, float]],
    metric: str,
    higher_is_better: bool = True,
) -> str:
    """One-line winner summary for a metric across models."""
    if not results:
        return f"no results for metric {metric!r}"
    chooser = max if higher_is_better else min
    winner = chooser(results, key=lambda name: results[name].get(metric, float("-inf")))
    value = results[winner].get(metric, float("nan"))
    return f"best {metric}: {winner} ({value:.3f})"
