"""Retrieval-quality measures: recall@k and candidate-set overlap.

The sub-linear retrievers (``hnsw``, ``lsh``) trade exactness for query
time, so their quality is measured *against the exact retriever* rather
than against a golden standard: the exact ``ann_knn`` ranking over the
same vectors is the oracle, and an approximate retriever is judged by
how much of the oracle's top-``k`` it reproduces.

Definitions per query record ``q`` with oracle candidates ``O_k(q)``
and approximate candidates ``A_k(q)`` (both ranked, size ≤ ``k``):

* ``recall@k  = |A_k(q) ∩ O_k(q)| / |O_k(q)|`` — averaged over queries
  with a non-empty oracle set.
* ``overlap@k = |A_k(q) ∩ O_k(q)| / |A_k(q) ∪ O_k(q)|`` (Jaccard) —
  penalizes spurious extras as well as misses.

``recall@k`` is the headline number (the acceptance bar of the scale
bench); ``overlap@k`` separates "missed oracle candidates" from
"returned different-but-plausible ones", which matters when the
downstream matcher scores whatever the retriever hands it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..data.records import Record
from ..exceptions import EvaluationError
from ..retrieval.candidates import CandidateRetriever


def recall_at_k(
    approximate: Sequence[Sequence[str]], oracle: Sequence[Sequence[str]]
) -> float:
    """Mean fraction of each oracle candidate list found by the retriever.

    Queries whose oracle list is empty are skipped (there is nothing to
    recall); the mean over zero scorable queries is defined as ``1.0``.
    """
    if len(approximate) != len(oracle):
        raise EvaluationError("approximate and oracle lists must align one-to-one")
    scores: list[float] = []
    for approx_ids, oracle_ids in zip(approximate, oracle, strict=True):
        if not oracle_ids:
            continue
        scores.append(len(set(approx_ids) & set(oracle_ids)) / len(oracle_ids))
    return sum(scores) / len(scores) if scores else 1.0


def candidate_overlap(
    approximate: Sequence[Sequence[str]], oracle: Sequence[Sequence[str]]
) -> float:
    """Mean Jaccard overlap between approximate and oracle candidate sets.

    Queries where both sets are empty are skipped; the mean over zero
    scorable queries is defined as ``1.0``.
    """
    if len(approximate) != len(oracle):
        raise EvaluationError("approximate and oracle lists must align one-to-one")
    scores: list[float] = []
    for approx_ids, oracle_ids in zip(approximate, oracle, strict=True):
        union = set(approx_ids) | set(oracle_ids)
        if not union:
            continue
        scores.append(len(set(approx_ids) & set(oracle_ids)) / len(union))
    return sum(scores) / len(scores) if scores else 1.0


@dataclass(frozen=True)
class RetrievalQuality:
    """Quality profile of one approximate retriever vs the exact oracle.

    ``recall`` and ``overlap`` map each evaluated ``k`` to its mean
    score over the query set; ``empty_candidate_queries`` counts queries
    the approximate retriever answered with nothing at all (a bucket
    miss under ``lsh``, an unreachable region under ``hnsw``).
    """

    num_queries: int
    ks: tuple[int, ...]
    recall: dict[int, float] = field(default_factory=dict)
    overlap: dict[int, float] = field(default_factory=dict)
    empty_candidate_queries: int = 0

    def summary(self) -> dict[str, object]:
        """JSON-ready flat summary (keys like ``recall@10``)."""
        payload: dict[str, object] = {
            "num_queries": self.num_queries,
            "empty_candidate_queries": self.empty_candidate_queries,
        }
        for k in self.ks:
            payload[f"recall@{k}"] = self.recall[k]
            payload[f"overlap@{k}"] = self.overlap[k]
        return payload


def evaluate_candidates(
    retriever: CandidateRetriever,
    oracle: CandidateRetriever,
    queries: Sequence[Record],
    ks: Sequence[int] = (1, 10),
) -> RetrievalQuality:
    """Score ``retriever`` against ``oracle`` over the same query records.

    Both retrievers must be fitted over the same corpus (and the same
    vector space) for the comparison to be meaningful; the harness only
    checks that each answers the queries.  Candidates are retrieved once
    at ``max(ks)`` and truncated per ``k``, mirroring how a serving
    deployment would slice one ranked list.
    """
    if not queries:
        raise EvaluationError("evaluate_candidates requires at least one query record")
    ks = tuple(sorted({int(k) for k in ks}))
    if not ks or ks[0] <= 0:
        raise EvaluationError("every k must be positive")
    top_k = ks[-1]
    approximate = retriever.retrieve(queries, top_k)
    exact = oracle.retrieve(queries, top_k)
    recall: dict[int, float] = {}
    overlap: dict[int, float] = {}
    for k in ks:
        approx_k = [ids[:k] for ids in approximate]
        exact_k = [ids[:k] for ids in exact]
        recall[k] = recall_at_k(approx_k, exact_k)
        overlap[k] = candidate_overlap(approx_k, exact_k)
    empty = sum(1 for ids in approximate if not ids)
    return RetrievalQuality(
        num_queries=len(queries),
        ks=ks,
        recall=recall,
        overlap=overlap,
        empty_candidate_queries=empty,
    )


__all__ = [
    "RetrievalQuality",
    "candidate_overlap",
    "evaluate_candidates",
    "recall_at_k",
]
