"""Multi-intent evaluation measures (Eqs. 7-10).

* ``MI-V`` (Eq. 8): the average of a single-intent measure over all
  intents.
* ``MI-Acc`` (Eq. 9): exact-match accuracy — a pair counts as correct
  only when *every* intent is predicted correctly.
* ``MI-E_V`` (Eq. 7 applied to MI measures): reduction of residual error
  with respect to a baseline.
* Preventable error ``PE`` (Eq. 10): the share of an intent's false
  positives that a correct negative prediction of a subsuming intent
  could have prevented.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from ..core.mier import MIERSolution
from ..exceptions import EvaluationError
from .metrics import BinaryEvaluation, evaluate_binary, residual_error_reduction


@dataclass(frozen=True)
class MultiIntentEvaluation:
    """Aggregated MIER evaluation of one solver on one candidate set."""

    per_intent: Mapping[str, BinaryEvaluation]
    mi_precision: float
    mi_recall: float
    mi_f1: float
    mi_accuracy: float

    def as_dict(self) -> dict[str, float]:
        """Aggregate measures as a plain dict (per-intent results excluded)."""
        return {
            "MI-P": self.mi_precision,
            "MI-R": self.mi_recall,
            "MI-F": self.mi_f1,
            "MI-Acc": self.mi_accuracy,
        }


def evaluate_solution(solution: MIERSolution) -> MultiIntentEvaluation:
    """Evaluate a MIER solution against the labels of its candidate set."""
    candidates = solution.candidates
    per_intent: dict[str, BinaryEvaluation] = {}
    for intent in solution.intents:
        per_intent[intent] = evaluate_binary(
            solution.prediction(intent), candidates.labels(intent)
        )
    if not per_intent:
        raise EvaluationError("the solution contains no intents to evaluate")

    mi_precision = float(np.mean([e.precision for e in per_intent.values()]))
    mi_recall = float(np.mean([e.recall for e in per_intent.values()]))
    mi_f1 = float(np.mean([e.f1 for e in per_intent.values()]))

    prediction_matrix = solution.prediction_matrix()
    label_matrix = candidates.label_matrix(solution.intents)
    if len(candidates) == 0:
        mi_accuracy = 0.0
    else:
        exact_match = (prediction_matrix == label_matrix).all(axis=1)
        mi_accuracy = float(exact_match.mean())

    return MultiIntentEvaluation(
        per_intent=per_intent,
        mi_precision=mi_precision,
        mi_recall=mi_recall,
        mi_f1=mi_f1,
        mi_accuracy=mi_accuracy,
    )


def multi_intent_error_reduction(
    candidate: MultiIntentEvaluation, baseline: MultiIntentEvaluation, measure: str = "MI-F"
) -> float:
    """MI reduction of residual error (Eq. 7 applied to an MI measure)."""
    candidate_values = candidate.as_dict()
    baseline_values = baseline.as_dict()
    if measure not in candidate_values:
        raise EvaluationError(f"unknown measure: {measure!r}")
    return residual_error_reduction(candidate_values[measure], baseline_values[measure])


def preventable_error(
    predictions: Mapping[str, np.ndarray],
    labels: Mapping[str, np.ndarray],
    intent: str,
    subsuming_intents: tuple[str, ...],
) -> float:
    """Preventable error ``PE`` of ``intent`` (Eq. 10).

    A false positive of ``intent`` is *preventable* when at least one of
    the intents that subsume it correctly predicts the pair as negative —
    propagating that negative would have removed the error.  The measure
    is the number of preventable false positives divided by the number of
    true negatives of the disjunction (OR) of the subsuming intents.

    Parameters
    ----------
    predictions, labels:
        Per-intent binary arrays aligned on the same candidate pairs.
    intent:
        The (subsumed) intent whose false positives are analysed.
    subsuming_intents:
        The intents by which ``intent`` is subsumed.
    """
    if intent not in predictions or intent not in labels:
        raise EvaluationError(f"missing predictions or labels for intent {intent!r}")
    if not subsuming_intents:
        raise EvaluationError("preventable error requires at least one subsuming intent")
    for other in subsuming_intents:
        if other not in predictions or other not in labels:
            raise EvaluationError(f"missing predictions or labels for intent {other!r}")

    target_prediction = np.asarray(predictions[intent]).ravel()
    target_label = np.asarray(labels[intent]).ravel()
    false_positive = (target_prediction == 1) & (target_label == 0)

    # The OR operator over the subsuming intents: a pair is positive for
    # the disjunction when any subsuming intent labels/predicts it 1.
    or_prediction = np.zeros_like(target_prediction, dtype=bool)
    or_label = np.zeros_like(target_label, dtype=bool)
    for other in subsuming_intents:
        or_prediction |= np.asarray(predictions[other]).ravel() == 1
        or_label |= np.asarray(labels[other]).ravel() == 1
    true_negative_or = (~or_prediction) & (~or_label)

    preventable = false_positive & (~or_prediction)
    denominator = int(true_negative_or.sum())
    if denominator == 0:
        return 0.0
    return float(preventable.sum()) / denominator
