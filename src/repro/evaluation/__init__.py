"""Evaluation measures (Eqs. 6-10), blocking quality, and report formatting."""

from .blocking import BlockingQuality, admissible_pair_count, evaluate_blocking
from .metrics import (
    BinaryEvaluation,
    evaluate_binary,
    evaluate_resolution,
    residual_error_reduction,
)
from .multi_intent import (
    MultiIntentEvaluation,
    evaluate_solution,
    multi_intent_error_reduction,
    preventable_error,
)
from .report import format_table, format_metric_rows, comparison_summary
from .retrieval import (
    RetrievalQuality,
    candidate_overlap,
    evaluate_candidates,
    recall_at_k,
)

__all__ = [
    "RetrievalQuality",
    "candidate_overlap",
    "evaluate_candidates",
    "recall_at_k",
    "BlockingQuality",
    "admissible_pair_count",
    "evaluate_blocking",
    "BinaryEvaluation",
    "evaluate_binary",
    "evaluate_resolution",
    "residual_error_reduction",
    "MultiIntentEvaluation",
    "evaluate_solution",
    "multi_intent_error_reduction",
    "preventable_error",
    "format_table",
    "format_metric_rows",
    "comparison_summary",
]
