"""Evaluation measures (Eqs. 6-10) and report formatting."""

from .metrics import (
    BinaryEvaluation,
    evaluate_binary,
    evaluate_resolution,
    residual_error_reduction,
)
from .multi_intent import (
    MultiIntentEvaluation,
    evaluate_solution,
    multi_intent_error_reduction,
    preventable_error,
)
from .report import format_table, format_metric_rows, comparison_summary

__all__ = [
    "BinaryEvaluation",
    "evaluate_binary",
    "evaluate_resolution",
    "residual_error_reduction",
    "MultiIntentEvaluation",
    "evaluate_solution",
    "multi_intent_error_reduction",
    "preventable_error",
    "format_table",
    "format_metric_rows",
    "comparison_summary",
]
