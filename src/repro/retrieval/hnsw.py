"""Sub-linear candidate retrieval through an HNSW-style neighbour graph.

Registered as ``hnsw`` in :data:`repro.registry.CANDIDATE_RETRIEVERS`.
Where ``ann_knn`` scans every corpus vector per query (exact, O(n)),
this retriever descends the layered graph of
:class:`~repro.ann.hnsw.HnswGraphIndex` with a beam of width
``ef_search`` — near-logarithmic query time at a small, tunable recall
cost.  Record levels come from :func:`~repro.ann.hnsw.seeded_levels`
over the record *ids*, so the hierarchy is identical whether a record
was present at fit time or arrived later through
:meth:`HnswRetriever.apply_delta`.

The persisted state (hashed vectors, levels, stacked layer adjacency)
round-trips bit-for-bit through ``ResolverModel.save``/``load`` and
memory-mapped loading: a loaded retriever answers byte-identically to
the fitted one.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..ann.hnsw import HnswGraphIndex, seeded_levels
from ..data.records import Dataset, Record
from ..exceptions import ConfigurationError
from .candidates import HashedVectorRetriever


class HnswRetriever(HashedVectorRetriever):
    """Approximate nearest-neighbour retrieval over a layered graph.

    Parameters
    ----------
    metric:
        ``"l2"`` ranks raw hashed vectors by squared Euclidean distance;
        ``"cosine"`` normalizes vectors first (squared L2 on unit
        vectors orders exactly like cosine distance).
    n_features:
        Buckets of the hashing vectorizer encoding each record's text.
    attributes:
        Record attributes included in the text; ``None`` uses all.
    cross_source_only:
        Restrict candidates to records from a different source than the
        query record (clean-clean resolution).
    m_neighbors:
        Graph out-degree; the stored adjacency keeps ``2 * m_neighbors``
        edges per node.
    ef_search:
        Bottom-layer beam width — the recall/latency dial.
    ef_descent:
        Beam width while descending the upper layers.
    level_p:
        Geometric decay of the layer hierarchy.
    seed:
        Seed of level assignment and graph construction randomness.
    """

    spec_type = "hnsw"

    def __init__(
        self,
        metric: str = "l2",
        n_features: int = 256,
        attributes: Sequence[str] | None = None,
        cross_source_only: bool = False,
        m_neighbors: int = 8,
        ef_search: int = 96,
        ef_descent: int = 16,
        level_p: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(
            n_features=n_features, attributes=attributes, cross_source_only=cross_source_only
        )
        if metric not in ("l2", "cosine"):
            raise ConfigurationError(f"unsupported metric: {metric!r}")
        self.metric = metric
        self.m_neighbors = int(m_neighbors)
        self.ef_search = int(ef_search)
        self.ef_descent = int(ef_descent)
        self.level_p = float(level_p)
        self.seed = int(seed)
        self._index = self._make_index()

    def _make_index(self) -> HnswGraphIndex:
        return HnswGraphIndex(
            m_neighbors=self.m_neighbors,
            ef_search=self.ef_search,
            ef_descent=self.ef_descent,
            level_p=self.level_p,
            seed=self.seed,
        )

    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "metric": self.metric,
                "n_features": self.n_features,
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "cross_source_only": self.cross_source_only,
                "m_neighbors": self.m_neighbors,
                "ef_search": self.ef_search,
                "ef_descent": self.ef_descent,
                "level_p": self.level_p,
                "seed": self.seed,
            },
        }

    def _encode(self, records: Sequence[Record]) -> np.ndarray:
        """Hashed (and, for cosine, normalized) vectors of ``records``."""
        vectors = self._vectorize(records)
        if self.metric == "cosine":
            norms = np.linalg.norm(vectors, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            vectors = vectors / norms
        return vectors

    def _levels_of(self, record_ids: Sequence[str]) -> np.ndarray:
        return seeded_levels(record_ids, seed=self.seed, level_p=self.level_p)

    def fit(self, dataset: Dataset) -> "HnswRetriever":
        """Vectorize the corpus and build the layered neighbour graph."""
        self._register_corpus(dataset)
        self._index = self._make_index()
        self._index.fit(self._encode(list(dataset)), self._levels_of(self._record_ids))
        self._tombstones = set()
        self._fitted = True
        return self

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Vectors, levels, and stacked layer adjacency of the fitted graph."""
        self._require_fitted()
        return self._index.export_arrays()

    def load_state(self, arrays: Mapping[str, np.ndarray], dataset: Dataset) -> None:
        """Restore the fitted graph from persisted arrays.

        A full ``vectors``/``levels``/``adjacency`` triple restores the
        exact graph (byte-identical answers, no rebuild).  A bare
        ``vectors`` matrix triggers a deterministic rebuild from those
        vectors — same result as fitting, minus the re-vectorization.
        Anything else falls back to a fresh :meth:`fit`.
        """
        vectors = arrays.get("vectors")
        if vectors is None or vectors.shape[0] != len(dataset):
            self.fit(dataset)
            return
        self._register_corpus(dataset)
        self._index = self._make_index()
        levels = arrays.get("levels")
        adjacency = arrays.get("adjacency")
        if levels is not None and adjacency is not None:
            self._index.import_arrays(vectors, levels, adjacency)
        else:
            self._index.fit(
                np.asarray(vectors, dtype=np.float64), self._levels_of(self._record_ids)
            )
        self._tombstones = set()
        self._fitted = True

    def apply_delta(
        self,
        dataset: Dataset,
        upserted_ids: Sequence[str],
        tombstones: Sequence[str] | frozenset[str] = (),
    ) -> None:
        """Absorb a corpus delta at delta cost.

        Appended records are inserted incrementally (their seeded level
        is the same one a fresh fit would assign); modified records get
        their vector row replaced and their graph edges relinked.  The
        resulting graph is *equivalent* to — but, unlike ``ann_knn``,
        not necessarily bit-identical with — a fresh fit; compaction
        (``repro.update --compact force``) rebuilds it exactly.
        """
        self._require_fitted()
        positions = {rid: row for row, rid in enumerate(self._record_ids)}
        new_ids = list(dataset.record_ids)
        if new_ids[: len(positions)] != self._record_ids:
            # Indexed prefix moved (should not happen via the update
            # engine); a full refit is deterministic and always correct.
            self.fit(dataset)
            self.set_tombstones(tombstones)
            return
        changed = [rid for rid in upserted_ids if rid in positions]
        added = new_ids[len(positions) :]
        if changed:
            rows = np.array([positions[rid] for rid in changed], dtype=np.int64)
            self._index.replace_vectors(rows, self._encode([dataset[rid] for rid in changed]))
            self._index.relink(rows.tolist())
        if added:
            self._index.insert(
                self._encode([dataset[rid] for rid in added]), self._levels_of(added)
            )
        self._register_corpus(dataset)
        self.set_tombstones(tombstones)

    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """Beam-searched approximate ``k`` nearest corpus records per query.

        Each record is searched individually (batch composition can
        never change a record's candidates).  The beam over-fetches by
        the self-match slot and the tombstone count — plus ``k`` under
        ``cross_source_only``, a bounded over-fetch rather than the
        exact retriever's full-corpus rank — then filters through the
        shared admissibility rules.
        """
        self._require_fitted()
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if not records:
            return []
        queries = self._encode(records)
        search_k = k + 1 + len(self._tombstones)
        if self.cross_source_only:
            search_k += k
        search_k = max(min(search_k, self._index.num_indexed), 1)
        ef = max(self.ef_search, search_k)
        candidates: list[list[str]] = []
        for row, record in enumerate(records):
            result = self._index.search(queries[row : row + 1], search_k, ef_search=ef)
            candidates.append(self._filter_positions(record, result.indices[0].tolist(), k))
        return candidates


__all__ = ["HnswRetriever"]
