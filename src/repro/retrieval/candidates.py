"""Candidate retrieval for the online query path.

One-shot resolution generates candidates by blocking the *whole* corpus
against itself.  The serve path cannot afford that: a micro-batch of new
records must be paired with a handful of likely corpus matches in
(amortized) constant time per record.  A :class:`CandidateRetriever`
is fitted once over the corpus a :class:`~repro.model.ResolverModel`
was trained on and then answers ``retrieve(records, k)`` — the ranked
corpus record ids each new record should be scored against.

Two built-in retrievers are registered in
:data:`repro.registry.CANDIDATE_RETRIEVERS`:

``ann_knn``
    Approximate-nearest-neighbour-style retrieval over hashed n-gram
    record vectors through :class:`~repro.ann.knn.ExactNearestNeighbors`
    (the library's Faiss substitute).  The corpus vector matrix is part
    of the persisted model state, so a loaded model serves queries
    without re-vectorizing the corpus.
``blocker``
    Reuse of the fitted blocking strategy: the corpus inverted index of
    a ``qgram``/``token`` blocker is probed with the query record's keys
    and candidates are ranked by shared-key count, honouring the
    blocker's ``min_shared``/``max_block_size``/``cross_source_only``
    semantics.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

import numpy as np

from ..ann.knn import ExactNearestNeighbors
from ..blocking.base import Blocker
from ..data.records import Dataset, Record
from ..exceptions import ConfigurationError, NotFittedError
from ..text.memo import TextMemo
from ..text.vectorizers import HashingVectorizer, HashingVectorizerConfig


def record_content_key(record: Record) -> tuple:
    """Hashable retrieval fingerprint of a query record's *content*.

    Every built-in retriever ranks candidates from a record's attribute
    values and source alone — never its id (query ids are validated to
    be outside the corpus, so the self-match filter can never fire).
    Records with equal content keys therefore receive identical
    candidate rankings, which lets a batch de-duplicate retrieval work
    (:meth:`repro.QuerySession._retrieve`) without changing any result.
    """
    return (tuple(record.values.items()), record.source)


class CandidateRetriever(abc.ABC):
    """Base class of online candidate retrievers.

    Every concrete retriever is registered in
    :data:`repro.registry.CANDIDATE_RETRIEVERS` under :attr:`spec_type`
    and round-trips through ``to_spec`` / ``from_spec`` like every other
    pipeline component.  Fitted state is exposed as plain numpy arrays
    (:meth:`state_arrays` / :meth:`load_state`) so the model artifact
    can bundle it.
    """

    #: Registry key of the concrete retriever (set by subclasses).
    spec_type: str = ""

    @abc.abstractmethod
    def fit(self, dataset: Dataset) -> "CandidateRetriever":
        """Index the corpus ``dataset`` the retriever will answer against."""

    @abc.abstractmethod
    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """Ranked corpus record ids for each query record (best first).

        Each inner list holds at most ``k`` ids; fewer when the corpus
        (or the retriever's admissibility rule) cannot supply ``k``.
        """

    @abc.abstractmethod
    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever configuration into a registry spec."""

    @classmethod
    def from_spec(cls, params: Mapping[str, object]) -> "CandidateRetriever":
        """Construct the retriever from the parameters of a spec."""
        return cls(**params)

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Fitted state as plain arrays (empty when state is derivable)."""
        return {}

    def load_state(self, arrays: Mapping[str, np.ndarray], dataset: Dataset) -> None:
        """Restore fitted state from :meth:`state_arrays` output.

        The default rebuilds the index from the corpus records — every
        retriever's indexing is deterministic, so the restored retriever
        answers identically to the originally fitted one.
        """
        del arrays
        self.fit(dataset)

    @property
    def tombstones(self) -> frozenset[str]:
        """Corpus record ids excluded from retrieval (deleted, not compacted)."""
        return frozenset(getattr(self, "_tombstones", ()))

    def set_tombstones(self, record_ids: Sequence[str] | frozenset[str]) -> None:
        """Install the set of deleted-but-still-indexed record ids.

        Tombstoned records stay in the index (their rows keep every
        other record's position stable) but are filtered out of every
        ranked candidate list, so retrieval behaves as if they were
        gone.  Compaction removes them for real.
        """
        self._tombstones = set(record_ids)

    def apply_delta(
        self,
        dataset: Dataset,
        upserted_ids: Sequence[str],
        tombstones: Sequence[str] | frozenset[str] = (),
    ) -> None:
        """Absorb a corpus delta into the fitted index.

        ``dataset`` is the post-update corpus: previously indexed records
        keep their position (modified ones replaced in place), new ones
        appended at the end.  The default implementation refits from
        scratch — indexing is deterministic, so subclass fast paths and
        this fallback produce identical retrieval state.
        """
        del upserted_ids
        self.fit(dataset)
        self.set_tombstones(tombstones)

    def _require_fitted(self) -> None:
        if not getattr(self, "_fitted", False):
            raise NotFittedError(f"{type(self).__name__} must be fitted before retrieving")


class HashedVectorRetriever(CandidateRetriever):
    """Shared machinery of retrievers ranking hashed n-gram record vectors.

    Concrete subclasses (:class:`AnnKnnRetriever` and the sub-linear
    ``hnsw``/``lsh`` retrievers) differ only in the index structure that
    ranks corpus rows for a query vector; the text-to-vector encoding,
    the corpus bookkeeping (record ids, sources), and the candidate
    filtering rules (self-match, tombstones, ``cross_source_only``) are
    identical and live here.

    Parameters
    ----------
    n_features:
        Buckets of the hashing vectorizer encoding each record's text.
    attributes:
        Record attributes included in the text; ``None`` uses all.
    cross_source_only:
        Restrict candidates to records from a different source than the
        query record (clean-clean resolution).
    """

    def __init__(
        self,
        n_features: int = 256,
        attributes: Sequence[str] | None = None,
        cross_source_only: bool = False,
    ) -> None:
        if n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        self.n_features = int(n_features)
        self.attributes = tuple(attributes) if attributes is not None else None
        self.cross_source_only = cross_source_only
        self._vectorizer = HashingVectorizer(HashingVectorizerConfig(n_features=self.n_features))
        self._record_ids: list[str] = []
        self._sources: list[str | None] = []
        self._tombstones: set[str] = set()
        self._fitted = False

    def _vectorize(self, records: Sequence[Record]) -> np.ndarray:
        names = list(self.attributes) if self.attributes is not None else None
        return self._vectorizer.transform([record.text(names) for record in records])

    def _register_corpus(self, dataset: Dataset) -> None:
        """Record the corpus id/source layout the index rows map onto."""
        self._record_ids = list(dataset.record_ids)
        self._sources = [record.source for record in dataset]

    def _filter_positions(self, record: Record, positions: Sequence[int], k: int) -> list[str]:
        """Apply the admissibility rules to ranked index positions.

        Walks ``positions`` best-first, dropping padding (``-1``), the
        query record itself, tombstoned ids, and — under
        ``cross_source_only`` — same-source records, until ``k``
        admissible ids are collected.
        """
        ids: list[str] = []
        for position in positions:
            if position < 0:
                continue
            corpus_id = self._record_ids[position]
            if corpus_id == record.record_id:
                continue
            if corpus_id in self._tombstones:
                continue
            if (
                self.cross_source_only
                and record.source is not None
                and self._sources[position] is not None
                and record.source == self._sources[position]
            ):
                continue
            ids.append(corpus_id)
            if len(ids) >= k:
                break
        return ids


class AnnKnnRetriever(HashedVectorRetriever):
    """Nearest-neighbour retrieval over hashed n-gram record vectors.

    Parameters
    ----------
    metric:
        Distance of the kNN search (``"l2"`` or ``"cosine"``).
    n_features:
        Buckets of the hashing vectorizer encoding each record's text.
    attributes:
        Record attributes included in the text; ``None`` uses all.
    cross_source_only:
        Restrict candidates to records from a different source than the
        query record (clean-clean resolution).
    """

    spec_type = "ann_knn"

    def __init__(
        self,
        metric: str = "l2",
        n_features: int = 256,
        attributes: Sequence[str] | None = None,
        cross_source_only: bool = False,
    ) -> None:
        super().__init__(
            n_features=n_features, attributes=attributes, cross_source_only=cross_source_only
        )
        self.metric = metric
        self._index = ExactNearestNeighbors(metric=metric)

    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "metric": self.metric,
                "n_features": self.n_features,
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "cross_source_only": self.cross_source_only,
            },
        }

    def fit(self, dataset: Dataset) -> "AnnKnnRetriever":
        """Vectorize and index every corpus record."""
        self._register_corpus(dataset)
        self._index.fit(self._vectorize(list(dataset)))
        self._tombstones = set()
        self._fitted = True
        return self

    def apply_delta(
        self,
        dataset: Dataset,
        upserted_ids: Sequence[str],
        tombstones: Sequence[str] | frozenset[str] = (),
    ) -> None:
        """Re-vectorize only the upserted records; keep every other row.

        Modified records overwrite their existing vector row, new
        records append rows in corpus order, so the resulting matrix is
        bit-identical to a fresh :meth:`fit` over ``dataset`` (each row
        is the deterministic hash of that record's text alone) at the
        cost of vectorizing only the delta.
        """
        self._require_fitted()
        positions = {rid: row for row, rid in enumerate(self._record_ids)}
        new_ids = list(dataset.record_ids)
        if new_ids[: len(positions)] != self._record_ids:
            # Indexed prefix moved (should not happen via the update
            # engine); a full refit is deterministic and always correct.
            self.fit(dataset)
            self.set_tombstones(tombstones)
            return
        assert self._index._data is not None
        vectors = np.array(self._index._data, dtype=np.float64)
        changed = [rid for rid in upserted_ids if rid in positions]
        added = [rid for rid in new_ids[len(positions) :]]
        if changed:
            rows = self._vectorize([dataset[rid] for rid in changed])
            for offset, rid in enumerate(changed):
                vectors[positions[rid]] = rows[offset]
        if added:
            appended = self._vectorize([dataset[rid] for rid in added])
            vectors = np.concatenate([vectors, appended], axis=0)
        self._record_ids = new_ids
        self._sources = [record.source for record in dataset]
        self._index.fit(vectors)
        self.set_tombstones(tombstones)

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The corpus vector matrix (row order = corpus record order)."""
        self._require_fitted()
        assert self._index._data is not None
        return {"vectors": self._index._data}

    def load_state(self, arrays: Mapping[str, np.ndarray], dataset: Dataset) -> None:
        """Restore the index from persisted corpus vectors (no re-hashing)."""
        vectors = arrays.get("vectors")
        if vectors is None or vectors.shape[0] != len(dataset):
            self.fit(dataset)
            return
        self._record_ids = list(dataset.record_ids)
        self._sources = [record.source for record in dataset]
        self._index.fit(np.asarray(vectors, dtype=np.float64))
        self._tombstones = set()
        self._fitted = True

    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """The ``k`` nearest corpus records of each query record.

        Each record is searched *individually*: BLAS matmul results can
        differ in the last bit with the batch row count, which would
        make near-tie rankings depend on micro-batch composition.  The
        per-record search keeps every record's candidates — and hence
        sharded query batches — bit-identical however the batch is cut.
        """
        self._require_fitted()
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if not records:
            return []
        queries = self._vectorize(records)
        # With source filtering the post-filter cut can eat arbitrarily
        # many of the top results, so rank the full corpus; the search is
        # exact (O(n) per query) either way.  Without it, over-fetch by
        # the self-match slot plus the tombstone count — the search is
        # exact with index-stable tie-breaking, so extending the ranked
        # prefix never reorders it.
        if self.cross_source_only:
            search_k = self._index.num_indexed
        else:
            search_k = k + 1 + len(self._tombstones)
        search_k = max(min(search_k, self._index.num_indexed), 1)
        candidates: list[list[str]] = []
        for row, record in enumerate(records):
            result = self._index.search(queries[row : row + 1], search_k)
            candidates.append(self._filter_positions(record, result.indices[0].tolist(), k))
        return candidates


class BlockerRetriever(CandidateRetriever):
    """Reuse a fitted blocker's inverted index for online retrieval.

    The corpus index of a key-based blocker (``qgram`` or ``token``) is
    built once at fit time; each query record's keys probe the postings
    lists and candidates are ranked by the number of shared keys —
    exactly the co-occurrence count the offline blocker thresholds with
    ``min_shared``.

    Parameters
    ----------
    blocker:
        Registry spec of the wrapped blocker (must expose an inverted
        ``_index``; the ``full`` cross-product blocker has none and is
        rejected).
    """

    spec_type = "blocker"

    def __init__(self, blocker: object = "qgram") -> None:
        # Imported lazily: repro.registry imports this module at start-up.
        from ..registry import BLOCKERS

        self._blocker_spec = BLOCKERS.normalize(blocker)
        self.blocker = BLOCKERS.create(self._blocker_spec)
        if not hasattr(self.blocker, "_index"):
            raise ConfigurationError(
                f"blocker {self._blocker_spec['type']!r} exposes no inverted index; "
                f"use a key-based blocker (qgram/token) for online retrieval"
            )
        self._index: dict[str, list[str]] = {}
        self._dataset: Dataset | None = None
        self._tombstones: set[str] = set()
        self._fitted = False

    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever (and its wrapped blocker) into a spec."""
        return {"type": self.spec_type, "params": {"blocker": self._blocker_spec}}

    def fit(self, dataset: Dataset) -> "BlockerRetriever":
        """Build the wrapped blocker's inverted index over the corpus."""
        self._dataset = dataset
        self._index = dict(self.blocker._index(dataset))
        self._tombstones = set()
        self._fitted = True
        return self

    def apply_delta(
        self,
        dataset: Dataset,
        upserted_ids: Sequence[str],
        tombstones: Sequence[str] | frozenset[str] = (),
    ) -> None:
        """Patch only the postings of the upserted records.

        A modified record's old keys are recomputed from the previous
        corpus snapshot and its id removed from those postings before
        the new keys are added, so the index ends up key-for-key
        equivalent to a fresh fit over ``dataset`` (member order within
        a posting may differ; ranking sorts by count then id, so
        retrieval is unaffected).
        """
        self._require_fitted()
        assert self._dataset is not None
        previous = self._dataset
        for record_id in upserted_ids:
            if record_id in previous:
                for key in self._query_keys(previous[record_id]):
                    members = self._index.get(key)
                    if members is None or record_id not in members:
                        continue
                    members.remove(record_id)
                    if not members:
                        del self._index[key]
            record = dataset[record_id]
            for key in sorted(self._query_keys(record)):
                members = self._index.setdefault(key, [])
                if record_id not in members:
                    members.append(record_id)
        self._dataset = dataset
        self.set_tombstones(tombstones)

    def _query_keys(self, record: Record) -> frozenset[str]:
        """The blocking keys of one query record (same derivation as fit)."""
        probe = Dataset(records=[record], name="query-probe")
        memo = TextMemo(probe, self.blocker.attributes)
        if hasattr(self.blocker, "q"):
            return memo.ngram_set(record.record_id, self.blocker.q)
        keys = memo.token_set(record.record_id)
        if hasattr(self.blocker, "_keys"):
            keys = frozenset(self.blocker._keys(keys))
        return keys

    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """Corpus records sharing ≥ ``min_shared`` keys, ranked by overlap."""
        self._require_fitted()
        if k <= 0:
            raise ConfigurationError("k must be positive")
        assert self._dataset is not None
        min_shared = int(getattr(self.blocker, "min_shared", 1))
        max_block_size = getattr(self.blocker, "max_block_size", None)
        cross_source_only = bool(getattr(self.blocker, "cross_source_only", False))
        candidates: list[list[str]] = []
        for record in records:
            counts: dict[str, int] = {}
            for key in self._query_keys(record):
                members = self._index.get(key)
                if members is None:
                    continue
                # Oversized postings behave as stop-keys offline; skip
                # them online too so the two paths agree on candidates.
                if max_block_size is not None and len(members) > max_block_size:
                    continue
                for corpus_id in members:
                    counts[corpus_id] = counts.get(corpus_id, 0) + 1
            ranked = sorted(
                (
                    (corpus_id, count)
                    for corpus_id, count in counts.items()
                    if count >= min_shared
                    and corpus_id != record.record_id
                    and corpus_id not in self._tombstones
                    and _sources_admissible(
                        record, self._dataset[corpus_id], cross_source_only
                    )
                ),
                key=lambda item: (-item[1], item[0]),
            )
            candidates.append([corpus_id for corpus_id, _ in ranked[:k]])
        return candidates


def _sources_admissible(query: Record, corpus: Record, cross_source_only: bool) -> bool:
    """The blocker admissibility rule applied to a (query, corpus) pair."""
    if not cross_source_only:
        return True
    if query.source is None or corpus.source is None:
        return True
    return query.source != corpus.source


# Re-exported for the registry module's registration pass.
BUILTIN_RETRIEVERS: dict[str, type] = {
    AnnKnnRetriever.spec_type: AnnKnnRetriever,
    BlockerRetriever.spec_type: BlockerRetriever,
}


__all__ = [
    "AnnKnnRetriever",
    "Blocker",
    "BlockerRetriever",
    "BUILTIN_RETRIEVERS",
    "CandidateRetriever",
    "HashedVectorRetriever",
    "record_content_key",
]
