"""Candidate retrieval for the online query path.

One-shot resolution generates candidates by blocking the *whole* corpus
against itself.  The serve path cannot afford that: a micro-batch of new
records must be paired with a handful of likely corpus matches in
(amortized) constant time per record.  A :class:`CandidateRetriever`
is fitted once over the corpus a :class:`~repro.model.ResolverModel`
was trained on and then answers ``retrieve(records, k)`` — the ranked
corpus record ids each new record should be scored against.

Two built-in retrievers are registered in
:data:`repro.registry.CANDIDATE_RETRIEVERS`:

``ann_knn``
    Approximate-nearest-neighbour-style retrieval over hashed n-gram
    record vectors through :class:`~repro.ann.knn.ExactNearestNeighbors`
    (the library's Faiss substitute).  The corpus vector matrix is part
    of the persisted model state, so a loaded model serves queries
    without re-vectorizing the corpus.
``blocker``
    Reuse of the fitted blocking strategy: the corpus inverted index of
    a ``qgram``/``token`` blocker is probed with the query record's keys
    and candidates are ranked by shared-key count, honouring the
    blocker's ``min_shared``/``max_block_size``/``cross_source_only``
    semantics.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

import numpy as np

from ..ann.knn import ExactNearestNeighbors
from ..blocking.base import Blocker
from ..data.records import Dataset, Record
from ..exceptions import ConfigurationError, NotFittedError
from ..text.memo import TextMemo
from ..text.vectorizers import HashingVectorizer, HashingVectorizerConfig


def record_content_key(record: Record) -> tuple:
    """Hashable retrieval fingerprint of a query record's *content*.

    Every built-in retriever ranks candidates from a record's attribute
    values and source alone — never its id (query ids are validated to
    be outside the corpus, so the self-match filter can never fire).
    Records with equal content keys therefore receive identical
    candidate rankings, which lets a batch de-duplicate retrieval work
    (:meth:`repro.QuerySession._retrieve`) without changing any result.
    """
    return (tuple(record.values.items()), record.source)


class CandidateRetriever(abc.ABC):
    """Base class of online candidate retrievers.

    Every concrete retriever is registered in
    :data:`repro.registry.CANDIDATE_RETRIEVERS` under :attr:`spec_type`
    and round-trips through ``to_spec`` / ``from_spec`` like every other
    pipeline component.  Fitted state is exposed as plain numpy arrays
    (:meth:`state_arrays` / :meth:`load_state`) so the model artifact
    can bundle it.
    """

    #: Registry key of the concrete retriever (set by subclasses).
    spec_type: str = ""

    @abc.abstractmethod
    def fit(self, dataset: Dataset) -> "CandidateRetriever":
        """Index the corpus ``dataset`` the retriever will answer against."""

    @abc.abstractmethod
    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """Ranked corpus record ids for each query record (best first).

        Each inner list holds at most ``k`` ids; fewer when the corpus
        (or the retriever's admissibility rule) cannot supply ``k``.
        """

    @abc.abstractmethod
    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever configuration into a registry spec."""

    @classmethod
    def from_spec(cls, params: Mapping[str, object]) -> "CandidateRetriever":
        """Construct the retriever from the parameters of a spec."""
        return cls(**params)

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Fitted state as plain arrays (empty when state is derivable)."""
        return {}

    def load_state(self, arrays: Mapping[str, np.ndarray], dataset: Dataset) -> None:
        """Restore fitted state from :meth:`state_arrays` output.

        The default rebuilds the index from the corpus records — every
        retriever's indexing is deterministic, so the restored retriever
        answers identically to the originally fitted one.
        """
        del arrays
        self.fit(dataset)

    def _require_fitted(self) -> None:
        if not getattr(self, "_fitted", False):
            raise NotFittedError(f"{type(self).__name__} must be fitted before retrieving")


class AnnKnnRetriever(CandidateRetriever):
    """Nearest-neighbour retrieval over hashed n-gram record vectors.

    Parameters
    ----------
    metric:
        Distance of the kNN search (``"l2"`` or ``"cosine"``).
    n_features:
        Buckets of the hashing vectorizer encoding each record's text.
    attributes:
        Record attributes included in the text; ``None`` uses all.
    cross_source_only:
        Restrict candidates to records from a different source than the
        query record (clean-clean resolution).
    """

    spec_type = "ann_knn"

    def __init__(
        self,
        metric: str = "l2",
        n_features: int = 256,
        attributes: Sequence[str] | None = None,
        cross_source_only: bool = False,
    ) -> None:
        if n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        self.metric = metric
        self.n_features = int(n_features)
        self.attributes = tuple(attributes) if attributes is not None else None
        self.cross_source_only = cross_source_only
        self._vectorizer = HashingVectorizer(HashingVectorizerConfig(n_features=self.n_features))
        self._index = ExactNearestNeighbors(metric=metric)
        self._record_ids: list[str] = []
        self._sources: list[str | None] = []
        self._fitted = False

    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "metric": self.metric,
                "n_features": self.n_features,
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "cross_source_only": self.cross_source_only,
            },
        }

    def _vectorize(self, records: Sequence[Record]) -> np.ndarray:
        names = list(self.attributes) if self.attributes is not None else None
        return self._vectorizer.transform([record.text(names) for record in records])

    def fit(self, dataset: Dataset) -> "AnnKnnRetriever":
        """Vectorize and index every corpus record."""
        self._record_ids = list(dataset.record_ids)
        self._sources = [record.source for record in dataset]
        self._index.fit(self._vectorize(list(dataset)))
        self._fitted = True
        return self

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The corpus vector matrix (row order = corpus record order)."""
        self._require_fitted()
        assert self._index._data is not None
        return {"vectors": self._index._data}

    def load_state(self, arrays: Mapping[str, np.ndarray], dataset: Dataset) -> None:
        """Restore the index from persisted corpus vectors (no re-hashing)."""
        vectors = arrays.get("vectors")
        if vectors is None or vectors.shape[0] != len(dataset):
            self.fit(dataset)
            return
        self._record_ids = list(dataset.record_ids)
        self._sources = [record.source for record in dataset]
        self._index.fit(np.asarray(vectors, dtype=np.float64))
        self._fitted = True

    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """The ``k`` nearest corpus records of each query record.

        Each record is searched *individually*: BLAS matmul results can
        differ in the last bit with the batch row count, which would
        make near-tie rankings depend on micro-batch composition.  The
        per-record search keeps every record's candidates — and hence
        sharded query batches — bit-identical however the batch is cut.
        """
        self._require_fitted()
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if not records:
            return []
        queries = self._vectorize(records)
        # With source filtering the post-filter cut can eat arbitrarily
        # many of the top results, so rank the full corpus; the search is
        # exact (O(n) per query) either way.
        search_k = self._index.num_indexed if self.cross_source_only else k
        search_k = max(min(search_k, self._index.num_indexed), 1)
        candidates: list[list[str]] = []
        for row, record in enumerate(records):
            result = self._index.search(queries[row : row + 1], search_k)
            ids: list[str] = []
            for position in result.indices[0].tolist():
                corpus_id = self._record_ids[position]
                if corpus_id == record.record_id:
                    continue
                if (
                    self.cross_source_only
                    and record.source is not None
                    and self._sources[position] is not None
                    and record.source == self._sources[position]
                ):
                    continue
                ids.append(corpus_id)
                if len(ids) >= k:
                    break
            candidates.append(ids)
        return candidates


class BlockerRetriever(CandidateRetriever):
    """Reuse a fitted blocker's inverted index for online retrieval.

    The corpus index of a key-based blocker (``qgram`` or ``token``) is
    built once at fit time; each query record's keys probe the postings
    lists and candidates are ranked by the number of shared keys —
    exactly the co-occurrence count the offline blocker thresholds with
    ``min_shared``.

    Parameters
    ----------
    blocker:
        Registry spec of the wrapped blocker (must expose an inverted
        ``_index``; the ``full`` cross-product blocker has none and is
        rejected).
    """

    spec_type = "blocker"

    def __init__(self, blocker: object = "qgram") -> None:
        # Imported lazily: repro.registry imports this module at start-up.
        from ..registry import BLOCKERS

        self._blocker_spec = BLOCKERS.normalize(blocker)
        self.blocker = BLOCKERS.create(self._blocker_spec)
        if not hasattr(self.blocker, "_index"):
            raise ConfigurationError(
                f"blocker {self._blocker_spec['type']!r} exposes no inverted index; "
                f"use a key-based blocker (qgram/token) for online retrieval"
            )
        self._index: dict[str, list[str]] = {}
        self._dataset: Dataset | None = None
        self._fitted = False

    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever (and its wrapped blocker) into a spec."""
        return {"type": self.spec_type, "params": {"blocker": self._blocker_spec}}

    def fit(self, dataset: Dataset) -> "BlockerRetriever":
        """Build the wrapped blocker's inverted index over the corpus."""
        self._dataset = dataset
        self._index = dict(self.blocker._index(dataset))
        self._fitted = True
        return self

    def _query_keys(self, record: Record) -> frozenset[str]:
        """The blocking keys of one query record (same derivation as fit)."""
        probe = Dataset(records=[record], name="query-probe")
        memo = TextMemo(probe, self.blocker.attributes)
        if hasattr(self.blocker, "q"):
            return memo.ngram_set(record.record_id, self.blocker.q)
        keys = memo.token_set(record.record_id)
        if hasattr(self.blocker, "_keys"):
            keys = frozenset(self.blocker._keys(keys))
        return keys

    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """Corpus records sharing ≥ ``min_shared`` keys, ranked by overlap."""
        self._require_fitted()
        if k <= 0:
            raise ConfigurationError("k must be positive")
        assert self._dataset is not None
        min_shared = int(getattr(self.blocker, "min_shared", 1))
        max_block_size = getattr(self.blocker, "max_block_size", None)
        cross_source_only = bool(getattr(self.blocker, "cross_source_only", False))
        candidates: list[list[str]] = []
        for record in records:
            counts: dict[str, int] = {}
            for key in self._query_keys(record):
                members = self._index.get(key)
                if members is None:
                    continue
                # Oversized postings behave as stop-keys offline; skip
                # them online too so the two paths agree on candidates.
                if max_block_size is not None and len(members) > max_block_size:
                    continue
                for corpus_id in members:
                    counts[corpus_id] = counts.get(corpus_id, 0) + 1
            ranked = sorted(
                (
                    (corpus_id, count)
                    for corpus_id, count in counts.items()
                    if count >= min_shared
                    and corpus_id != record.record_id
                    and _sources_admissible(
                        record, self._dataset[corpus_id], cross_source_only
                    )
                ),
                key=lambda item: (-item[1], item[0]),
            )
            candidates.append([corpus_id for corpus_id, _ in ranked[:k]])
        return candidates


def _sources_admissible(query: Record, corpus: Record, cross_source_only: bool) -> bool:
    """The blocker admissibility rule applied to a (query, corpus) pair."""
    if not cross_source_only:
        return True
    if query.source is None or corpus.source is None:
        return True
    return query.source != corpus.source


# Re-exported for the registry module's registration pass.
BUILTIN_RETRIEVERS: dict[str, type] = {
    AnnKnnRetriever.spec_type: AnnKnnRetriever,
    BlockerRetriever.spec_type: BlockerRetriever,
}


__all__ = [
    "AnnKnnRetriever",
    "Blocker",
    "BlockerRetriever",
    "BUILTIN_RETRIEVERS",
    "CandidateRetriever",
    "record_content_key",
]
