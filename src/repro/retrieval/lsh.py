"""Sub-linear candidate retrieval through banded SRP locality hashing.

Registered as ``lsh`` in :data:`repro.registry.CANDIDATE_RETRIEVERS`.
Each corpus record's hashed n-gram vector is signed against random
hyperplanes and bucketed per band by
:class:`~repro.ann.lsh.SrpBandIndex`; a query probes its own buckets
and only the colliding records are ranked (by exact squared-L2, the
same tie-breaking as ``ann_knn``).  Query cost scales with bucket
occupancy, not corpus size — the ``num_bands``/``rows_per_band`` pair
trades candidate volume against recall along the classic banding
curve.

The persisted state (vectors and band signatures) round-trips through
``ResolverModel.save``/``load`` and memory-mapped loading; the bucket
tables are re-derived with stable sorts, so a loaded retriever answers
byte-identically to the fitted one.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..ann.lsh import SrpBandIndex
from ..data.records import Dataset, Record
from ..exceptions import ConfigurationError
from .candidates import HashedVectorRetriever


class LshRetriever(HashedVectorRetriever):
    """Banded signed-random-projection retrieval over hashed vectors.

    Parameters
    ----------
    n_features:
        Buckets of the hashing vectorizer encoding each record's text.
    attributes:
        Record attributes included in the text; ``None`` uses all.
    cross_source_only:
        Restrict candidates to records from a different source than the
        query record (clean-clean resolution).
    num_bands:
        Independent hash bands; more bands raise recall (and candidate
        volume).
    rows_per_band:
        Sign bits per band key; more rows sharpen the similarity
        threshold, shrinking buckets.
    seed:
        Seed of the random hyperplane matrix.
    """

    spec_type = "lsh"

    def __init__(
        self,
        n_features: int = 256,
        attributes: Sequence[str] | None = None,
        cross_source_only: bool = False,
        num_bands: int = 32,
        rows_per_band: int = 12,
        seed: int = 0,
    ) -> None:
        super().__init__(
            n_features=n_features, attributes=attributes, cross_source_only=cross_source_only
        )
        self.num_bands = int(num_bands)
        self.rows_per_band = int(rows_per_band)
        self.seed = int(seed)
        self._index = self._make_index()

    def _make_index(self) -> SrpBandIndex:
        return SrpBandIndex(
            num_bands=self.num_bands, rows_per_band=self.rows_per_band, seed=self.seed
        )

    def to_spec(self) -> dict[str, object]:
        """Serialize the retriever configuration into a registry spec."""
        return {
            "type": self.spec_type,
            "params": {
                "n_features": self.n_features,
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "cross_source_only": self.cross_source_only,
                "num_bands": self.num_bands,
                "rows_per_band": self.rows_per_band,
                "seed": self.seed,
            },
        }

    def fit(self, dataset: Dataset) -> "LshRetriever":
        """Vectorize, sign, and bucket every corpus record."""
        self._register_corpus(dataset)
        self._index = self._make_index()
        self._index.fit(self._vectorize(list(dataset)))
        self._tombstones = set()
        self._fitted = True
        return self

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Corpus vectors and packed band signatures (row order = corpus)."""
        self._require_fitted()
        return self._index.export_arrays()

    def load_state(self, arrays: Mapping[str, np.ndarray], dataset: Dataset) -> None:
        """Restore the index from persisted vectors (and signatures).

        With both ``vectors`` and ``signatures`` present the index is
        restored without re-projection; with vectors alone the
        signatures are re-derived (deterministic — the hyperplanes come
        from the seed).  Anything else falls back to a fresh
        :meth:`fit`.
        """
        vectors = arrays.get("vectors")
        if vectors is None or vectors.shape[0] != len(dataset):
            self.fit(dataset)
            return
        self._register_corpus(dataset)
        self._index = self._make_index()
        signatures = arrays.get("signatures")
        if signatures is not None and signatures.shape[0] == vectors.shape[0]:
            self._index.import_arrays(vectors, signatures)
        else:
            self._index.fit(np.asarray(vectors, dtype=np.float64))
        self._tombstones = set()
        self._fitted = True

    def apply_delta(
        self,
        dataset: Dataset,
        upserted_ids: Sequence[str],
        tombstones: Sequence[str] | frozenset[str] = (),
    ) -> None:
        """Re-sign only the upserted records; keep every other row.

        Modified records overwrite their vector row and band signatures
        in place, new records append rows, and the bucket tables are
        re-derived — bit-identical to a fresh :meth:`fit` over
        ``dataset`` (each row's signature depends only on that record's
        text and the seed) at the cost of signing only the delta.
        """
        self._require_fitted()
        positions = {rid: row for row, rid in enumerate(self._record_ids)}
        new_ids = list(dataset.record_ids)
        if new_ids[: len(positions)] != self._record_ids:
            # Indexed prefix moved (should not happen via the update
            # engine); a full refit is deterministic and always correct.
            self.fit(dataset)
            self.set_tombstones(tombstones)
            return
        changed = [rid for rid in upserted_ids if rid in positions]
        added = new_ids[len(positions) :]
        if changed:
            rows = np.array([positions[rid] for rid in changed], dtype=np.int64)
            self._index.update_rows(rows, self._vectorize([dataset[rid] for rid in changed]))
        if added:
            self._index.insert(self._vectorize([dataset[rid] for rid in added]))
        self._register_corpus(dataset)
        self.set_tombstones(tombstones)

    def candidate_counts(self, records: Sequence[Record]) -> list[int]:
        """Bucket-probe candidate-set size of each query record.

        Diagnostic for tuning ``num_bands``/``rows_per_band``: the
        average count is the per-query rerank cost, and a count of zero
        means the record collides with no bucket at all.
        """
        self._require_fitted()
        queries = self._vectorize(records)
        return [len(self._index.probe(queries[row])) for row in range(len(records))]

    def retrieve(self, records: Sequence[Record], k: int) -> list[list[str]]:
        """Bucket-probed, exact-reranked candidates of each query record.

        Each record probes independently (batch composition can never
        change a record's candidates).  Buckets may supply fewer than
        ``k`` admissible records — the contract allows short lists; a
        record colliding with nothing yields an empty list.
        """
        self._require_fitted()
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if not records:
            return []
        queries = self._vectorize(records)
        search_k = k + 1 + len(self._tombstones)
        if self.cross_source_only:
            search_k += k
        search_k = max(min(search_k, self._index.num_indexed), 1)
        candidates: list[list[str]] = []
        for row, record in enumerate(records):
            result = self._index.search(queries[row : row + 1], search_k)
            candidates.append(self._filter_positions(record, result.indices[0].tolist(), k))
        return candidates


__all__ = ["LshRetriever"]
