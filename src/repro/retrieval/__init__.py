"""Online candidate retrieval against a fitted corpus.

The serve-side counterpart of :mod:`repro.blocking`: instead of joining
a whole corpus against itself, retrievers answer "which corpus records
should this *new* record be scored against?" in micro-batch time.  See
:mod:`repro.retrieval.candidates` for the exact built-ins,
:mod:`repro.retrieval.hnsw` / :mod:`repro.retrieval.lsh` for the
sub-linear ones, and :data:`repro.registry.CANDIDATE_RETRIEVERS` for
the registry family.
"""

from .candidates import (
    BUILTIN_RETRIEVERS,
    AnnKnnRetriever,
    BlockerRetriever,
    CandidateRetriever,
    HashedVectorRetriever,
)
from .hnsw import HnswRetriever
from .lsh import LshRetriever

BUILTIN_RETRIEVERS[HnswRetriever.spec_type] = HnswRetriever
BUILTIN_RETRIEVERS[LshRetriever.spec_type] = LshRetriever

__all__ = [
    "AnnKnnRetriever",
    "BlockerRetriever",
    "BUILTIN_RETRIEVERS",
    "CandidateRetriever",
    "HashedVectorRetriever",
    "HnswRetriever",
    "LshRetriever",
]
