"""Online candidate retrieval against a fitted corpus.

The serve-side counterpart of :mod:`repro.blocking`: instead of joining
a whole corpus against itself, retrievers answer "which corpus records
should this *new* record be scored against?" in micro-batch time.  See
:mod:`repro.retrieval.candidates` for the built-in implementations and
:data:`repro.registry.CANDIDATE_RETRIEVERS` for the registry family.
"""

from .candidates import (
    BUILTIN_RETRIEVERS,
    AnnKnnRetriever,
    BlockerRetriever,
    CandidateRetriever,
)

__all__ = [
    "AnnKnnRetriever",
    "BlockerRetriever",
    "BUILTIN_RETRIEVERS",
    "CandidateRetriever",
]
